//! `bstc-cli` — command-line access to the whole pipeline, for using the
//! library on your own data without writing Rust:
//!
//! ```text
//! bstc-cli synth --preset oc --seed 7 --out expr.tsv     # or your own data
//! bstc-cli discretize --train expr.tsv --out items.tsv --cuts cuts.json
//! bstc-cli train --data items.tsv --model model.json
//! bstc-cli classify --model model.json --data items.tsv
//! bstc-cli mine --data items.tsv --class 1 -k 5
//! ```
//!
//! Continuous data uses the `#cont-microarray v1` TSV format, boolean data
//! `#bool-microarray v1` (see `microarray::io`).

use bstc::BstcModel;
use discretize::Discretizer;
use microarray::io;
use std::fs::File;
use std::io::Write as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("discretize") => cmd_discretize(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("mine") => cmd_mine(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "bstc-cli — Boolean Structure Table Classification

commands:
  synth      --preset all|lc|pc|oc [--seed N] [--scale K] --out FILE.tsv
  discretize --train FILE.tsv [--apply FILE.tsv] --out FILE.tsv [--cuts FILE.json]
  train      --data FILE.tsv --model FILE.json
  classify   --model FILE.json --data FILE.tsv
  mine       --data FILE.tsv --class N [-k K]";

/// Pulls `--flag value` pairs out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn require(args: &[String], name: &str) -> Result<String, String> {
    flag(args, name).ok_or_else(|| format!("missing {name} <value>"))
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let preset = require(args, "--preset")?;
    let out = require(args, "--out")?;
    let seed: u64 = flag(args, "--seed").map(|s| s.parse()).transpose().map_err(err)?.unwrap_or(42);
    let scale: usize =
        flag(args, "--scale").map(|s| s.parse()).transpose().map_err(err)?.unwrap_or(10);
    let cfg = match preset.as_str() {
        "all" => microarray::synth::presets::all_aml(seed),
        "lc" => microarray::synth::presets::lung(seed),
        "pc" => microarray::synth::presets::prostate(seed),
        "oc" => microarray::synth::presets::ovarian(seed),
        "three" => microarray::synth::presets::three_class(seed),
        other => return Err(format!("unknown preset '{other}' (all|lc|pc|oc|three)")),
    }
    .scaled_down(scale.max(1));
    let data = cfg.generate();
    io::write_cont_tsv(&data, File::create(&out).map_err(err)?).map_err(err)?;
    eprintln!(
        "wrote {} ({} genes x {} samples, classes {:?})",
        out,
        data.n_genes(),
        data.n_samples(),
        data.class_names()
    );
    Ok(())
}

fn cmd_discretize(args: &[String]) -> Result<(), String> {
    let train_path = require(args, "--train")?;
    let out = require(args, "--out")?;
    let train = io::read_cont_tsv(File::open(&train_path).map_err(err)?).map_err(err)?;
    let disc = Discretizer::fit(&train);
    let target = match flag(args, "--apply") {
        Some(p) => io::read_cont_tsv(File::open(&p).map_err(err)?).map_err(err)?,
        None => train.clone(),
    };
    let boolean = disc.transform(&target).map_err(err)?;
    io::write_bool_tsv(&boolean, File::create(&out).map_err(err)?).map_err(err)?;
    eprintln!(
        "selected {} of {} genes -> {} items; wrote {}",
        disc.selected_genes().len(),
        train.n_genes(),
        boolean.n_items(),
        out
    );
    if let Some(cuts_path) = flag(args, "--cuts") {
        std::fs::write(&cuts_path, serde_json::to_string_pretty(&disc).map_err(err)?)
            .map_err(err)?;
        eprintln!("wrote fitted discretizer to {cuts_path}");
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let data_path = require(args, "--data")?;
    let model_path = require(args, "--model")?;
    let data = io::read_bool_tsv(File::open(&data_path).map_err(err)?).map_err(err)?;
    if let Some(c) = data.first_empty_class() {
        return Err(format!("class {c} ('{}') has no samples", data.class_names()[c]));
    }
    let model = BstcModel::train(&data);
    std::fs::write(&model_path, serde_json::to_string(&model).map_err(err)?).map_err(err)?;
    eprintln!(
        "trained BSTC on {} samples / {} items / {} classes; wrote {}",
        data.n_samples(),
        data.n_items(),
        data.n_classes(),
        model_path
    );
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let model_path = require(args, "--model")?;
    let data_path = require(args, "--data")?;
    let model: BstcModel =
        serde_json::from_str(&std::fs::read_to_string(&model_path).map_err(err)?).map_err(err)?;
    let data = io::read_bool_tsv(File::open(&data_path).map_err(err)?).map_err(err)?;
    let mut correct = 0usize;
    // A closed pipe (e.g. `| head`) is a normal way to consume CLI output:
    // ignore write errors instead of panicking.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for s in 0..data.n_samples() {
        let pred = model.classify(data.sample(s));
        let values = model.class_values(data.sample(s));
        let _ = writeln!(
            out,
            "sample {s}: {} (values {:?})",
            data.class_names().get(pred).cloned().unwrap_or_else(|| pred.to_string()),
            values.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>()
        );
        if pred == data.label(s) {
            correct += 1;
        }
    }
    let _ = out.flush();
    eprintln!(
        "accuracy vs file labels: {}/{} = {:.2}%",
        correct,
        data.n_samples(),
        100.0 * correct as f64 / data.n_samples() as f64
    );
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let data_path = require(args, "--data")?;
    let class: usize = require(args, "--class")?.parse().map_err(err)?;
    let k: usize = flag(args, "-k").map(|s| s.parse()).transpose().map_err(err)?.unwrap_or(5);
    let data = io::read_bool_tsv(File::open(&data_path).map_err(err)?).map_err(err)?;
    if class >= data.n_classes() {
        return Err(format!("class {class} out of range (0..{})", data.n_classes()));
    }
    let bst = bstc::Bst::build(&data, class);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for rule in bstc::mine_topk(&bst, k) {
        if rule.car_items.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "support {:>3}  car-confidence {:.2}  {}",
            rule.support_len(),
            rule.car_confidence(),
            bstc::display_bar(&rule.to_bar(&bst), &data)
        );
    }
    let _ = out.flush();
    Ok(())
}

fn err<E: std::fmt::Display>(e: E) -> String {
    e.to_string()
}
