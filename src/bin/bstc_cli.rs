//! `bstc-cli` — command-line access to the whole pipeline, for using the
//! library on your own data without writing Rust:
//!
//! ```text
//! bstc-cli synth --preset oc --seed 7 --out expr.tsv     # or your own data
//! bstc-cli discretize --train expr.tsv --out items.tsv --cuts cuts.json
//! bstc-cli train --data items.tsv --model model.json
//! bstc-cli train --data expr.tsv --save bundle.json      # servable artifact
//! bstc-cli classify --model model.json --data items.tsv
//! bstc-cli mine --data items.tsv --class 1 -k 5
//! bstc-cli serve --model bundle.json --addr 127.0.0.1:8642
//! ```
//!
//! Continuous data uses the `#cont-microarray v1` TSV format, boolean data
//! `#bool-microarray v1` (see `microarray::io`).
//!
//! Exit codes: `0` success, `1` runtime failure (bad file, bad data),
//! `2` usage error (unknown command, missing or malformed flags).

use bstc::BstcModel;
use discretize::Discretizer;
use eval::SplitSpec;
use microarray::{io, BmxDataset, ColumnSource, ContinuousDataset};
use serve::{ModelBundle, Provenance, ServerConfig};
use std::fmt;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

/// The single CLI error type: every subcommand returns it, `main` maps it
/// to an exit code and a `error: ...` line on stderr.
#[derive(Debug)]
enum CliError {
    /// The invocation itself is wrong (exit code 2).
    Usage(String),
    /// The invocation was fine but running it failed (exit code 1).
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Run(msg) => f.write_str(msg),
        }
    }
}

/// Maps any displayable failure into a runtime error.
fn err<E: fmt::Display>(e: E) -> CliError {
    CliError::Run(e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(cmd) => apply_log_flags(&args[1..]).and_then(|()| match cmd {
            "synth" => cmd_synth(&args[1..]),
            "discretize" => cmd_discretize(&args[1..]),
            "train" => cmd_train(&args[1..]),
            "classify" => cmd_classify(&args[1..]),
            "mine" => cmd_mine(&args[1..]),
            "cv" => cmd_cv(&args[1..]),
            "cv-shard" => cmd_cv_shard(&args[1..]),
            "serve" => cmd_serve(&args[1..]),
            other => Err(CliError::Usage(format!("unknown command '{other}'\n{USAGE}"))),
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            match e {
                CliError::Usage(_) => ExitCode::from(2),
                CliError::Run(_) => ExitCode::FAILURE,
            }
        }
    }
}

const USAGE: &str = "bstc-cli — Boolean Structure Table Classification

commands:
  synth      --preset all|lc|pc|oc|three|sample-scale [--seed N] [--scale K]
             [--genes N] [--class-sizes A,B,..] --out FILE.tsv|FILE.bmx
             (a .bmx target streams columns to disk — any sample count, flat RSS;
              sample-scale is the 2,600-sample BST-construction stress)
  discretize --train FILE.tsv [--apply FILE.tsv] --out FILE.tsv [--cuts FILE.json]
  train      --data FILE.tsv --model FILE.json [--bench-out FILE.json]
  train      --data FILE.bmx --model FILE.json [--chunk-bytes N]
             [--assert-peak-rss-mb MB]   (out-of-core: mmap + chunked streaming)
  train      --data FILE.tsv --save BUNDLE.json [--dataset NAME] [--seed N]
             [--bench-out FILE.json]   (stage breakdown -> BENCH_train.json)
  classify   --model FILE.json --data FILE.tsv
  mine       --data FILE.tsv --class N [-k K]
  cv         --data FILE.tsv|FILE.bmx [--spec 0.6|8,10] [--reps N] [--seed N]
             [--chunk-bytes N] [--shards K] [--out FILE.json]
             (sharded runs merge bit-identically to --shards 1; a .bmx source
              is checksum-verified once by the parent, not once per shard)
  cv-shard   --data FILE --spec SPEC --rep-start A --rep-end B --seed N
             [--chunk-bytes N] [--skip-checksum FNVHEX]
             (worker: one JSON document on stdout; --skip-checksum trusts the
              parent's verification and checks the .bmx header token only)
  serve      --model BUNDLE.json | --models-dir DIR [--addr HOST:PORT] [--threads N]
             [--queue-depth N] [--request-timeout SECS]  (0 disables the deadline)
             [--max-batch N]  (0 disables micro-batching)  [--batch-wait-us US]
             [--kernel-block-bytes N]  (0 = default, half a typical L2)
             [--max-connections N]  (over-cap arrivals shed with 503)
             [--chunk-threshold BYTES]  (0 disables chunked responses)
             [--default-model NAME] [--max-resident N]  (0 = no residency cap)
             [--shadow PRIMARY=CANDIDATE[:PCT]]...  [--shadow-seed N]

every command also accepts the logging flags:
  [--log-format text|json] [--log-level debug|info|warn|error]
  [--log-file PATH [--log-rotate-bytes N] [--log-rotate-keep K]]";

/// Pulls `--flag value` pairs out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Pulls *every* `--flag value` occurrence, for repeatable flags.
fn flags(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn require(args: &[String], name: &str) -> Result<String, CliError> {
    flag(args, name).ok_or_else(|| CliError::Usage(format!("missing {name} <value>")))
}

/// Parses an optional numeric flag, treating malformed values as usage
/// errors (`--seed banana` is the caller's typo, not a runtime failure).
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, CliError> {
    match flag(args, name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("bad value '{raw}' for {name}"))),
    }
}

/// Applies the logging flags every command shares: `--log-format`,
/// `--log-level`, and `--log-file PATH` with its rotation knobs
/// (`--log-rotate-bytes`, default 10 MiB; `--log-rotate-keep`, default
/// 3 rotated files). Runs before command dispatch so workers spawned by
/// `cv` inherit explicit flags rather than ambient state.
fn apply_log_flags(args: &[String]) -> Result<(), CliError> {
    if let Some(raw) = flag(args, "--log-format") {
        obs::log::set_format(raw.parse::<obs::LogFormat>().map_err(CliError::Usage)?);
    }
    if let Some(raw) = flag(args, "--log-level") {
        obs::log::set_level(raw.parse::<obs::Level>().map_err(CliError::Usage)?);
    }
    if let Some(path) = flag(args, "--log-file") {
        let max_bytes: u64 = parse_flag(args, "--log-rotate-bytes")?.unwrap_or(10 << 20);
        let keep: usize = parse_flag(args, "--log-rotate-keep")?.unwrap_or(3);
        obs::log::set_file_sink(Path::new(&path), max_bytes, keep)
            .map_err(|e| CliError::Run(format!("cannot open log file {path}: {e}")))?;
    }
    Ok(())
}

/// Peak resident set size of this process in MiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Parses `--spec`: a fraction like `0.6`, or per-class training counts
/// like `8,10` (class 0 first — the paper's 1-x/0-y tests).
fn parse_spec(raw: &str) -> Result<SplitSpec, CliError> {
    if raw.contains(',') {
        let counts = raw
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("bad count '{p}' in --spec")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SplitSpec::FixedCounts(counts))
    } else {
        let f: f64 = raw.parse().map_err(|_| {
            CliError::Usage(format!("bad --spec '{raw}' (fraction like 0.6, or counts like 8,10)"))
        })?;
        if !(f > 0.0 && f < 1.0) {
            return Err(CliError::Usage("--spec fraction must be in (0, 1)".into()));
        }
        Ok(SplitSpec::Fraction(f))
    }
}

/// The CV data argument, dispatched on extension: `.bmx` opens the
/// mmap-backed columnar reader (out-of-core), anything else reads the
/// continuous TSV into memory. Both stream through [`ColumnSource`].
enum CvSource {
    Mem(ContinuousDataset),
    Bmx(BmxDataset),
}

/// `trusted` carries a parent-verified `.bmx` checksum (the `cv`
/// parent's `--skip-checksum` handoff): when present, the worker opens
/// with [`BmxDataset::open_trusted`] — header token comparison only —
/// instead of re-streaming the whole file per shard. Ignored for TSV
/// sources, which have no checksum to skip.
fn open_source(path: &str, trusted: Option<u64>) -> Result<CvSource, CliError> {
    if path.ends_with(".bmx") {
        let data = match trusted {
            Some(token) => BmxDataset::open_trusted(Path::new(path), token),
            None => BmxDataset::open(Path::new(path)),
        };
        Ok(CvSource::Bmx(data.map_err(err)?))
    } else {
        Ok(CvSource::Mem(io::read_cont_tsv(File::open(path).map_err(err)?).map_err(err)?))
    }
}

impl ColumnSource for CvSource {
    fn n_genes(&self) -> usize {
        match self {
            CvSource::Mem(d) => ColumnSource::n_genes(d),
            CvSource::Bmx(d) => ColumnSource::n_genes(d),
        }
    }

    fn n_samples(&self) -> usize {
        match self {
            CvSource::Mem(d) => ColumnSource::n_samples(d),
            CvSource::Bmx(d) => ColumnSource::n_samples(d),
        }
    }

    fn n_classes(&self) -> usize {
        match self {
            CvSource::Mem(d) => ColumnSource::n_classes(d),
            CvSource::Bmx(d) => ColumnSource::n_classes(d),
        }
    }

    fn gene_names(&self) -> &[String] {
        match self {
            CvSource::Mem(d) => ColumnSource::gene_names(d),
            CvSource::Bmx(d) => ColumnSource::gene_names(d),
        }
    }

    fn class_names(&self) -> &[String] {
        match self {
            CvSource::Mem(d) => ColumnSource::class_names(d),
            CvSource::Bmx(d) => ColumnSource::class_names(d),
        }
    }

    fn labels(&self) -> &[microarray::ClassId] {
        match self {
            CvSource::Mem(d) => ColumnSource::labels(d),
            CvSource::Bmx(d) => ColumnSource::labels(d),
        }
    }

    fn column_into(&self, g: usize, out: &mut Vec<f64>) {
        match self {
            CvSource::Mem(d) => d.column_into(g, out),
            CvSource::Bmx(d) => d.column_into(g, out),
        }
    }

    fn evict_hint(&self, genes: std::ops::Range<usize>) {
        match self {
            CvSource::Mem(d) => d.evict_hint(genes),
            CvSource::Bmx(d) => d.evict_hint(genes),
        }
    }
}

fn cmd_synth(args: &[String]) -> Result<(), CliError> {
    let preset = require(args, "--preset")?;
    let out = require(args, "--out")?;
    let seed: u64 = parse_flag(args, "--seed")?.unwrap_or(42);
    let scale: usize = parse_flag(args, "--scale")?.unwrap_or(10);
    let mut cfg = match preset.as_str() {
        "all" => microarray::synth::presets::all_aml(seed),
        "lc" => microarray::synth::presets::lung(seed),
        "pc" => microarray::synth::presets::prostate(seed),
        "oc" => microarray::synth::presets::ovarian(seed),
        "three" => microarray::synth::presets::three_class(seed),
        "sample-scale" => microarray::synth::presets::sample_scale(seed),
        other => {
            return Err(CliError::Usage(format!(
                "unknown preset '{other}' (all|lc|pc|oc|three|sample-scale)"
            )))
        }
    }
    .scaled_down(scale.max(1));
    // Dimension overrides, mainly for growing a preset far beyond the
    // paper's sizes (the .bmx path below handles millions of samples).
    if let Some(n) = parse_flag::<usize>(args, "--genes")? {
        cfg.n_genes = n;
    }
    if let Some(raw) = flag(args, "--class-sizes") {
        let sizes = raw
            .split(',')
            .map(|p| {
                p.trim()
                    .parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("bad count '{p}' in --class-sizes")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if sizes.len() != cfg.class_sizes.len() {
            return Err(CliError::Usage(format!(
                "--class-sizes needs {} comma-separated counts for preset '{preset}'",
                cfg.class_sizes.len()
            )));
        }
        cfg.class_sizes = sizes;
    }
    if out.ends_with(".bmx") {
        // Columnar streaming: each (sample, gene) value is computed from
        // a counter-based hash, so columns are written one at a time and
        // RSS stays flat no matter how many samples are requested.
        let synth = microarray::synth::StreamingSynth::new(cfg).map_err(CliError::Usage)?;
        synth.write_bmx(Path::new(&out)).map_err(err)?;
        eprintln!(
            "wrote {} ({} genes x {} samples, streamed columnar)",
            out,
            synth.config().n_genes,
            synth.n_samples()
        );
        return Ok(());
    }
    let data = cfg.generate();
    io::write_cont_tsv(&data, File::create(&out).map_err(err)?).map_err(err)?;
    eprintln!(
        "wrote {} ({} genes x {} samples, classes {:?})",
        out,
        data.n_genes(),
        data.n_samples(),
        data.class_names()
    );
    Ok(())
}

fn cmd_discretize(args: &[String]) -> Result<(), CliError> {
    let train_path = require(args, "--train")?;
    let out = require(args, "--out")?;
    let train = io::read_cont_tsv(File::open(&train_path).map_err(err)?).map_err(err)?;
    let disc = Discretizer::fit(&train);
    let target = match flag(args, "--apply") {
        Some(p) => io::read_cont_tsv(File::open(&p).map_err(err)?).map_err(err)?,
        None => train.clone(),
    };
    let boolean = disc.transform(&target).map_err(err)?;
    io::write_bool_tsv(&boolean, File::create(&out).map_err(err)?).map_err(err)?;
    eprintln!(
        "selected {} of {} genes -> {} items; wrote {}",
        disc.selected_genes().len(),
        train.n_genes(),
        boolean.n_items(),
        out
    );
    if let Some(cuts_path) = flag(args, "--cuts") {
        std::fs::write(&cuts_path, serde_json::to_string_pretty(&disc).map_err(err)?)
            .map_err(err)?;
        eprintln!("wrote fitted discretizer to {cuts_path}");
    }
    Ok(())
}

/// One pipeline stage of the training breakdown, as recorded by the
/// `obs` global registry.
#[derive(serde::Serialize)]
struct StageEntry {
    stage: String,
    count: u64,
    total_secs: f64,
}

/// The `BENCH_train.json` report: per-stage decomposition of one
/// `train` invocation (the paper's Tables 4–7 are exactly such
/// per-stage cost claims). Streamed runs additionally record the chunk
/// budget, the on-disk matrix size, and the observed peak RSS — the
/// out-of-core claim is `peak_rss_mb` ≪ `matrix_bytes`.
#[derive(serde::Serialize)]
struct TrainReport {
    data: String,
    mode: &'static str,
    total_secs: f64,
    peak_rss_mb: Option<f64>,
    chunk_bytes: Option<usize>,
    matrix_bytes: Option<usize>,
    /// (c, h) pairs swept by BST construction across all columns.
    bst_pairs: u64,
    /// Exclusion lists that survived interning (arena entries).
    bst_distinct_lists: u64,
    /// Bytes held by the exclusion-list arenas after interning.
    bst_arena_bytes: u64,
    stages: Vec<StageEntry>,
}

/// Prints the per-stage breakdown and writes it to `--bench-out`
/// (default `BENCH_train.json`). `stream` carries a chunked run's
/// `(chunk_bytes, matrix_bytes)`. A failed report write is a warning,
/// not an error: the model artifact was already written.
fn report_train_stages(
    args: &[String],
    data_path: &str,
    mode: &'static str,
    total_secs: f64,
    stream: Option<(usize, usize)>,
) {
    let stages: Vec<StageEntry> = obs::global()
        .totals()
        .into_iter()
        .map(|t| StageEntry { stage: t.name, count: t.count, total_secs: t.sum_us as f64 / 1e6 })
        .collect();
    eprintln!("stage breakdown ({total_secs:.3}s total):");
    for s in &stages {
        eprintln!("  {:<12} {:>4} span(s)  {:.4}s", s.stage, s.count, s.total_secs);
    }
    let out = flag(args, "--bench-out").unwrap_or_else(|| "BENCH_train.json".into());
    let counters = obs::counters();
    let report = TrainReport {
        data: data_path.to_string(),
        mode,
        total_secs,
        peak_rss_mb: peak_rss_mb(),
        chunk_bytes: stream.map(|(c, _)| c),
        matrix_bytes: stream.map(|(_, m)| m),
        bst_pairs: counters.get("bstc_bst_pairs_total"),
        bst_distinct_lists: counters.get("bstc_bst_distinct_lists_total"),
        bst_arena_bytes: counters.get("bstc_bst_arena_bytes_total"),
        stages,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match std::fs::write(&out, json + "\n") {
            Ok(()) => eprintln!("wrote stage report to {out}"),
            Err(e) => eprintln!("warning: cannot write {out}: {e}"),
        },
        Err(e) => eprintln!("warning: cannot serialize stage report: {e}"),
    }
}

/// Writes a trained model's JSON straight from the arena to disk via
/// [`BstcModel::write_json_to`] — byte-identical to `serde_json::
/// to_string` but without materializing the value tree or the string,
/// which at sample scale would briefly double the training peak RSS.
fn write_model_json(model: &BstcModel, path: &str) -> Result<(), CliError> {
    let mut w = std::io::BufWriter::new(File::create(path).map_err(err)?);
    model.write_json_to(&mut w).map_err(err)?;
    std::io::Write::flush(&mut w).map_err(err)?;
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), CliError> {
    let data_path = require(args, "--data")?;
    if data_path.ends_with(".bmx") {
        if flag(args, "--save").is_some() {
            return Err(CliError::Usage(
                "--save trains a bundle from continuous TSV; a .bmx input trains \
                 an out-of-core --model instead"
                    .into(),
            ));
        }
        return train_bmx(args, &data_path);
    }
    if let Some(bundle_path) = flag(args, "--save") {
        return train_bundle(args, &data_path, &bundle_path);
    }
    let model_path = require(args, "--model")?;
    let data = io::read_bool_tsv(File::open(&data_path).map_err(err)?).map_err(err)?;
    if let Some(c) = data.first_empty_class() {
        return Err(CliError::Run(format!(
            "class {c} ('{}') has no samples",
            data.class_names()[c]
        )));
    }
    let t0 = std::time::Instant::now();
    let model = BstcModel::train(&data);
    let total_secs = t0.elapsed().as_secs_f64();
    write_model_json(&model, &model_path)?;
    eprintln!(
        "trained BSTC on {} samples / {} items / {} classes; wrote {}",
        data.n_samples(),
        data.n_items(),
        data.n_classes(),
        model_path
    );
    report_train_stages(args, &data_path, "model", total_secs, None);
    Ok(())
}

/// `train` on a `.bmx` input: mmap the columnar file and stream the
/// discretizer fit + binarization in gene chunks under `--chunk-bytes`,
/// so the expression matrix is never resident — training works on files
/// (much) larger than memory. `--assert-peak-rss-mb` turns the claim
/// into a hard check against `VmHWM` (how CI pins the bounded-RSS
/// smoke).
fn train_bmx(args: &[String], data_path: &str) -> Result<(), CliError> {
    let model_path = require(args, "--model")?;
    let chunk_bytes: usize = parse_flag(args, "--chunk-bytes")?.unwrap_or(64 << 20);
    if chunk_bytes == 0 {
        return Err(CliError::Usage("--chunk-bytes must be at least 1".into()));
    }
    let data = BmxDataset::open(Path::new(data_path)).map_err(err)?;
    let matrix_bytes = data.n_genes() * data.n_samples() * 8;
    let t0 = std::time::Instant::now();
    let disc = Discretizer::fit_source(&data, chunk_bytes);
    let boolean = disc.transform_source(&data, chunk_bytes).map_err(err)?;
    if let Some(c) = boolean.first_empty_class() {
        return Err(CliError::Run(format!(
            "class {c} ('{}') has no samples",
            boolean.class_names()[c]
        )));
    }
    let model = BstcModel::train(&boolean);
    let total_secs = t0.elapsed().as_secs_f64();
    write_model_json(&model, &model_path)?;
    eprintln!(
        "trained BSTC out-of-core on {} samples / {} genes -> {} items / {} classes \
         ({} MiB matrix, {} MiB chunk budget); wrote {}",
        data.n_samples(),
        data.n_genes(),
        boolean.n_items(),
        boolean.n_classes(),
        matrix_bytes >> 20,
        chunk_bytes >> 20,
        model_path
    );
    report_train_stages(
        args,
        data_path,
        "bmx-stream",
        total_secs,
        Some((chunk_bytes, matrix_bytes)),
    );
    if let Some(budget_mb) = parse_flag::<f64>(args, "--assert-peak-rss-mb")? {
        let peak = peak_rss_mb()
            .ok_or_else(|| CliError::Run("cannot read VmHWM from /proc/self/status".into()))?;
        if peak > budget_mb {
            return Err(CliError::Run(format!(
                "peak RSS {peak:.1} MiB exceeds the {budget_mb} MiB budget"
            )));
        }
        eprintln!("peak RSS {peak:.1} MiB within the {budget_mb} MiB budget");
    }
    Ok(())
}

/// `train --save`: fit the discretizer + train BSTC on a *continuous* TSV
/// and write a servable, checksummed [`ModelBundle`].
fn train_bundle(args: &[String], data_path: &str, bundle_path: &str) -> Result<(), CliError> {
    let data = io::read_cont_tsv(File::open(data_path).map_err(err)?).map_err(|e| {
        CliError::Run(format!(
            "{e}\n(--save trains from raw continuous data — '#cont-microarray v1', \
             the `synth` output — because the bundle embeds the fitted cut points)"
        ))
    })?;
    let dataset = flag(args, "--dataset").unwrap_or_else(|| data_path.to_string());
    let seed: Option<u64> = parse_flag(args, "--seed")?;
    let t0 = std::time::Instant::now();
    let bundle = ModelBundle::train(&data, Provenance::new(dataset, seed)).map_err(err)?;
    // Lower to the word-parallel form now (the server would anyway, on
    // first query) so the `compile` stage appears in the breakdown.
    bundle.compiled();
    let total_secs = t0.elapsed().as_secs_f64();
    bundle.save(bundle_path).map_err(err)?;
    eprintln!(
        "trained BSTC on {} samples / {} genes -> {} items / {} classes \
         (train accuracy {:.1}%); wrote bundle {}",
        data.n_samples(),
        bundle.n_genes(),
        bundle.item_names.len(),
        bundle.n_classes(),
        100.0 * bundle.provenance.train_accuracy.unwrap_or(0.0),
        bundle_path
    );
    report_train_stages(args, data_path, "bundle", total_secs, None);
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), CliError> {
    let model_path = require(args, "--model")?;
    let data_path = require(args, "--data")?;
    let model: BstcModel =
        serde_json::from_str(&std::fs::read_to_string(&model_path).map_err(err)?).map_err(err)?;
    let data = io::read_bool_tsv(File::open(&data_path).map_err(err)?).map_err(err)?;
    let mut correct = 0usize;
    // A closed pipe (e.g. `| head`) is a normal way to consume CLI output:
    // ignore write errors instead of panicking.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for s in 0..data.n_samples() {
        let pred = model.classify(data.sample(s));
        let values = model.class_values(data.sample(s));
        let _ = writeln!(
            out,
            "sample {s}: {} (values {:?})",
            data.class_names().get(pred).cloned().unwrap_or_else(|| pred.to_string()),
            values.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>()
        );
        if pred == data.label(s) {
            correct += 1;
        }
    }
    let _ = out.flush();
    eprintln!(
        "accuracy vs file labels: {}/{} = {:.2}%",
        correct,
        data.n_samples(),
        100.0 * correct as f64 / data.n_samples() as f64
    );
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), CliError> {
    let data_path = require(args, "--data")?;
    let class: usize = require(args, "--class")?
        .parse()
        .map_err(|_| CliError::Usage("bad value for --class (expected an index)".into()))?;
    let k: usize = parse_flag(args, "-k")?.unwrap_or(5);
    let data = io::read_bool_tsv(File::open(&data_path).map_err(err)?).map_err(err)?;
    if class >= data.n_classes() {
        return Err(CliError::Run(format!("class {class} out of range (0..{})", data.n_classes())));
    }
    let bst = bstc::Bst::build(&data, class);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for rule in bstc::mine_topk(&bst, k) {
        if rule.car_items.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "support {:>3}  car-confidence {:.2}  {}",
            rule.support_len(),
            rule.car_confidence(),
            bstc::display_bar(&rule.to_bar(&bst), &data)
        );
    }
    let _ = out.flush();
    Ok(())
}

/// One completed replicate on the wire between `cv-shard` and its
/// parent. Accuracy crosses as the hex of its `f64` bits — JSON float
/// round-trips would blur the bit-identity the shard merge guarantees —
/// and `pred_hash` witnesses the actual prediction sequence. `secs` is
/// informational and excluded from equivalence.
#[derive(serde::Serialize, serde::Deserialize)]
struct RepJson {
    rep: usize,
    accuracy_bits: String,
    pred_hash: String,
    secs: f64,
}

impl RepJson {
    fn from_result(rep: usize, r: &eval::ReplicateResult) -> RepJson {
        RepJson {
            rep,
            accuracy_bits: format!("{:016x}", r.accuracy.to_bits()),
            pred_hash: format!("{:016x}", r.pred_hash),
            secs: r.secs,
        }
    }

    fn accuracy(&self) -> Option<f64> {
        u64::from_str_radix(&self.accuracy_bits, 16).ok().map(f64::from_bits)
    }
}

/// Serde mirror of [`obs::SpanRecord`] (obs stays std-only, so the
/// conversion lives here with the shard protocol).
#[derive(serde::Serialize, serde::Deserialize)]
struct SpanJson {
    id: u64,
    parent: Option<u64>,
    name: String,
    fields: Vec<(String, String)>,
    start_us: u64,
    dur_us: u64,
}

impl From<&obs::SpanRecord> for SpanJson {
    fn from(s: &obs::SpanRecord) -> SpanJson {
        SpanJson {
            id: s.id,
            parent: s.parent,
            name: s.name.clone(),
            fields: s.fields.clone(),
            start_us: s.start_us,
            dur_us: s.dur_us,
        }
    }
}

impl SpanJson {
    fn into_record(self) -> obs::SpanRecord {
        obs::SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            fields: self.fields,
            start_us: self.start_us,
            dur_us: self.dur_us,
        }
    }
}

/// What a `cv-shard` worker prints on stdout: its replicate range, the
/// completed replicates (skipped ones are simply absent), and its span
/// records for the parent to graft into the joined trace tree.
#[derive(serde::Serialize, serde::Deserialize)]
struct ShardOutput {
    rep_start: usize,
    rep_end: usize,
    replicates: Vec<RepJson>,
    trace: Vec<SpanJson>,
}

/// The merged result `cv --out` writes: one entry per completed
/// replicate in replicate order, identical whether the run was
/// single-process or sharded.
#[derive(serde::Serialize)]
struct CvOutput {
    spec: String,
    reps: usize,
    seed: u64,
    chunk_bytes: usize,
    shards: usize,
    mean_accuracy: Option<f64>,
    replicates: Vec<RepJson>,
}

/// Runs replicates `rep_start..rep_end`, one `replicate` span each
/// (parented under `parent`, or as roots for a worker whose spans the
/// parent will graft). Replicate `r` seeds its split with
/// `base_seed + 1000*r` — the [`eval::draw_splits`] schedule — which is
/// the whole shard-merge determinism story.
#[allow(clippy::too_many_arguments)]
fn run_rep_range<S: ColumnSource>(
    source: &S,
    spec: &SplitSpec,
    rep_start: usize,
    rep_end: usize,
    base_seed: u64,
    chunk_bytes: usize,
    trace: &obs::Trace,
    parent: Option<u64>,
) -> Vec<RepJson> {
    let mut out = Vec::new();
    for r in rep_start..rep_end {
        let span = trace.span("replicate", parent);
        span.add_field("rep", &r.to_string());
        let seed = base_seed.wrapping_add(1000 * r as u64);
        match eval::run_replicate_streamed(source, spec, seed, chunk_bytes) {
            Some(res) => {
                let acc = format!("{:.4}", res.accuracy);
                span.add_field("accuracy", &acc);
                obs::log::info("replicate", &[("rep", r.to_string().as_str()), ("accuracy", &acc)]);
                out.push(RepJson::from_result(r, &res));
            }
            None => {
                span.add_field("skipped", "no_informative_genes");
                obs::log::warn("replicate_skipped", &[("rep", r.to_string().as_str())]);
            }
        }
    }
    out
}

/// `cv`: the 25-replicate streaming CV driver. Single-process by
/// default; `--shards K` fans contiguous replicate ranges out to
/// `cv-shard` child processes and merges their results — bit-identical
/// to the single-process run because each replicate's split seed
/// depends only on its index. Prints the joined shard → replicate trace
/// tree and a summary to stderr; `--out` writes the merged JSON.
fn cmd_cv(args: &[String]) -> Result<(), CliError> {
    let data_path = require(args, "--data")?;
    let spec_raw = flag(args, "--spec").unwrap_or_else(|| "0.6".into());
    let spec = parse_spec(&spec_raw)?;
    let reps: usize = parse_flag(args, "--reps")?.unwrap_or(25);
    let seed: u64 = parse_flag(args, "--seed")?.unwrap_or(42);
    let chunk_bytes: usize = parse_flag(args, "--chunk-bytes")?.unwrap_or(64 << 20);
    let shards: usize = parse_flag(args, "--shards")?.unwrap_or(1).max(1);
    if reps == 0 {
        return Err(CliError::Usage("--reps must be at least 1".into()));
    }
    let trace = obs::Trace::new();
    let cv_span = trace.begin("cv", None);
    let mut replicates: Vec<RepJson>;
    if shards == 1 {
        let source = open_source(&data_path, None)?;
        let shard_span = trace.begin("shard", Some(cv_span));
        trace.add_field(shard_span, "shard_id", "0");
        replicates =
            run_rep_range(&source, &spec, 0, reps, seed, chunk_bytes, &trace, Some(shard_span));
        trace.end(shard_span);
    } else {
        let exe = std::env::current_exe().map_err(err)?;
        // Verify a .bmx source once in the parent — full checksum +
        // finiteness stream — then hand the checksum to every worker so
        // K shards cost one verification pass instead of K. The open
        // is dropped immediately: the parent only needs the token.
        let trusted_token = if data_path.ends_with(".bmx") {
            let verified = BmxDataset::open(Path::new(&data_path)).map_err(err)?;
            obs::log::info(
                "cv_checksum_verified",
                &[("data", data_path.as_str()), ("fnv", &format!("{:016x}", verified.checksum()))],
            );
            Some(verified.checksum())
        } else {
            None
        };
        let mut children = Vec::new();
        for k in 0..shards {
            let (lo, hi) = (reps * k / shards, reps * (k + 1) / shards);
            if lo == hi {
                continue;
            }
            let mut shard_args = vec![
                "cv-shard".to_string(),
                "--data".to_string(),
                data_path.clone(),
                "--spec".to_string(),
                spec_raw.clone(),
                "--rep-start".to_string(),
                lo.to_string(),
                "--rep-end".to_string(),
                hi.to_string(),
                "--seed".to_string(),
                seed.to_string(),
                "--chunk-bytes".to_string(),
                chunk_bytes.to_string(),
            ];
            if let Some(token) = trusted_token {
                shard_args.push("--skip-checksum".to_string());
                shard_args.push(format!("{token:016x}"));
            }
            let child = std::process::Command::new(&exe)
                .args(&shard_args)
                .stdout(std::process::Stdio::piped())
                .spawn()
                .map_err(|e| CliError::Run(format!("cannot spawn cv-shard worker: {e}")))?;
            children.push((k, child));
        }
        replicates = Vec::new();
        for (k, child) in children {
            let output = child.wait_with_output().map_err(err)?;
            if !output.status.success() {
                return Err(CliError::Run(format!(
                    "cv-shard worker {k} failed with {}",
                    output.status
                )));
            }
            let raw = String::from_utf8(output.stdout)
                .map_err(|_| CliError::Run(format!("cv-shard worker {k} wrote invalid UTF-8")))?;
            let shard: ShardOutput = serde_json::from_str(&raw).map_err(|e| {
                CliError::Run(format!("cv-shard worker {k} wrote unparseable output: {e}"))
            })?;
            let shard_span = trace.begin("shard", Some(cv_span));
            trace.add_field(shard_span, "shard_id", &k.to_string());
            trace.add_field(shard_span, "reps", &format!("{}..{}", shard.rep_start, shard.rep_end));
            let records: Vec<obs::SpanRecord> =
                shard.trace.into_iter().map(SpanJson::into_record).collect();
            trace.adopt(shard_span, &records);
            trace.end(shard_span);
            obs::log::info(
                "shard_done",
                &[
                    ("shard", k.to_string().as_str()),
                    ("reps", &format!("{}..{}", shard.rep_start, shard.rep_end)),
                    ("completed", &shard.replicates.len().to_string()),
                ],
            );
            replicates.extend(shard.replicates);
        }
        replicates.sort_by_key(|r| r.rep);
    }
    trace.end(cv_span);
    let accs: Vec<f64> = replicates.iter().filter_map(RepJson::accuracy).collect();
    let mean = (!accs.is_empty()).then(|| accs.iter().sum::<f64>() / accs.len() as f64);
    eprintln!(
        "cv: {}/{} replicates completed, spec {}, mean accuracy {}",
        replicates.len(),
        reps,
        spec.label(),
        mean.map_or_else(|| "n/a".into(), |m| format!("{:.4}", m)),
    );
    eprint!("{}", trace.render_tree());
    if let Some(out_path) = flag(args, "--out") {
        let report = CvOutput {
            spec: spec_raw,
            reps,
            seed,
            chunk_bytes,
            shards,
            mean_accuracy: mean,
            replicates,
        };
        std::fs::write(&out_path, serde_json::to_string_pretty(&report).map_err(err)? + "\n")
            .map_err(err)?;
        eprintln!("wrote merged results to {out_path}");
    }
    Ok(())
}

/// `cv-shard`: one worker of a sharded `cv` run. Runs its replicate
/// range and prints a [`ShardOutput`] JSON document on stdout for the
/// parent to merge; logs go to stderr (or the file sink) as usual.
fn cmd_cv_shard(args: &[String]) -> Result<(), CliError> {
    let data_path = require(args, "--data")?;
    let spec = parse_spec(&require(args, "--spec")?)?;
    let rep_start: usize = parse_flag(args, "--rep-start")?
        .ok_or_else(|| CliError::Usage("missing --rep-start <value>".into()))?;
    let rep_end: usize = parse_flag(args, "--rep-end")?
        .ok_or_else(|| CliError::Usage("missing --rep-end <value>".into()))?;
    if rep_end < rep_start {
        return Err(CliError::Usage("--rep-end must be >= --rep-start".into()));
    }
    let seed: u64 = parse_flag(args, "--seed")?.unwrap_or(42);
    let chunk_bytes: usize = parse_flag(args, "--chunk-bytes")?.unwrap_or(64 << 20);
    let trusted = match flag(args, "--skip-checksum") {
        Some(hex) => Some(u64::from_str_radix(&hex, 16).map_err(|_| {
            CliError::Usage(format!("--skip-checksum wants 16 hex digits, got '{hex}'"))
        })?),
        None => None,
    };
    let source = open_source(&data_path, trusted)?;
    let trace = obs::Trace::new();
    let replicates =
        run_rep_range(&source, &spec, rep_start, rep_end, seed, chunk_bytes, &trace, None);
    let out = ShardOutput {
        rep_start,
        rep_end,
        replicates,
        trace: trace.records().iter().map(SpanJson::from).collect(),
    };
    println!("{}", serde_json::to_string(&out).map_err(err)?);
    Ok(())
}

/// `serve`: run the inference server until killed — either a single
/// bundle (`--model`) or a whole fleet loaded from `--models-dir`, one
/// model per `NAME.json`, routed at `/v1/models/{NAME}/classify`.
/// `POST /reload` (or `/v1/models/{NAME}/reload`) re-reads the model's
/// artifact, so retraining + reload needs no restart.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let bundle_path = flag(args, "--model");
    let models_dir = flag(args, "--models-dir");
    if bundle_path.is_none() && models_dir.is_none() {
        return Err(CliError::Usage("serve needs --model BUNDLE.json or --models-dir DIR".into()));
    }
    if bundle_path.is_some() && models_dir.is_some() {
        return Err(CliError::Usage("--model and --models-dir are mutually exclusive".into()));
    }
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8642".to_string());
    let threads: usize = parse_flag(args, "--threads")?.unwrap_or(0);
    let defaults = ServerConfig::default();
    let queue_depth: usize = parse_flag(args, "--queue-depth")?.unwrap_or(defaults.queue_depth);
    // Wall-clock budget per request in (possibly fractional) seconds;
    // `--request-timeout 0` switches the deadline off entirely.
    let request_timeout = match parse_flag::<f64>(args, "--request-timeout")? {
        None => defaults.request_timeout,
        Some(secs) if secs <= 0.0 => None,
        Some(secs) if secs.is_finite() => Some(std::time::Duration::from_secs_f64(secs)),
        Some(_) => return Err(CliError::Usage("bad value for --request-timeout".into())),
    };
    // `--max-batch 0` disables cross-connection micro-batching; the
    // wait is the lone-job coalescing window in microseconds.
    let max_batch: usize = parse_flag(args, "--max-batch")?.unwrap_or(defaults.max_batch);
    let batch_wait = match parse_flag::<u64>(args, "--batch-wait-us")? {
        None => defaults.batch_wait,
        Some(us) => std::time::Duration::from_micros(us),
    };
    // Column-block budget of the batch-sweep kernel; 0 keeps the
    // built-in default (half a typical L2).
    let kernel_block_bytes: usize =
        parse_flag(args, "--kernel-block-bytes")?.unwrap_or(defaults.kernel_block_bytes);
    // Concurrent-connection cap: arrivals beyond it get an immediate
    // `503` + `Retry-After`. Idle keep-alive connections count, so this
    // also bounds the fd footprint; the soft fd limit is raised to
    // match (best effort — a low hard limit just shrinks the headroom).
    let max_connections: usize =
        parse_flag::<usize>(args, "--max-connections")?.unwrap_or(defaults.max_connections).max(1);
    if let Ok(limit) = serve::sys::raise_nofile_limit(max_connections as u64 + 128) {
        if limit < max_connections as u64 + 16 {
            eprintln!(
                "warning: RLIMIT_NOFILE {limit} is below --max-connections {max_connections}; \
                 accepts will fail before the admission cap sheds"
            );
        }
    }
    // Response bodies above this many bytes stream to HTTP/1.1 clients
    // with chunked transfer-encoding; `--chunk-threshold 0` disables
    // chunked responses entirely.
    let chunk_threshold: usize =
        parse_flag(args, "--chunk-threshold")?.unwrap_or(defaults.chunk_threshold);
    // Registry knobs: residency cap on compiled models, shadow routes
    // (repeatable `--shadow primary=candidate:pct`), and the seed that
    // makes the shadow sample reproducible.
    let default_model = flag(args, "--default-model");
    let max_resident: usize = parse_flag(args, "--max-resident")?.unwrap_or(0);
    let shadows = flags(args, "--shadow")
        .iter()
        .map(|raw| serve::ShadowSpec::parse(raw).map_err(CliError::Usage))
        .collect::<Result<Vec<_>, _>>()?;
    let shadow_seed: u64 = parse_flag(args, "--shadow-seed")?.unwrap_or(defaults.shadow_seed);
    let config = ServerConfig {
        addr,
        threads,
        queue_depth,
        request_timeout,
        max_batch,
        batch_wait,
        kernel_block_bytes,
        max_connections,
        chunk_threshold,
        bundle_path: bundle_path.as_ref().map(std::path::PathBuf::from),
        models_dir: models_dir.as_ref().map(std::path::PathBuf::from),
        default_model,
        max_resident,
        shadows,
        shadow_seed,
        ..defaults
    };
    let handle = match bundle_path {
        Some(ref path) => {
            let bundle = ModelBundle::load(path).map_err(err)?;
            eprintln!(
                "loaded bundle {} (dataset '{}', {} genes, {} classes: {:?})",
                path,
                bundle.provenance.dataset,
                bundle.n_genes(),
                bundle.n_classes(),
                bundle.class_names
            );
            serve::serve(config, bundle).map_err(err)?
        }
        None => {
            let handle = serve::serve_models(config).map_err(err)?;
            eprintln!("loaded model fleet from {}", models_dir.unwrap());
            handle
        }
    };
    eprintln!(
        "serving on http://{} (POST /classify, GET /health|/model|/metrics, /v1/models/*)",
        handle.addr()
    );
    handle.wait();
    Ok(())
}
