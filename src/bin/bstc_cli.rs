//! `bstc-cli` — command-line access to the whole pipeline, for using the
//! library on your own data without writing Rust:
//!
//! ```text
//! bstc-cli synth --preset oc --seed 7 --out expr.tsv     # or your own data
//! bstc-cli discretize --train expr.tsv --out items.tsv --cuts cuts.json
//! bstc-cli train --data items.tsv --model model.json
//! bstc-cli train --data expr.tsv --save bundle.json      # servable artifact
//! bstc-cli classify --model model.json --data items.tsv
//! bstc-cli mine --data items.tsv --class 1 -k 5
//! bstc-cli serve --model bundle.json --addr 127.0.0.1:8642
//! ```
//!
//! Continuous data uses the `#cont-microarray v1` TSV format, boolean data
//! `#bool-microarray v1` (see `microarray::io`).
//!
//! Exit codes: `0` success, `1` runtime failure (bad file, bad data),
//! `2` usage error (unknown command, missing or malformed flags).

use bstc::BstcModel;
use discretize::Discretizer;
use microarray::io;
use serve::{ModelBundle, Provenance, ServerConfig};
use std::fmt;
use std::fs::File;
use std::io::Write as _;
use std::process::ExitCode;

/// The single CLI error type: every subcommand returns it, `main` maps it
/// to an exit code and a `error: ...` line on stderr.
#[derive(Debug)]
enum CliError {
    /// The invocation itself is wrong (exit code 2).
    Usage(String),
    /// The invocation was fine but running it failed (exit code 1).
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Run(msg) => f.write_str(msg),
        }
    }
}

/// Maps any displayable failure into a runtime error.
fn err<E: fmt::Display>(e: E) -> CliError {
    CliError::Run(e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("discretize") => cmd_discretize(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("classify") => cmd_classify(&args[1..]),
        Some("mine") => cmd_mine(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}'\n{USAGE}"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            match e {
                CliError::Usage(_) => ExitCode::from(2),
                CliError::Run(_) => ExitCode::FAILURE,
            }
        }
    }
}

const USAGE: &str = "bstc-cli — Boolean Structure Table Classification

commands:
  synth      --preset all|lc|pc|oc [--seed N] [--scale K] --out FILE.tsv
  discretize --train FILE.tsv [--apply FILE.tsv] --out FILE.tsv [--cuts FILE.json]
  train      --data FILE.tsv --model FILE.json [--bench-out FILE.json]
  train      --data FILE.tsv --save BUNDLE.json [--dataset NAME] [--seed N]
             [--bench-out FILE.json]   (stage breakdown -> BENCH_train.json)
  classify   --model FILE.json --data FILE.tsv
  mine       --data FILE.tsv --class N [-k K]
  serve      --model BUNDLE.json | --models-dir DIR [--addr HOST:PORT] [--threads N]
             [--queue-depth N] [--request-timeout SECS]  (0 disables the deadline)
             [--max-batch N]  (0 disables micro-batching)  [--batch-wait-us US]
             [--kernel-block-bytes N]  (0 = default, half a typical L2)
             [--max-connections N]  (over-cap arrivals shed with 503)
             [--chunk-threshold BYTES]  (0 disables chunked responses)
             [--default-model NAME] [--max-resident N]  (0 = no residency cap)
             [--shadow PRIMARY=CANDIDATE[:PCT]]...  [--shadow-seed N]
             [--log-format text|json] [--log-level debug|info|warn|error]";

/// Pulls `--flag value` pairs out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Pulls *every* `--flag value` occurrence, for repeatable flags.
fn flags(args: &[String], name: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == name)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

fn require(args: &[String], name: &str) -> Result<String, CliError> {
    flag(args, name).ok_or_else(|| CliError::Usage(format!("missing {name} <value>")))
}

/// Parses an optional numeric flag, treating malformed values as usage
/// errors (`--seed banana` is the caller's typo, not a runtime failure).
fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Result<Option<T>, CliError> {
    match flag(args, name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("bad value '{raw}' for {name}"))),
    }
}

fn cmd_synth(args: &[String]) -> Result<(), CliError> {
    let preset = require(args, "--preset")?;
    let out = require(args, "--out")?;
    let seed: u64 = parse_flag(args, "--seed")?.unwrap_or(42);
    let scale: usize = parse_flag(args, "--scale")?.unwrap_or(10);
    let cfg = match preset.as_str() {
        "all" => microarray::synth::presets::all_aml(seed),
        "lc" => microarray::synth::presets::lung(seed),
        "pc" => microarray::synth::presets::prostate(seed),
        "oc" => microarray::synth::presets::ovarian(seed),
        "three" => microarray::synth::presets::three_class(seed),
        other => {
            return Err(CliError::Usage(format!("unknown preset '{other}' (all|lc|pc|oc|three)")))
        }
    }
    .scaled_down(scale.max(1));
    let data = cfg.generate();
    io::write_cont_tsv(&data, File::create(&out).map_err(err)?).map_err(err)?;
    eprintln!(
        "wrote {} ({} genes x {} samples, classes {:?})",
        out,
        data.n_genes(),
        data.n_samples(),
        data.class_names()
    );
    Ok(())
}

fn cmd_discretize(args: &[String]) -> Result<(), CliError> {
    let train_path = require(args, "--train")?;
    let out = require(args, "--out")?;
    let train = io::read_cont_tsv(File::open(&train_path).map_err(err)?).map_err(err)?;
    let disc = Discretizer::fit(&train);
    let target = match flag(args, "--apply") {
        Some(p) => io::read_cont_tsv(File::open(&p).map_err(err)?).map_err(err)?,
        None => train.clone(),
    };
    let boolean = disc.transform(&target).map_err(err)?;
    io::write_bool_tsv(&boolean, File::create(&out).map_err(err)?).map_err(err)?;
    eprintln!(
        "selected {} of {} genes -> {} items; wrote {}",
        disc.selected_genes().len(),
        train.n_genes(),
        boolean.n_items(),
        out
    );
    if let Some(cuts_path) = flag(args, "--cuts") {
        std::fs::write(&cuts_path, serde_json::to_string_pretty(&disc).map_err(err)?)
            .map_err(err)?;
        eprintln!("wrote fitted discretizer to {cuts_path}");
    }
    Ok(())
}

/// One pipeline stage of the training breakdown, as recorded by the
/// `obs` global registry.
#[derive(serde::Serialize)]
struct StageEntry {
    stage: String,
    count: u64,
    total_secs: f64,
}

/// The `BENCH_train.json` report: per-stage decomposition of one
/// `train` invocation (the paper's Tables 4–7 are exactly such
/// per-stage cost claims).
#[derive(serde::Serialize)]
struct TrainReport {
    data: String,
    mode: &'static str,
    total_secs: f64,
    stages: Vec<StageEntry>,
}

/// Prints the per-stage breakdown and writes it to `--bench-out`
/// (default `BENCH_train.json`). A failed report write is a warning,
/// not an error: the model artifact was already written.
fn report_train_stages(args: &[String], data_path: &str, mode: &'static str, total_secs: f64) {
    let stages: Vec<StageEntry> = obs::global()
        .totals()
        .into_iter()
        .map(|t| StageEntry { stage: t.name, count: t.count, total_secs: t.sum_us as f64 / 1e6 })
        .collect();
    eprintln!("stage breakdown ({total_secs:.3}s total):");
    for s in &stages {
        eprintln!("  {:<12} {:>4} span(s)  {:.4}s", s.stage, s.count, s.total_secs);
    }
    let out = flag(args, "--bench-out").unwrap_or_else(|| "BENCH_train.json".into());
    let report = TrainReport { data: data_path.to_string(), mode, total_secs, stages };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => match std::fs::write(&out, json + "\n") {
            Ok(()) => eprintln!("wrote stage report to {out}"),
            Err(e) => eprintln!("warning: cannot write {out}: {e}"),
        },
        Err(e) => eprintln!("warning: cannot serialize stage report: {e}"),
    }
}

fn cmd_train(args: &[String]) -> Result<(), CliError> {
    let data_path = require(args, "--data")?;
    if let Some(bundle_path) = flag(args, "--save") {
        return train_bundle(args, &data_path, &bundle_path);
    }
    let model_path = require(args, "--model")?;
    let data = io::read_bool_tsv(File::open(&data_path).map_err(err)?).map_err(err)?;
    if let Some(c) = data.first_empty_class() {
        return Err(CliError::Run(format!(
            "class {c} ('{}') has no samples",
            data.class_names()[c]
        )));
    }
    let t0 = std::time::Instant::now();
    let model = BstcModel::train(&data);
    let total_secs = t0.elapsed().as_secs_f64();
    std::fs::write(&model_path, serde_json::to_string(&model).map_err(err)?).map_err(err)?;
    eprintln!(
        "trained BSTC on {} samples / {} items / {} classes; wrote {}",
        data.n_samples(),
        data.n_items(),
        data.n_classes(),
        model_path
    );
    report_train_stages(args, &data_path, "model", total_secs);
    Ok(())
}

/// `train --save`: fit the discretizer + train BSTC on a *continuous* TSV
/// and write a servable, checksummed [`ModelBundle`].
fn train_bundle(args: &[String], data_path: &str, bundle_path: &str) -> Result<(), CliError> {
    let data = io::read_cont_tsv(File::open(data_path).map_err(err)?).map_err(|e| {
        CliError::Run(format!(
            "{e}\n(--save trains from raw continuous data — '#cont-microarray v1', \
             the `synth` output — because the bundle embeds the fitted cut points)"
        ))
    })?;
    let dataset = flag(args, "--dataset").unwrap_or_else(|| data_path.to_string());
    let seed: Option<u64> = parse_flag(args, "--seed")?;
    let t0 = std::time::Instant::now();
    let bundle = ModelBundle::train(&data, Provenance::new(dataset, seed)).map_err(err)?;
    // Lower to the word-parallel form now (the server would anyway, on
    // first query) so the `compile` stage appears in the breakdown.
    bundle.compiled();
    let total_secs = t0.elapsed().as_secs_f64();
    bundle.save(bundle_path).map_err(err)?;
    eprintln!(
        "trained BSTC on {} samples / {} genes -> {} items / {} classes \
         (train accuracy {:.1}%); wrote bundle {}",
        data.n_samples(),
        bundle.n_genes(),
        bundle.item_names.len(),
        bundle.n_classes(),
        100.0 * bundle.provenance.train_accuracy.unwrap_or(0.0),
        bundle_path
    );
    report_train_stages(args, data_path, "bundle", total_secs);
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), CliError> {
    let model_path = require(args, "--model")?;
    let data_path = require(args, "--data")?;
    let model: BstcModel =
        serde_json::from_str(&std::fs::read_to_string(&model_path).map_err(err)?).map_err(err)?;
    let data = io::read_bool_tsv(File::open(&data_path).map_err(err)?).map_err(err)?;
    let mut correct = 0usize;
    // A closed pipe (e.g. `| head`) is a normal way to consume CLI output:
    // ignore write errors instead of panicking.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for s in 0..data.n_samples() {
        let pred = model.classify(data.sample(s));
        let values = model.class_values(data.sample(s));
        let _ = writeln!(
            out,
            "sample {s}: {} (values {:?})",
            data.class_names().get(pred).cloned().unwrap_or_else(|| pred.to_string()),
            values.iter().map(|v| (v * 1000.0).round() / 1000.0).collect::<Vec<_>>()
        );
        if pred == data.label(s) {
            correct += 1;
        }
    }
    let _ = out.flush();
    eprintln!(
        "accuracy vs file labels: {}/{} = {:.2}%",
        correct,
        data.n_samples(),
        100.0 * correct as f64 / data.n_samples() as f64
    );
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), CliError> {
    let data_path = require(args, "--data")?;
    let class: usize = require(args, "--class")?
        .parse()
        .map_err(|_| CliError::Usage("bad value for --class (expected an index)".into()))?;
    let k: usize = parse_flag(args, "-k")?.unwrap_or(5);
    let data = io::read_bool_tsv(File::open(&data_path).map_err(err)?).map_err(err)?;
    if class >= data.n_classes() {
        return Err(CliError::Run(format!("class {class} out of range (0..{})", data.n_classes())));
    }
    let bst = bstc::Bst::build(&data, class);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    for rule in bstc::mine_topk(&bst, k) {
        if rule.car_items.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "support {:>3}  car-confidence {:.2}  {}",
            rule.support_len(),
            rule.car_confidence(),
            bstc::display_bar(&rule.to_bar(&bst), &data)
        );
    }
    let _ = out.flush();
    Ok(())
}

/// `serve`: run the inference server until killed — either a single
/// bundle (`--model`) or a whole fleet loaded from `--models-dir`, one
/// model per `NAME.json`, routed at `/v1/models/{NAME}/classify`.
/// `POST /reload` (or `/v1/models/{NAME}/reload`) re-reads the model's
/// artifact, so retraining + reload needs no restart.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let bundle_path = flag(args, "--model");
    let models_dir = flag(args, "--models-dir");
    if bundle_path.is_none() && models_dir.is_none() {
        return Err(CliError::Usage("serve needs --model BUNDLE.json or --models-dir DIR".into()));
    }
    if bundle_path.is_some() && models_dir.is_some() {
        return Err(CliError::Usage("--model and --models-dir are mutually exclusive".into()));
    }
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8642".to_string());
    let threads: usize = parse_flag(args, "--threads")?.unwrap_or(0);
    let defaults = ServerConfig::default();
    let queue_depth: usize = parse_flag(args, "--queue-depth")?.unwrap_or(defaults.queue_depth);
    // Wall-clock budget per request in (possibly fractional) seconds;
    // `--request-timeout 0` switches the deadline off entirely.
    let request_timeout = match parse_flag::<f64>(args, "--request-timeout")? {
        None => defaults.request_timeout,
        Some(secs) if secs <= 0.0 => None,
        Some(secs) if secs.is_finite() => Some(std::time::Duration::from_secs_f64(secs)),
        Some(_) => return Err(CliError::Usage("bad value for --request-timeout".into())),
    };
    // `--max-batch 0` disables cross-connection micro-batching; the
    // wait is the lone-job coalescing window in microseconds.
    let max_batch: usize = parse_flag(args, "--max-batch")?.unwrap_or(defaults.max_batch);
    let batch_wait = match parse_flag::<u64>(args, "--batch-wait-us")? {
        None => defaults.batch_wait,
        Some(us) => std::time::Duration::from_micros(us),
    };
    // Column-block budget of the batch-sweep kernel; 0 keeps the
    // built-in default (half a typical L2).
    let kernel_block_bytes: usize =
        parse_flag(args, "--kernel-block-bytes")?.unwrap_or(defaults.kernel_block_bytes);
    // Concurrent-connection cap: arrivals beyond it get an immediate
    // `503` + `Retry-After`. Idle keep-alive connections count, so this
    // also bounds the fd footprint; the soft fd limit is raised to
    // match (best effort — a low hard limit just shrinks the headroom).
    let max_connections: usize =
        parse_flag::<usize>(args, "--max-connections")?.unwrap_or(defaults.max_connections).max(1);
    if let Ok(limit) = serve::sys::raise_nofile_limit(max_connections as u64 + 128) {
        if limit < max_connections as u64 + 16 {
            eprintln!(
                "warning: RLIMIT_NOFILE {limit} is below --max-connections {max_connections}; \
                 accepts will fail before the admission cap sheds"
            );
        }
    }
    // Response bodies above this many bytes stream to HTTP/1.1 clients
    // with chunked transfer-encoding; `--chunk-threshold 0` disables
    // chunked responses entirely.
    let chunk_threshold: usize =
        parse_flag(args, "--chunk-threshold")?.unwrap_or(defaults.chunk_threshold);
    // `--log-format json` switches the structured request log (and every
    // other obs log event) to JSON lines on stderr.
    if let Some(raw) = flag(args, "--log-format") {
        let format: obs::LogFormat = raw.parse().map_err(CliError::Usage)?;
        obs::log::set_format(format);
    }
    // `--log-level warn` silences the per-request info lines; debug
    // additionally passes through events below the default threshold.
    if let Some(raw) = flag(args, "--log-level") {
        let level: obs::Level = raw.parse().map_err(CliError::Usage)?;
        obs::log::set_level(level);
    }
    // Registry knobs: residency cap on compiled models, shadow routes
    // (repeatable `--shadow primary=candidate:pct`), and the seed that
    // makes the shadow sample reproducible.
    let default_model = flag(args, "--default-model");
    let max_resident: usize = parse_flag(args, "--max-resident")?.unwrap_or(0);
    let shadows = flags(args, "--shadow")
        .iter()
        .map(|raw| serve::ShadowSpec::parse(raw).map_err(CliError::Usage))
        .collect::<Result<Vec<_>, _>>()?;
    let shadow_seed: u64 = parse_flag(args, "--shadow-seed")?.unwrap_or(defaults.shadow_seed);
    let config = ServerConfig {
        addr,
        threads,
        queue_depth,
        request_timeout,
        max_batch,
        batch_wait,
        kernel_block_bytes,
        max_connections,
        chunk_threshold,
        bundle_path: bundle_path.as_ref().map(std::path::PathBuf::from),
        models_dir: models_dir.as_ref().map(std::path::PathBuf::from),
        default_model,
        max_resident,
        shadows,
        shadow_seed,
        ..defaults
    };
    let handle = match bundle_path {
        Some(ref path) => {
            let bundle = ModelBundle::load(path).map_err(err)?;
            eprintln!(
                "loaded bundle {} (dataset '{}', {} genes, {} classes: {:?})",
                path,
                bundle.provenance.dataset,
                bundle.n_genes(),
                bundle.n_classes(),
                bundle.class_names
            );
            serve::serve(config, bundle).map_err(err)?
        }
        None => {
            let handle = serve::serve_models(config).map_err(err)?;
            eprintln!("loaded model fleet from {}", models_dir.unwrap());
            handle
        }
    };
    eprintln!(
        "serving on http://{} (POST /classify, GET /health|/model|/metrics, /v1/models/*)",
        handle.addr()
    );
    handle.wait();
    Ok(())
}
