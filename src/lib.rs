//! # bstc-repro — Boolean Structure Table Classification, reproduced
//!
//! An end-to-end Rust reproduction of *"Scalable Rule-Based Gene
//! Expression Data Classification"* (Iwen, Lang & Patel, ICDE 2008): the
//! BSTC classifier, every substrate it needs (data model, entropy-MDL
//! discretization, synthetic microarray generation), the exponential
//! Top-k/RCBT baseline it is evaluated against, the non-rule baselines
//! (SVM, random forest, C4.5 family), and the full §6 experiment harness.
//!
//! This crate re-exports the workspace members; see each for detail:
//!
//! * [`microarray`] — bitsets, datasets, I/O, synthetic generation;
//! * [`discretize`] — Fayyad–Irani entropy-MDL discretization;
//! * [`bstc`] — the paper's contribution (BSTs, BARs, BSTCE, mining);
//! * [`rulemine`] — CARs, Top-k covering rule groups, RCBT;
//! * [`baselines`] — trees, bagging, boosting, forests, SVM;
//! * [`eval`] — splits, statistics, the timed/cutoff experiment runner.
//!
//! ```
//! use bstc::BstcModel;
//! use microarray::fixtures::{section54_query, table1};
//!
//! // Train on the paper's Table 1 running example and classify the §5.4
//! // query — Cancer, with class values 3/4 vs 3/8.
//! let model = BstcModel::train(&table1());
//! assert_eq!(model.classify(&section54_query()), 0);
//! ```

pub use baselines;
pub use bstc;
pub use discretize;
pub use eval;
pub use microarray;
pub use rulemine;
