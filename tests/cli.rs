//! End-to-end tests of the `bstc-cli` binary: synth → discretize → train
//! → classify → mine through actual process invocations and files.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bstc-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bstc_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_pipeline_through_the_binary() {
    let expr = tmp("expr.tsv");
    let items = tmp("items.tsv");
    let cuts = tmp("cuts.json");
    let model = tmp("model.json");

    let out = cli()
        .args(["synth", "--preset", "all", "--scale", "40", "--seed", "3"])
        .args(["--out", expr.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(expr.exists());

    let out = cli()
        .args(["discretize", "--train", expr.to_str().unwrap()])
        .args(["--out", items.to_str().unwrap(), "--cuts", cuts.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("selected"), "{stderr}");
    assert!(cuts.exists());

    // --bench-out goes to the tempdir: without it the stage report
    // would land as BENCH_train.json in whatever CWD the test runs
    // from, clobbering the committed benchmark.
    let bench = tmp("pipeline_bench.json");
    let out = cli()
        .args(["train", "--data", items.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap()])
        .args(["--bench-out", bench.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = cli()
        .args(["classify", "--model", model.to_str().unwrap()])
        .args(["--data", items.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sample 0:"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("accuracy vs file labels"), "{stderr}");

    let out = cli()
        .args(["mine", "--data", items.to_str().unwrap(), "--class", "1", "-k", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("=> ALL"), "{stdout}");
    assert!(stdout.contains("car-confidence"), "{stdout}");
}

#[test]
fn train_save_then_serve_round_trips_over_http() {
    use std::io::{BufRead, BufReader, Read, Write};

    let expr = tmp("expr3.tsv");
    let bundle_path = tmp("bundle.json");

    let out = cli()
        .args(["synth", "--preset", "all", "--scale", "40", "--seed", "11"])
        .args(["--out", expr.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let bench = tmp("serve_bench.json");
    let out = cli()
        .args(["train", "--data", expr.to_str().unwrap()])
        .args(["--save", bundle_path.to_str().unwrap(), "--dataset", "cli-e2e", "--seed", "11"])
        .args(["--bench-out", bench.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote bundle"));

    // The saved artifact is loadable in-process: this is the parity oracle.
    let bundle = serve::ModelBundle::load(&bundle_path).unwrap();
    let data = microarray::io::read_cont_tsv(std::fs::File::open(&expr).unwrap()).unwrap();

    let mut child = cli()
        .args(["serve", "--model", bundle_path.to_str().unwrap()])
        .args(["--addr", "127.0.0.1:0", "--threads", "2"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(child.stderr.take().unwrap()).lines();
    let addr = loop {
        let line = lines.next().expect("serve exited before announcing its address").unwrap();
        if let Some(rest) = line.split("serving on http://").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    // Batch-POST every sample and demand bit-identical classes.
    let rows: Vec<String> = (0..data.n_samples())
        .map(|s| {
            let vals: Vec<String> = data.row(s).iter().map(|v| format!("{v}")).collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    let body = format!("{{\"samples\":[{}]}}", rows.join(","));
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /classify HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    child.kill().unwrap();
    child.wait().unwrap();

    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let json_body = response.split("\r\n\r\n").nth(1).unwrap();
    let served: serde_json::Value = serde_json::from_str(json_body).unwrap();
    let predictions = served.get("predictions").unwrap().as_array().unwrap();
    assert_eq!(predictions.len(), data.n_samples());
    for (s, p) in predictions.iter().enumerate() {
        let expected = bundle.classify_row(data.row(s)).unwrap();
        assert_eq!(
            p.get("class").unwrap().as_u64(),
            Some(expected.class as u64),
            "served class diverges from in-process classify at sample {s}"
        );
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_flag_fails_cleanly() {
    let out = cli().args(["train", "--data", "/nonexistent.tsv"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --model"));
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn bad_class_is_rejected_by_mine() {
    let expr = tmp("expr2.tsv");
    let items = tmp("items2.tsv");
    assert!(cli()
        .args(["synth", "--preset", "all", "--scale", "40", "--out", expr.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args(["discretize", "--train", expr.to_str().unwrap(), "--out", items.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out =
        cli().args(["mine", "--data", items.to_str().unwrap(), "--class", "9"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}

/// Pulls the `(rep, accuracy_bits, pred_hash)` triples out of a `cv
/// --out` JSON document — the bit-identity surface of a CV run.
fn replicate_triples(path: &std::path::Path) -> Vec<(u64, String, String)> {
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
    doc.get("replicates")
        .and_then(|r| r.as_array())
        .unwrap()
        .iter()
        .map(|rep| {
            (
                rep.get("rep").and_then(|v| v.as_u64()).unwrap(),
                rep.get("accuracy_bits").and_then(|v| v.as_str()).unwrap().to_string(),
                rep.get("pred_hash").and_then(|v| v.as_str()).unwrap().to_string(),
            )
        })
        .collect()
}

#[test]
fn sharded_cv_merges_bit_identically_to_single_process() {
    let bmx = tmp("cv_equiv.bmx");
    let single = tmp("cv_single.json");
    let sharded = tmp("cv_sharded.json");
    assert!(cli()
        .args(["synth", "--preset", "all", "--scale", "12", "--seed", "5"])
        .args(["--out", bmx.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["cv", "--data", bmx.to_str().unwrap(), "--spec", "0.6"])
        .args(["--reps", "5", "--seed", "42", "--out", single.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = cli()
        .args(["cv", "--data", bmx.to_str().unwrap(), "--spec", "0.6"])
        .args(["--reps", "5", "--seed", "42", "--shards", "3"])
        .args(["--out", sharded.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // The parent's joined trace shows the shard → replicate structure.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("shard shard_id="), "{stderr}");
    assert!(stderr.contains("    replicate rep="), "{stderr}");
    // The parent verified the .bmx checksum exactly once and handed the
    // token to the workers; no shard re-streams the file.
    assert_eq!(
        stderr.matches("cv_checksum_verified").count(),
        1,
        "expected exactly one parent-side verification\n{stderr}"
    );

    let a = replicate_triples(&single);
    let b = replicate_triples(&sharded);
    assert!(!a.is_empty(), "no replicates completed");
    assert_eq!(a, b, "sharded merge must be bit-identical to the single-process run");
}

#[test]
fn out_of_core_training_reports_and_asserts_peak_rss() {
    let bmx = tmp("ooc.bmx");
    let model = tmp("ooc_model.json");
    let bench = tmp("ooc_bench.json");
    // A preset grown past its natural size: the streamed generator
    // writes it column by column regardless of sample count.
    assert!(cli()
        .args(["synth", "--preset", "all", "--scale", "12", "--seed", "9"])
        .args(["--class-sizes", "120,140", "--out", bmx.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["train", "--data", bmx.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap()])
        .args(["--chunk-bytes", "65536", "--bench-out", bench.to_str().unwrap()])
        .args(["--assert-peak-rss-mb", "256"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trained BSTC out-of-core"), "{stderr}");
    assert!(stderr.contains("within the 256 MiB budget"), "{stderr}");
    assert!(model.exists());
    // The bench report records the streaming evidence.
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&bench).unwrap()).unwrap();
    assert_eq!(doc.get("mode").and_then(|v| v.as_str()), Some("bmx-stream"));
    assert_eq!(doc.get("chunk_bytes").and_then(|v| v.as_u64()), Some(65536));
    assert!(doc.get("matrix_bytes").and_then(|v| v.as_u64()).unwrap() > 0);
    assert!(doc.get("peak_rss_mb").and_then(|v| v.as_f64()).unwrap() > 0.0);
    // An impossible budget must fail loudly rather than pass silently.
    let out = cli()
        .args(["train", "--data", bmx.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap()])
        .args(["--chunk-bytes", "65536", "--bench-out", bench.to_str().unwrap()])
        .args(["--assert-peak-rss-mb", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exceeds the 1 MiB budget"));
}

#[test]
fn sample_scale_preset_reports_bst_construction_counters() {
    // The CI leg runs this preset at --scale 1 (2,600 samples) under a
    // hard RSS budget; here a 1/10 slice proves the wiring: the preset
    // exists, streams to .bmx, and the bench report carries the BST
    // construction counters the interned builder records.
    let bmx = tmp("sample_scale.bmx");
    let model = tmp("sample_scale_model.json");
    let bench = tmp("sample_scale_bench.json");
    assert!(cli()
        .args(["synth", "--preset", "sample-scale", "--scale", "10", "--seed", "7"])
        .args(["--out", bmx.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["train", "--data", bmx.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap()])
        .args(["--bench-out", bench.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&bench).unwrap()).unwrap();
    let field = |k: &str| doc.get(k).and_then(|v| v.as_u64()).unwrap();
    // 260 samples, two classes: every (c, h) pair was swept, interning
    // kept at most that many distinct lists, and the arena holds them.
    assert!(field("bst_pairs") > 0, "{doc:?}");
    assert!(field("bst_distinct_lists") > 0, "{doc:?}");
    assert!(field("bst_distinct_lists") <= field("bst_pairs"), "{doc:?}");
    assert!(field("bst_arena_bytes") > 0, "{doc:?}");
    let stages: Vec<&str> = doc
        .get("stages")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .map(|s| s.get("stage").unwrap().as_str().unwrap())
        .collect();
    assert!(stages.contains(&"bst_build"), "bst_build stage missing from {stages:?}");
}

#[test]
fn cv_shard_rejects_a_stale_checksum_token() {
    let bmx = tmp("stale_token.bmx");
    assert!(cli()
        .args(["synth", "--preset", "all", "--scale", "12", "--seed", "5"])
        .args(["--out", bmx.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["cv-shard", "--data", bmx.to_str().unwrap(), "--spec", "0.6"])
        .args(["--rep-start", "0", "--rep-end", "1", "--seed", "42"])
        .args(["--skip-checksum", "deadbeefdeadbeef"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checksum handoff mismatch"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cv_rejects_malformed_specs() {
    let out = cli().args(["cv", "--data", "x.bmx", "--spec", "1.5"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("must be in (0, 1)"));
    let out = cli().args(["cv", "--data", "x.bmx", "--spec", "8,banana"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad count"));
}
