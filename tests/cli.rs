//! End-to-end tests of the `bstc-cli` binary: synth → discretize → train
//! → classify → mine through actual process invocations and files.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bstc-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bstc_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_pipeline_through_the_binary() {
    let expr = tmp("expr.tsv");
    let items = tmp("items.tsv");
    let cuts = tmp("cuts.json");
    let model = tmp("model.json");

    let out = cli()
        .args(["synth", "--preset", "all", "--scale", "40", "--seed", "3"])
        .args(["--out", expr.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(expr.exists());

    let out = cli()
        .args(["discretize", "--train", expr.to_str().unwrap()])
        .args(["--out", items.to_str().unwrap(), "--cuts", cuts.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("selected"), "{stderr}");
    assert!(cuts.exists());

    let out = cli()
        .args(["train", "--data", items.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = cli()
        .args(["classify", "--model", model.to_str().unwrap()])
        .args(["--data", items.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sample 0:"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("accuracy vs file labels"), "{stderr}");

    let out = cli()
        .args(["mine", "--data", items.to_str().unwrap(), "--class", "1", "-k", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("=> ALL"), "{stdout}");
    assert!(stdout.contains("car-confidence"), "{stdout}");
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_flag_fails_cleanly() {
    let out = cli().args(["train", "--data", "/nonexistent.tsv"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --model"));
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn bad_class_is_rejected_by_mine() {
    let expr = tmp("expr2.tsv");
    let items = tmp("items2.tsv");
    assert!(cli()
        .args(["synth", "--preset", "all", "--scale", "40", "--out", expr.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args([
            "discretize",
            "--train",
            expr.to_str().unwrap(),
            "--out",
            items.to_str().unwrap()
        ])
        .status()
        .unwrap()
        .success());
    let out = cli()
        .args(["mine", "--data", items.to_str().unwrap(), "--class", "9"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}
