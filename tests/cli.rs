//! End-to-end tests of the `bstc-cli` binary: synth → discretize → train
//! → classify → mine through actual process invocations and files.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bstc-cli"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bstc_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_pipeline_through_the_binary() {
    let expr = tmp("expr.tsv");
    let items = tmp("items.tsv");
    let cuts = tmp("cuts.json");
    let model = tmp("model.json");

    let out = cli()
        .args(["synth", "--preset", "all", "--scale", "40", "--seed", "3"])
        .args(["--out", expr.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(expr.exists());

    let out = cli()
        .args(["discretize", "--train", expr.to_str().unwrap()])
        .args(["--out", items.to_str().unwrap(), "--cuts", cuts.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("selected"), "{stderr}");
    assert!(cuts.exists());

    let out = cli()
        .args(["train", "--data", items.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = cli()
        .args(["classify", "--model", model.to_str().unwrap()])
        .args(["--data", items.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sample 0:"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("accuracy vs file labels"), "{stderr}");

    let out = cli()
        .args(["mine", "--data", items.to_str().unwrap(), "--class", "1", "-k", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("=> ALL"), "{stdout}");
    assert!(stdout.contains("car-confidence"), "{stdout}");
}

#[test]
fn train_save_then_serve_round_trips_over_http() {
    use std::io::{BufRead, BufReader, Read, Write};

    let expr = tmp("expr3.tsv");
    let bundle_path = tmp("bundle.json");

    let out = cli()
        .args(["synth", "--preset", "all", "--scale", "40", "--seed", "11"])
        .args(["--out", expr.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = cli()
        .args(["train", "--data", expr.to_str().unwrap()])
        .args(["--save", bundle_path.to_str().unwrap(), "--dataset", "cli-e2e", "--seed", "11"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("wrote bundle"));

    // The saved artifact is loadable in-process: this is the parity oracle.
    let bundle = serve::ModelBundle::load(&bundle_path).unwrap();
    let data = microarray::io::read_cont_tsv(std::fs::File::open(&expr).unwrap()).unwrap();

    let mut child = cli()
        .args(["serve", "--model", bundle_path.to_str().unwrap()])
        .args(["--addr", "127.0.0.1:0", "--threads", "2"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = BufReader::new(child.stderr.take().unwrap()).lines();
    let addr = loop {
        let line = lines.next().expect("serve exited before announcing its address").unwrap();
        if let Some(rest) = line.split("serving on http://").nth(1) {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };

    // Batch-POST every sample and demand bit-identical classes.
    let rows: Vec<String> = (0..data.n_samples())
        .map(|s| {
            let vals: Vec<String> = data.row(s).iter().map(|v| format!("{v}")).collect();
            format!("[{}]", vals.join(","))
        })
        .collect();
    let body = format!("{{\"samples\":[{}]}}", rows.join(","));
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .write_all(
            format!(
                "POST /classify HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    child.kill().unwrap();
    child.wait().unwrap();

    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let json_body = response.split("\r\n\r\n").nth(1).unwrap();
    let served: serde_json::Value = serde_json::from_str(json_body).unwrap();
    let predictions = served.get("predictions").unwrap().as_array().unwrap();
    assert_eq!(predictions.len(), data.n_samples());
    for (s, p) in predictions.iter().enumerate() {
        let expected = bundle.classify_row(data.row(s)).unwrap();
        assert_eq!(
            p.get("class").unwrap().as_u64(),
            Some(expected.class as u64),
            "served class diverges from in-process classify at sample {s}"
        );
    }
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().arg("bogus").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_flag_fails_cleanly() {
    let out = cli().args(["train", "--data", "/nonexistent.tsv"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --model"));
}

#[test]
fn help_prints_usage() {
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("commands:"));
}

#[test]
fn bad_class_is_rejected_by_mine() {
    let expr = tmp("expr2.tsv");
    let items = tmp("items2.tsv");
    assert!(cli()
        .args(["synth", "--preset", "all", "--scale", "40", "--out", expr.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cli()
        .args(["discretize", "--train", expr.to_str().unwrap(), "--out", items.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out =
        cli().args(["mine", "--data", items.to_str().unwrap(), "--class", "9"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}
