//! Cross-crate integration tests: the full §6 pipeline from synthetic
//! generation through discretization to every classifier.

use discretize::Discretizer;
use eval::{draw_split, SplitSpec};
use microarray::synth::{presets, SynthConfig};

fn demo_config(seed: u64) -> SynthConfig {
    SynthConfig {
        name: "integration".into(),
        n_genes: 120,
        class_sizes: vec![14, 18],
        class_names: vec!["normal".into(), "tumor".into()],
        markers_per_class: 12,
        marker_shift: 2.2,
        marker_dropout: 0.08,
        marker_modules: 3,
        wobble_rate: 0.1,
        marker_flip: 0.02,
        atypical_rate: 0.05,
        atypical_strength: 0.3,
        seed,
    }
}

#[test]
fn full_pipeline_beats_chance_for_every_classifier() {
    let data = demo_config(5).generate();
    let split = draw_split(data.labels(), 2, &SplitSpec::Fraction(0.6), 3);
    let p = eval::prepare(&data, &split).expect("informative genes");

    // Majority-class rate on the test side = the chance baseline.
    let sizes = p.bool_test.class_sizes();
    let chance = *sizes.iter().max().unwrap() as f64 / p.bool_test.n_samples() as f64;

    let bstc = eval::run_bstc(&p);
    assert!(bstc.accuracy >= chance, "BSTC {} < chance {}", bstc.accuracy, chance);

    let base = eval::run_baselines(
        &p,
        eval::BaselineParams { forest_trees: 40, bagging_rounds: 10, boosting_rounds: 10, seed: 1 },
    );
    assert!(base.svm >= chance - 0.15, "svm {}", base.svm);
    assert!(base.forest >= chance - 0.15, "forest {}", base.forest);

    let rcbt = eval::run_rcbt(
        &p,
        rulemine::RcbtParams { k: 5, nl: 10, minsup: 0.6 },
        std::time::Duration::from_secs(20),
        std::time::Duration::from_secs(20),
    );
    if let Some(acc) = rcbt.accuracy {
        assert!(acc >= chance - 0.25, "rcbt {acc}");
    }
}

#[test]
fn bstc_and_rcbt_agree_with_explicit_pipeline() {
    // The runner must compute exactly what the by-hand pipeline computes.
    let data = demo_config(9).generate();
    let split = draw_split(data.labels(), 2, &SplitSpec::Fraction(0.6), 4);
    let p = eval::prepare(&data, &split).unwrap();

    let train = data.subset(&split.train);
    let test = data.subset(&split.test);
    let disc = Discretizer::fit(&train);
    let bool_train = disc.transform(&train).unwrap();
    let bool_test = disc.transform(&test).unwrap();

    assert_eq!(p.bool_train.n_items(), bool_train.n_items());
    let model = bstc::BstcModel::train(&bool_train);
    let preds = model.classify_all(bool_test.samples());
    let by_hand = eval::accuracy(&preds, bool_test.labels());
    let via_runner = eval::run_bstc(&p).accuracy;
    assert_eq!(by_hand, via_runner);
}

#[test]
fn multiclass_pipeline_works_end_to_end() {
    let data = presets::three_class(17).scaled_down(3).generate();
    assert_eq!(data.n_classes(), 3);
    let split = draw_split(data.labels(), 3, &SplitSpec::Fraction(0.6), 11);
    let p = eval::prepare(&data, &split).expect("informative genes");
    let run = eval::run_bstc(&p);
    let sizes = p.bool_test.class_sizes();
    let chance = *sizes.iter().max().unwrap() as f64 / p.bool_test.n_samples() as f64;
    assert!(run.accuracy >= chance - 0.1, "3-class acc {} vs chance {}", run.accuracy, chance);
}

#[test]
fn pipeline_is_fully_deterministic() {
    let run = || {
        let data = demo_config(21).generate();
        let split = draw_split(data.labels(), 2, &SplitSpec::Fraction(0.6), 2);
        let p = eval::prepare(&data, &split).unwrap();
        let model = bstc::BstcModel::train(&p.bool_train);
        model.classify_all(p.bool_test.samples())
    };
    assert_eq!(run(), run());
}

#[test]
fn dnf_accounting_reaches_the_harness() {
    let data = demo_config(33).generate();
    let split = draw_split(data.labels(), 2, &SplitSpec::Fraction(0.6), 8);
    let p = eval::prepare(&data, &split).unwrap();
    let run = eval::run_rcbt(
        &p,
        rulemine::RcbtParams { k: 10, nl: 20, minsup: 0.0 },
        std::time::Duration::from_nanos(1),
        std::time::Duration::from_nanos(1),
    );
    assert!(run.topk_dnf);
    assert!(run.accuracy.is_none(), "DNF training must not report accuracy");
}

#[test]
fn discretizer_survives_serialization_mid_pipeline() {
    let data = demo_config(41).generate();
    let split = draw_split(data.labels(), 2, &SplitSpec::Fraction(0.6), 2);
    let train = data.subset(&split.train);
    let test = data.subset(&split.test);
    let disc = Discretizer::fit(&train);
    let json = serde_json::to_string(&disc).unwrap();
    let disc2: Discretizer = serde_json::from_str(&json).unwrap();
    let a = disc.transform(&test).unwrap();
    let b = disc2.transform(&test).unwrap();
    for s in 0..a.n_samples() {
        assert_eq!(a.sample(s), b.sample(s));
    }
}

#[test]
fn bool_dataset_round_trips_through_tsv_mid_pipeline() {
    let data = demo_config(55).generate();
    let split = draw_split(data.labels(), 2, &SplitSpec::Fraction(0.6), 2);
    let p = eval::prepare(&data, &split).unwrap();
    let mut buf = Vec::new();
    microarray::io::write_bool_tsv(&p.bool_train, &mut buf).unwrap();
    let back = microarray::io::read_bool_tsv(&buf[..]).unwrap();
    // A model trained on the round-tripped data behaves identically.
    let m1 = bstc::BstcModel::train(&p.bool_train);
    let m2 = bstc::BstcModel::train(&back);
    for q in p.bool_test.samples() {
        assert_eq!(m1.classify(q), m2.classify(q));
    }
}
