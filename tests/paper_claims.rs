//! Integration tests asserting the paper's *claims*, not just its
//! mechanics: the worked examples, the accuracy relationships, and the
//! polynomial-vs-exponential scaling contrast.

use bstc::{Bst, BstcModel};
use microarray::fixtures::{section54_query, table1};
use microarray::synth::BoolSynthConfig;
use rulemine::{mine_topk_groups, Budget, Outcome, TopkParams};
use std::time::Instant;

/// §5.4 end to end: the exact numbers of the worked example.
#[test]
fn section_5_4_worked_example() {
    let data = table1();
    let model = BstcModel::train(&data);
    let q = section54_query();
    let v = model.class_values(&q);
    assert!((v[0] - 0.75).abs() < 1e-12, "Cancer value {}", v[0]);
    assert!((v[1] - 0.375).abs() < 1e-12, "Healthy value {}", v[1]);
    assert_eq!(model.classify(&q), 0);
}

/// §1's motivating rules both hold on Table 1.
#[test]
fn section_1_motivating_cars() {
    let data = table1();
    let g1g3 = rulemine::Car::new(vec![0, 2], 0);
    assert_eq!(g1g3.support(&data), 2);
    assert_eq!(g1g3.confidence(&data), Some(1.0));
    let g5g6 = rulemine::Car::new(vec![4, 5], 1);
    assert_eq!(g5g6.support(&data), 1);
    assert_eq!(g5g6.confidence(&data), Some(1.0));
}

/// §3.1.1: BST construction for all classes stays within the O(|S|²·|G|)
/// envelope — quadrupling samples must not increase build time by much
/// more than 16x (generous 3x headroom for noise).
#[test]
fn bst_build_scales_polynomially() {
    let build_time = |n: usize| {
        let data = BoolSynthConfig {
            name: "scale".into(),
            n_items: 400,
            class_sizes: vec![n / 2, n / 2],
            class_names: vec!["a".into(), "b".into()],
            markers_per_class: 60,
            marker_on: 0.9,
            background_on: 0.3,
            seed: 3,
        }
        .generate();
        // Warm up, then measure the median of 3.
        let _ = Bst::build_all(&data);
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                let t = Instant::now();
                let _ = Bst::build_all(&data);
                t.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[1]
    };
    let t1 = build_time(50);
    let t4 = build_time(200);
    assert!(t4 / t1 < 48.0, "4x samples cost {:.1}x (> 16x theory with 3x headroom)", t4 / t1);
}

/// The scalability story: on module-structured data with per-sample
/// noise, Top-k's search explodes with training size while BSTC stays
/// polynomial. We assert the *ordering*: at the large size, BSTC finishes
/// fast while Top-k exceeds a node budget that was ample at the small
/// size.
#[test]
fn topk_explodes_where_bstc_does_not() {
    let dataset = |n: usize| {
        BoolSynthConfig {
            name: "explode".into(),
            n_items: 300,
            class_sizes: vec![n / 2, n / 2],
            class_names: vec!["a".into(), "b".into()],
            markers_per_class: 30,
            marker_on: 0.85,
            background_on: 0.25,
            seed: 7,
        }
        .generate()
    };
    let nodes = 500_000u64;

    let small = dataset(20);
    let mut b = Budget::with_nodes(nodes);
    let res = mine_topk_groups(&small, 0, TopkParams { k: 10, minsup: 0.5 }, &mut b);
    assert_eq!(res.outcome, Outcome::Finished, "small Top-k should finish");

    let large = dataset(120);
    let mut b = Budget::with_nodes(nodes);
    let res = mine_topk_groups(&large, 0, TopkParams { k: 10, minsup: 0.5 }, &mut b);
    assert_eq!(res.outcome, Outcome::DidNotFinish, "large Top-k should blow the node budget");

    // BSTC on the same large dataset: full train + classify in well under
    // a second.
    let t = Instant::now();
    let model = BstcModel::train(&large);
    for s in 0..large.n_samples() {
        let _ = model.classify(large.sample(s));
    }
    assert!(t.elapsed().as_secs_f64() < 2.0, "BSTC took {:?}", t.elapsed());
}

/// §5.3: BSTC is parameter-free and multi-class — train on 4 classes with
/// no configuration and classify exclusive markers correctly.
#[test]
fn multiclass_parameter_free() {
    let data = BoolSynthConfig {
        name: "four".into(),
        n_items: 80,
        class_sizes: vec![8, 8, 8, 8],
        class_names: (0..4).map(|i| format!("c{i}")).collect(),
        markers_per_class: 10,
        marker_on: 0.95,
        background_on: 0.05,
        seed: 5,
    }
    .generate();
    let model = BstcModel::train(&data);
    assert_eq!(model.n_classes(), 4);
    let correct =
        (0..data.n_samples()).filter(|&s| model.classify(data.sample(s)) == data.label(s)).count();
    assert!(
        correct as f64 >= 0.9 * data.n_samples() as f64,
        "{correct}/{} correct",
        data.n_samples()
    );
}

/// §4.3 + §7: "BSTs contain all the information of the high confidence
/// CARs". Cross-validate the two representations: every rule on the
/// TOP-RULES border (all minimal 100%-confident CARs) must map through
/// Theorem 2 to a BST BAR with *zero* actively-excluded samples, and its
/// class support must match — on Table 1 and on random-ish synthetic data.
#[test]
fn toprules_border_agrees_with_bst_representation() {
    let datasets = vec![
        table1(),
        BoolSynthConfig {
            name: "cross".into(),
            n_items: 24,
            class_sizes: vec![6, 8],
            class_names: vec!["a".into(), "b".into()],
            markers_per_class: 5,
            marker_on: 0.8,
            background_on: 0.25,
            seed: 13,
        }
        .generate(),
    ];
    for data in datasets {
        for class in 0..data.n_classes() {
            let bst = Bst::build(&data, class);
            let mut budget = Budget::with_nodes(5_000_000);
            let border = rulemine::mine_top_rules(&data, class, 4, 100, &mut budget);
            assert!(!border.rules.is_empty());
            for car in &border.rules {
                // Theorem 2: a 100%-confident CAR corresponds to a BST BAR
                // actively excluding (1/c − 1)|supp| = 0 samples.
                let (supp, excluded, conf) =
                    bstc::theorem2_numbers(&bst, &car.items).expect("supported rule");
                assert_eq!(excluded, 0, "{car:?} should exclude nothing");
                assert_eq!(conf, 1.0);
                assert_eq!(supp, car.support(&data), "{car:?} support mismatch");
            }
        }
    }
}

/// §4.3/Theorem 2 on the running example: every 1- and 2-item CAR has a
/// 100%-confident BST BAR counterpart with matching support.
#[test]
fn theorem_2_on_running_example() {
    let data = table1();
    for class in 0..2 {
        let bst = Bst::build(&data, class);
        for a in 0..6 {
            for b in a..6 {
                let items = if a == b { vec![a] } else { vec![a, b] };
                assert!(
                    bstc::theorem2_round_trip(&data, &bst, &items),
                    "class {class} items {items:?}"
                );
            }
        }
    }
}
