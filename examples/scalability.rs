//! The headline claim, in one minute: BSTC's cost grows polynomially with
//! training size while Top-k rule-group mining grows exponentially —
//! BSTC keeps working where the CAR pipeline stops.
//!
//! Run with: `cargo run --release --example scalability`

use microarray::synth::BoolSynthConfig;
use rulemine::{mine_topk_groups, Budget, TopkParams};
use std::time::{Duration, Instant};

fn dataset(n_samples: usize) -> microarray::BoolDataset {
    BoolSynthConfig {
        name: "scalability demo".into(),
        n_items: 400,
        class_sizes: vec![n_samples / 2, n_samples - n_samples / 2],
        class_names: vec!["healthy".into(), "tumor".into()],
        markers_per_class: 40,
        marker_on: 0.85,
        background_on: 0.25,
        seed: 11,
    }
    .generate()
}

fn main() {
    let cutoff = Duration::from_secs(5);
    println!("per-size cost of training+using each method (cutoff {cutoff:?})\n");
    println!("{:>8}  {:>12}  {:>16}", "samples", "BSTC (s)", "Top-k mining (s)");
    for n in [16usize, 24, 32, 48, 64, 96] {
        let data = dataset(n);

        let t0 = Instant::now();
        let model = bstc::BstcModel::train(&data);
        for s in 0..data.n_samples() {
            let _ = model.classify(data.sample(s));
        }
        let bstc_secs = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mut budget = Budget::with_time(cutoff);
        let mut dnf = false;
        for class in 0..2 {
            let res =
                mine_topk_groups(&data, class, TopkParams { k: 10, minsup: 0.6 }, &mut budget);
            dnf |= res.outcome.dnf();
        }
        let topk = if dnf {
            format!(">= {:.2} (DNF)", t1.elapsed().as_secs_f64())
        } else {
            format!("{:.4}", t1.elapsed().as_secs_f64())
        };

        println!("{n:>8}  {bstc_secs:>12.4}  {topk:>16}");
    }
    println!("\nBSTC is O(|S|^2 * |G|); the rule miner's pruned search is exponential");
    println!("in the training samples — the paper's Tables 4 and 6 in miniature.");
}
