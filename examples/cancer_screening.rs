//! A realistic screening scenario: train BSTC on a synthetic
//! leukemia-shaped dataset (7129 genes scaled down for a fast demo),
//! entropy-discretize, and compare against SVM and a random forest —
//! the §6.1 protocol on one clinically-sized split.
//!
//! Run with: `cargo run --release --example cancer_screening`

use discretize::Discretizer;
use eval::{draw_split, SplitSpec};
use microarray::synth::presets;

fn main() {
    // ALL/AML at 1/3 scale: ~2400 genes, 8 AML + 15 ALL — small enough to
    // run in seconds, big enough for the entropy discretizer to find the
    // real markers.
    let config = presets::all_aml(2024).scaled_down(3);
    println!(
        "dataset: {} ({} genes, {:?} samples/class)",
        config.name, config.n_genes, config.class_sizes
    );
    let data = config.generate();

    // Clinically-proportioned training split (cf. Table 3's 27/11 at full
    // scale), seeded and reproducible.
    let split =
        draw_split(data.labels(), data.n_classes(), &SplitSpec::FixedCounts(vec![5, 11]), 7);
    println!("training on {} samples, testing on {}", split.train.len(), split.test.len());

    let train = data.subset(&split.train);
    let test = data.subset(&split.test);

    // Entropy-MDL discretization, fitted on training data only.
    let disc = Discretizer::fit(&train);
    println!("genes after discretization: {} (of {})", disc.selected_genes().len(), data.n_genes());
    let bool_train = disc.transform(&train).expect("informative genes");
    let bool_test = disc.transform(&test).expect("same universe");

    // BSTC: parameter-free training.
    let model = bstc::BstcModel::train(&bool_train);
    let preds = model.classify_all(bool_test.samples());
    let bstc_acc = eval::accuracy(&preds, bool_test.labels());
    println!("BSTC accuracy:          {:.1}%", 100.0 * bstc_acc);

    // Baselines on the undiscretized selected genes (§6.1's protocol).
    let sel = disc.selected_genes();
    let cont_train = train.select_genes(&sel);
    let cont_test = test.select_genes(&sel);
    use baselines::ContinuousClassifier;

    let svm = baselines::Svm::fit(&cont_train, baselines::SvmParams::default());
    let svm_acc = eval::accuracy(&svm.predict_all(&cont_test), cont_test.labels());
    println!("SVM (RBF) accuracy:     {:.1}%", 100.0 * svm_acc);

    let forest = baselines::RandomForest::fit(
        &cont_train,
        baselines::ForestParams { n_trees: 100, seed: 7, ..Default::default() },
    );
    let rf_acc = eval::accuracy(&forest.predict_all(&cont_test), cont_test.labels());
    println!("random forest accuracy: {:.1}%", 100.0 * rf_acc);

    // Justify one non-default prediction with its strongest cell rules.
    if let Some(q) = (0..bool_test.n_samples()).find(|&s| preds[s] == 1) {
        println!("\nwhy was test sample {q} called {}?", bool_test.class_names()[1]);
        for e in model.explain(1, bool_test.sample(q), 0.999).into_iter().take(5) {
            println!(
                "  fully satisfied cell rule: item {} / training sample {}",
                bool_train.item_names()[e.item],
                e.supporting_sample
            );
        }
    }
}
