//! Quickstart: the paper's running example, end to end.
//!
//! Reproduces Table 1, the Figure 1 Cancer BST, the Figure 2 gene-row
//! BARs, and the §5.4 worked classification (Figure 3): the query
//! `{g1, g4, g5}` scores 3/4 against the Cancer BST and 3/8 against
//! Healthy, so BSTC classifies it as Cancer.
//!
//! Run with: `cargo run --example quickstart`

use bstc::{all_row_bars, display_bar, Bst, BstcModel};
use microarray::fixtures::{section54_query, table1};

fn main() {
    let data = table1();

    println!("== Table 1: the running example ==");
    for s in 0..data.n_samples() {
        let items: Vec<&str> =
            data.sample(s).iter().map(|g| data.item_names()[g].as_str()).collect();
        println!("  s{}: {{{}}}  [{}]", s + 1, items.join(", "), data.class_names()[data.label(s)]);
    }

    println!("\n== Figure 1: the Cancer BST ==");
    let cancer_bst = Bst::build(&data, 0);
    println!("{}", cancer_bst.render(&data));

    println!("== Figure 2: gene-row BARs (100% confidence) ==");
    for (g, bar) in all_row_bars(&cancer_bst).into_iter().enumerate() {
        if let Some(bar) = bar {
            println!("  Gene g{}: {}", g + 1, display_bar(&bar, &data));
            assert_eq!(bar.confidence(&data), Some(1.0));
        }
    }

    println!("\n== Section 5.4: classifying Q = {{g1, g4, g5 expressed}} ==");
    let model = BstcModel::train(&data);
    let query = section54_query();
    let values = model.class_values(&query);
    println!("  Cancer  classification value: {:.4} (paper: 0.75)", values[0]);
    println!("  Healthy classification value: {:.4} (paper: 0.375)", values[1]);
    let class = model.classify(&query);
    println!("  BSTC classifies Q as: {}", data.class_names()[class]);
    assert_eq!(class, 0);
    assert!((values[0] - 0.75).abs() < 1e-12);
    assert!((values[1] - 0.375).abs() < 1e-12);

    println!("\n== §5.3.2: why? the satisfied cell rules ==");
    for e in model.explain(class, &query, 0.0) {
        println!(
            "  cell ({}, s{}): satisfaction {:.2}",
            data.item_names()[e.item],
            e.supporting_sample + 1,
            e.satisfaction
        );
    }
}
