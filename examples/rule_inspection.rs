//! Rule mining beyond classification: (MC)²BARs (Algorithm 3), per-sample
//! covering rules (Algorithm 4), IBRG bounds (§4.2), and the Theorem 2
//! CAR ⇄ BAR correspondence — the "biologically meaningful rules" story
//! of §5.3.2.
//!
//! Run with: `cargo run --example rule_inspection`

use bstc::{bar_for_car, display_bar, mine_topk, mine_topk_per_sample, Bst, Ibrg};
use microarray::fixtures::table1;

fn main() {
    let data = table1();
    let bst = Bst::build(&data, 0); // the Cancer BST of Figure 1

    println!("== Algorithm 3: top-k (MC)²BARs for Cancer ==");
    for rule in mine_topk(&bst, 8) {
        let supp: Vec<String> =
            rule.support_sample_ids(&bst).iter().map(|&s| format!("s{}", s + 1)).collect();
        let items: Vec<&str> =
            rule.car_items.iter().map(|&g| data.item_names()[g].as_str()).collect();
        println!(
            "  supp {{{}}}  car {{{}}}  CAR-confidence {:.2}",
            supp.join(","),
            items.join(","),
            rule.car_confidence()
        );
        if !rule.car_items.is_empty() {
            println!("    as BAR: {}", display_bar(&rule.to_bar(&bst), &data));
        }
    }

    println!("\n== Algorithm 4: per-sample covering rules (k = 1) ==");
    for rule in mine_topk_per_sample(&bst, 1) {
        let supp: Vec<String> =
            rule.support_sample_ids(&bst).iter().map(|&s| format!("s{}", s + 1)).collect();
        println!("  supp {{{}}}  |car| = {}", supp.join(","), rule.car_items.len());
    }

    println!("\n== §4.2: the IBRG with support {{s2}} ==");
    let s2_group = Ibrg {
        class: 0,
        support: microarray::BitSet::from_iter(3, [1]),
        upper_bound: vec![0, 2, 5], // g1, g3, g6
    };
    for items in [vec![0usize, 5], vec![2, 5], vec![0, 2, 5]] {
        let names: Vec<&str> = items.iter().map(|&g| data.item_names()[g].as_str()).collect();
        println!(
            "  {{{}}}: member={} lower_bound={} upper_bound={}",
            names.join(","),
            s2_group.contains(&bst, &items),
            s2_group.is_lower_bound(&bst, &items),
            s2_group.is_upper_bound(&items),
        );
    }

    println!("\n== §7 cross-check: the TOP-RULES border of 100%-confident CARs ==");
    for class in 0..2 {
        let mut budget = rulemine::Budget::unlimited();
        let border = rulemine::mine_top_rules(&data, class, 4, 50, &mut budget);
        let rendered: Vec<String> = border
            .rules
            .iter()
            .map(|car| {
                let names: Vec<&str> =
                    car.items.iter().map(|&g| data.item_names()[g].as_str()).collect();
                format!("{{{}}}", names.join(","))
            })
            .collect();
        println!(
            "  minimal 100%-confident CARs => {}: {}",
            data.class_names()[class],
            rendered.join("  ")
        );
        // Theorem 2 says each corresponds to a BST BAR excluding nothing.
        let class_bst = Bst::build(&data, class);
        for car in &border.rules {
            let (_, excluded, _) = bstc::theorem2_numbers(&class_bst, &car.items).unwrap();
            assert_eq!(excluded, 0);
        }
    }

    println!("\n== Theorem 2: from CAR g3 => Cancer to a 100%-confident BAR ==");
    let bar = bar_for_car(&bst, &[2]).expect("g3 is supported");
    println!("  BAR: {}", display_bar(&bar, &data));
    println!(
        "  BAR confidence: {:.2}; stripped CAR confidence: {:.2}",
        bar.confidence(&data).unwrap(),
        bar.strip_to_car().confidence(&data).unwrap(),
    );
    let (supp, excl, conf) = bstc::theorem2_numbers(&bst, &[2]).unwrap();
    println!("  theorem-2 numbers: support {supp}, actively excluded {excl}, conf {conf:.2}");
}
