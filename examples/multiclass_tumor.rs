//! The §5.3 multi-class claim in action: BSTC on a three-subtype tumor
//! dataset, something the two-class CAR classifiers of the paper's era
//! could not handle directly.
//!
//! Run with: `cargo run --release --example multiclass_tumor`

use discretize::Discretizer;
use eval::{draw_split, SplitSpec};
use microarray::synth::presets;

fn main() {
    let config = presets::three_class(99).scaled_down(4);
    println!(
        "dataset: {} — {} classes {:?}",
        config.name,
        config.class_names.len(),
        config.class_sizes
    );
    let data = config.generate();

    let split = draw_split(data.labels(), data.n_classes(), &SplitSpec::Fraction(0.6), 5);
    let train = data.subset(&split.train);
    let test = data.subset(&split.test);

    let disc = Discretizer::fit(&train);
    let bool_train = disc.transform(&train).expect("informative genes");
    let bool_test = disc.transform(&test).expect("same universe");

    // One BST per class — N = 3 here; Algorithm 6 is unchanged.
    let model = bstc::BstcModel::train(&bool_train);
    assert_eq!(model.n_classes(), 3);

    let preds = model.classify_all(bool_test.samples());
    let acc = eval::accuracy(&preds, bool_test.labels());
    println!("BSTC 3-class accuracy: {:.1}% on {} test samples", 100.0 * acc, preds.len());

    // Per-class confusion row.
    for c in 0..3 {
        let members: Vec<usize> =
            (0..bool_test.n_samples()).filter(|&s| bool_test.label(s) == c).collect();
        let hits = members.iter().filter(|&&s| preds[s] == c).count();
        println!("  {}: {}/{} correct", bool_test.class_names()[c], hits, members.len());
    }

    // The per-query confidence gap (§8): how sure is the model?
    let gaps: Vec<f64> = bool_test.samples().iter().map(|q| model.confidence_gap(q)).collect();
    println!("mean confidence gap: {:.3}", eval::mean(&gaps));
}
