//! Offline stand-in for `rayon` (API subset used by this workspace):
//! `slice.par_iter().enumerate().map(f).collect::<Vec<_>>()`.
//!
//! The model is *indexed*: every adapter is random-access over a base
//! slice, and `collect` fans the index range out across
//! `std::thread::scope` workers (one chunk per available core). On a
//! single-core host it degrades to a plain sequential loop with no thread
//! spawns.

/// Everything call sites need in scope.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Types whose references can be iterated in parallel.
pub trait IntoParallelRefIterator<'a> {
    /// The produced parallel iterator.
    type Iter: ParallelIterator;
    /// Creates a parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SlicePar<'a, T>;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

/// Random-access parallel iterator.
pub trait ParallelIterator: Sized + Sync {
    /// Item type produced for each index.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produces the item at `index` (called once per index).
    fn item_at(&self, index: usize) -> Self::Item;

    /// Maps each item through `f`.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Computes every item and gathers them in index order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }
}

/// Base iterator over a slice.
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn item_at(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn item_at(&self, index: usize) -> R {
        (self.f)(self.base.item_at(index))
    }
}

/// `enumerate` adapter.
pub struct Enumerate<B> {
    base: B,
}

impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
    type Item = (usize, B::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn item_at(&self, index: usize) -> (usize, B::Item) {
        (index, self.base.item_at(index))
    }
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T: Send>: Sized {
    /// Gathers all items of `iter` in index order.
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Self;
}

/// Inputs at or below this length are evaluated inline: for tiny
/// work-lists (a 2-class `build_all` fan-out, a small CV cell) the
/// `thread::scope` spawn/join round trip costs more than the work, and
/// staying sequential also keeps nested parallelism (per-class over
/// per-column) from oversubscribing the machine.
const SEQUENTIAL_CUTOFF: usize = 4;

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(iter: P) -> Vec<T> {
        let n = iter.par_len();
        let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
        let workers = workers.min(n).max(1);
        let chunk = n.div_ceil(workers);
        // Sequential fast path: one worker, a single chunk, or an input
        // too small to amortize thread spawns.
        if workers <= 1 || chunk == n || n <= SEQUENTIAL_CUTOFF {
            return (0..n).map(|i| iter.item_at(i)).collect();
        }
        let iter = &iter;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(n);
                    scope.spawn(move || (lo..hi).map(|i| iter.item_at(i)).collect::<Vec<T>>())
                })
                .collect();
            let mut out = Vec::with_capacity(n);
            for h in handles {
                out.extend(h.join().expect("rayon shim worker panicked"));
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_enumerate_collect_preserves_order() {
        let data: Vec<usize> = (0..1000).collect();
        let out: Vec<(usize, usize)> =
            data.par_iter().enumerate().map(|(i, &v)| (i, v * 2)).collect();
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*doubled, i * 2);
        }
    }

    #[test]
    fn empty_input_collects_empty() {
        let data: Vec<u8> = Vec::new();
        let out: Vec<u8> = data.par_iter().map(|&b| b).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn tiny_inputs_stay_on_the_calling_thread() {
        // At or below the sequential cutoff no scope is entered, so the
        // mapped closure must observe the caller's thread id.
        let caller = std::thread::current().id();
        for n in 0..=super::SEQUENTIAL_CUTOFF {
            let data: Vec<usize> = (0..n).collect();
            let ids: Vec<std::thread::ThreadId> =
                data.par_iter().map(|_| std::thread::current().id()).collect();
            assert!(ids.iter().all(|&id| id == caller), "n={n} spawned threads");
        }
    }

    #[test]
    fn results_identical_across_cutoff_boundary() {
        for n in [0usize, 1, 4, 5, 64, 1000] {
            let data: Vec<usize> = (0..n).collect();
            let out: Vec<usize> = data.par_iter().map(|&v| v * 3 + 1).collect();
            let expected: Vec<usize> = (0..n).map(|v| v * 3 + 1).collect();
            assert_eq!(out, expected, "n={n}");
        }
    }
}
