//! Offline stand-in for `serde_derive` (subset).
//!
//! The registry is unreachable in this build environment, so `syn`/`quote`
//! are unavailable; this crate parses the item's `TokenStream` by hand and
//! emits impls as strings. It supports exactly the shapes this workspace
//! uses:
//!
//! * non-generic structs with named fields (field attrs `#[serde(default)]`,
//!   `#[serde(default = "path")]`, `#[serde(with = "module")]`,
//!   `#[serde(skip)]` — omitted on serialize, `Default::default()` on
//!   deserialize);
//! * non-generic tuple structs (newtype and longer);
//! * non-generic enums with unit / tuple / struct variants, externally
//!   tagged, plus `#[serde(untagged)]` for enums of newtype variants.
//!
//! Anything else (generics, renames, skips, …) fails with a
//! `compile_error!` naming the unsupported construct, so drift is caught
//! at compile time rather than producing wrong data.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

// ---------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------

#[derive(Default, Clone)]
struct SerdeOpts {
    untagged: bool,
    /// `Some(None)` = `#[serde(default)]`; `Some(Some(p))` = `default = "p"`.
    default: Option<Option<String>>,
    with: Option<String>,
    skip: bool,
}

struct Field {
    name: String,
    ty: String,
    opts: SerdeOpts,
}

enum VariantKind {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    Struct(Vec<Field>),
    TupleStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    untagged: bool,
    kind: ItemKind,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it = input.into_iter().peekable();
    let mut opts = SerdeOpts::default();
    let is_enum = loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(o) = parse_attr(&mut it)? {
                    merge(&mut opts, o);
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(other) => return Err(format!("unexpected token before item: `{other}`")),
            None => return Err("expected `struct` or `enum`".into()),
        }
    };
    it.next(); // struct/enum keyword
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    match it.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            Err(format!("serde shim derive: generic type `{name}` is not supported"))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let kind = if is_enum {
                ItemKind::Enum(parse_variants(g.stream())?)
            } else {
                ItemKind::Struct(parse_named_fields(g.stream())?)
            };
            Ok(Item { name, untagged: opts.untagged, kind })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
            Ok(Item {
                name,
                untagged: opts.untagged,
                kind: ItemKind::TupleStruct(parse_tuple_types(g.stream())?),
            })
        }
        other => Err(format!("unsupported item body for `{name}`: {other:?}")),
    }
}

fn merge(into: &mut SerdeOpts, from: SerdeOpts) {
    into.untagged |= from.untagged;
    if from.default.is_some() {
        into.default = from.default;
    }
    if from.with.is_some() {
        into.with = from.with;
    }
    into.skip |= from.skip;
}

/// Consumes one `#[...]` attribute; returns its serde options if it was a
/// `#[serde(...)]` attribute, `None` otherwise (doc comments, `#[default]`…).
fn parse_attr(it: &mut TokenIter) -> Result<Option<SerdeOpts>, String> {
    it.next(); // '#'
    let group = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
        other => return Err(format!("malformed attribute: {other:?}")),
    };
    let mut inner = group.stream().into_iter().peekable();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(None),
    }
    let list = match inner.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        other => return Err(format!("malformed #[serde] attribute: {other:?}")),
    };
    let mut opts = SerdeOpts::default();
    let mut items = list.stream().into_iter().peekable();
    while let Some(tt) = items.next() {
        let key = match tt {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => return Err(format!("unsupported #[serde] token: `{other}`")),
        };
        let value = match items.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                items.next();
                match items.next() {
                    Some(TokenTree::Literal(l)) => Some(unquote(&l.to_string())?),
                    other => return Err(format!("expected string after `{key} =`: {other:?}")),
                }
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("untagged", None) => opts.untagged = true,
            ("default", v) => opts.default = Some(v),
            ("with", Some(p)) => opts.with = Some(p),
            ("skip", None) => opts.skip = true,
            (other, _) => {
                return Err(format!("serde shim derive: unsupported attribute `{other}`"))
            }
        }
    }
    Ok(Some(opts))
}

fn unquote(lit: &str) -> Result<String, String> {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Ok(s[1..s.len() - 1].to_string())
    } else {
        Err(format!("expected string literal, got `{lit}`"))
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while it.peek().is_some() {
        let mut opts = SerdeOpts::default();
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(o) = parse_attr(&mut it)? {
                merge(&mut opts, o);
            }
        }
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        let ty = collect_type(&mut it);
        fields.push(Field { name, ty, opts });
    }
    Ok(fields)
}

/// Collects type tokens up to a top-level `,` (consumed) or end of stream.
fn collect_type(it: &mut TokenIter) -> String {
    let mut depth = 0i64;
    let mut parts: Vec<TokenTree> = Vec::new();
    while let Some(tt) = it.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                it.next();
                break;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
        parts.push(it.next().expect("peeked"));
    }
    // Render through TokenStream so joint punctuation (`::`) keeps its
    // spacing; naive per-token joining would produce invalid `: :`.
    parts.into_iter().collect::<TokenStream>().to_string()
}

fn parse_tuple_types(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut it = stream.into_iter().peekable();
    let mut types = Vec::new();
    while it.peek().is_some() {
        // Tuple fields may carry attrs/visibility too.
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            parse_attr(&mut it)?;
        }
        if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
        let ty = collect_type(&mut it);
        if !ty.is_empty() {
            types.push(ty);
        }
    }
    Ok(types)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while it.peek().is_some() {
        while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            parse_attr(&mut it)?;
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                it.next();
                VariantKind::Tuple(parse_tuple_types(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                it.next();
                VariantKind::Struct(parse_named_fields(g)?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Codegen helpers
// ---------------------------------------------------------------------

const SER_CUSTOM: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_CUSTOM: &str = "<__D::Error as ::serde::de::Error>::custom";
const CONTENT: &str = "::serde::__private::Content";

fn to_content(expr: &str) -> String {
    format!("::serde::__private::to_content({expr}).map_err({SER_CUSTOM})?")
}

fn from_content(ty: &str, expr: &str) -> String {
    format!("::serde::__private::from_content::<{ty}>({expr}).map_err({DE_CUSTOM})?")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().expect("compile_error tokens")
}

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut out = String::new();
            out.push_str(&format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, {CONTENT})> = \
                 ::std::vec::Vec::new();\n"
            ));
            for f in fields {
                if f.opts.skip {
                    continue;
                }
                let value = match &f.opts.with {
                    Some(with) => format!(
                        "{with}::serialize(&self.{}, ::serde::__private::ContentSerializer)\
                         .map_err({SER_CUSTOM})?",
                        f.name
                    ),
                    None => to_content(&format!("&self.{}", f.name)),
                };
                out.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{}\"), {value}));\n",
                    f.name
                ));
            }
            out.push_str(&format!(
                "::serde::Serializer::serialize_content(__serializer, {CONTENT}::Map(__fields))"
            ));
            out
        }
        ItemKind::TupleStruct(tys) if tys.len() == 1 => format!(
            "::serde::Serializer::serialize_content(__serializer, {})",
            to_content("&self.0")
        ),
        ItemKind::TupleStruct(tys) => {
            let items: Vec<String> =
                (0..tys.len()).map(|i| to_content(&format!("&self.{i}"))).collect();
            format!(
                "::serde::Serializer::serialize_content(__serializer, {CONTENT}::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => {CONTENT}::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(tys) if tys.len() == 1 => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => {CONTENT}::Map(vec![(\
                         ::std::string::String::from(\"{vn}\"), {})]),\n",
                        to_content("__f0")
                    )),
                    VariantKind::Tuple(tys) => {
                        let binds: Vec<String> =
                            (0..tys.len()).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds.iter().map(|b| to_content(b)).collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {CONTENT}::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), {CONTENT}::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{}\"), {})",
                                    f.name,
                                    to_content(&f.name)
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {CONTENT}::Map(vec![(\
                             ::std::string::String::from(\"{vn}\"), {CONTENT}::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "let __content = match self {{\n{arms}}};\n\
                 ::serde::Serializer::serialize_content(__serializer, __content)"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap_or_else(|e| compile_error(&format!("serde shim derive (Serialize {name}): {e}")))
}

// ---------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(fields) => {
            let mut out = format!(
                "let __content = ::serde::Deserializer::deserialize_content(__deserializer)?;\n\
                 let mut __map = match __content {{\n\
                     {CONTENT}::Map(__m) => __m,\n\
                     __other => return ::std::result::Result::Err({DE_CUSTOM}(\
                         format!(\"{name}: expected an object, found {{}}\", __other.kind()))),\n\
                 }};\n"
            );
            for f in fields {
                if f.opts.skip {
                    out.push_str(&format!(
                        "let __f_{fname}: {ty} = ::std::default::Default::default();\n",
                        fname = f.name,
                        ty = f.ty
                    ));
                    continue;
                }
                let present = match &f.opts.with {
                    Some(with) => format!(
                        "{with}::deserialize(::serde::__private::ContentDeserializer::new(__v))\
                         .map_err({DE_CUSTOM})?"
                    ),
                    None => from_content(&f.ty, "__v"),
                };
                let missing = match &f.opts.default {
                    Some(None) => "::std::default::Default::default()".to_string(),
                    Some(Some(path)) => format!("{path}()"),
                    None => format!(
                        "return ::std::result::Result::Err({DE_CUSTOM}(\
                         \"{name}: missing field `{}`\"))",
                        f.name
                    ),
                };
                out.push_str(&format!(
                    "let __f_{fname}: {ty} = match ::serde::__private::take_entry(&mut __map, \
                     \"{fname}\") {{\n\
                         ::std::option::Option::Some(__v) => {present},\n\
                         ::std::option::Option::None => {missing},\n\
                     }};\n",
                    fname = f.name,
                    ty = f.ty
                ));
            }
            let inits: Vec<String> =
                fields.iter().map(|f| format!("{0}: __f_{0}", f.name)).collect();
            out.push_str(&format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", ")));
            out
        }
        ItemKind::TupleStruct(tys) if tys.len() == 1 => format!(
            "let __content = ::serde::Deserializer::deserialize_content(__deserializer)?;\n\
             ::std::result::Result::Ok({name}({}))",
            from_content(&tys[0], "__content")
        ),
        ItemKind::TupleStruct(tys) => {
            let n = tys.len();
            let fields: Vec<String> = tys
                .iter()
                .map(|ty| from_content(ty, "__items.next().expect(\"length checked\")"))
                .collect();
            format!(
                "let __content = ::serde::Deserializer::deserialize_content(__deserializer)?;\n\
                 match __content {{\n\
                     {CONTENT}::Seq(__items) if __items.len() == {n} => {{\n\
                         let mut __items = __items.into_iter();\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                     __other => ::std::result::Result::Err({DE_CUSTOM}(\
                         format!(\"{name}: expected array of {n}, found {{}}\", __other.kind()))),\n\
                 }}",
                fields.join(", ")
            )
        }
        ItemKind::Enum(variants) if item.untagged => {
            let mut out = "let __content = \
                 ::serde::Deserializer::deserialize_content(__deserializer)?;\n"
                .to_string();
            for v in variants {
                match &v.kind {
                    VariantKind::Tuple(tys) if tys.len() == 1 => {
                        out.push_str(&format!(
                            "if let ::std::result::Result::Ok(__v) = \
                             ::serde::__private::from_content::<{}>(__content.clone()) {{\n\
                                 return ::std::result::Result::Ok({name}::{}(__v));\n\
                             }}\n",
                            tys[0], v.name
                        ));
                    }
                    _ => {
                        return compile_error(&format!(
                            "serde shim derive: untagged enum `{name}` supports only \
                             newtype variants"
                        ))
                    }
                }
            }
            out.push_str(&format!(
                "::std::result::Result::Err({DE_CUSTOM}(\
                 \"{name}: data did not match any untagged variant\"))"
            ));
            out
        }
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(tys) if tys.len() == 1 => {
                        data_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({})),\n",
                            from_content(&tys[0], "_v")
                        ));
                    }
                    VariantKind::Tuple(tys) => {
                        let n = tys.len();
                        let items: Vec<String> = tys
                            .iter()
                            .map(|ty| from_content(ty, "__items.next().expect(\"length checked\")"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match _v {{\n\
                                 {CONTENT}::Seq(__items) if __items.len() == {n} => {{\n\
                                     let mut __items = __items.into_iter();\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}\n\
                                 __other => ::std::result::Result::Err({DE_CUSTOM}(\
                                     format!(\"{name}::{vn}: expected array of {n}, \
                                     found {{}}\", __other.kind()))),\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inner = format!(
                            "let mut __fm = match _v {{\n\
                                 {CONTENT}::Map(__m) => __m,\n\
                                 __other => return ::std::result::Result::Err({DE_CUSTOM}(\
                                     format!(\"{name}::{vn}: expected object, found {{}}\", \
                                     __other.kind()))),\n\
                             }};\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "let __f_{fname}: {ty} = match \
                                 ::serde::__private::take_entry(&mut __fm, \"{fname}\") {{\n\
                                     ::std::option::Option::Some(__v) => {},\n\
                                     ::std::option::Option::None => return \
                                     ::std::result::Result::Err({DE_CUSTOM}(\
                                     \"{name}::{vn}: missing field `{fname}`\")),\n\
                                 }};\n",
                                from_content(&f.ty, "__v"),
                                fname = f.name,
                                ty = f.ty
                            ));
                        }
                        let inits: Vec<String> =
                            fields.iter().map(|f| format!("{0}: __f_{0}", f.name)).collect();
                        inner.push_str(&format!(
                            "::std::result::Result::Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        ));
                        data_arms.push_str(&format!("\"{vn}\" => {{\n{inner}\n}},\n"));
                    }
                }
            }
            format!(
                "let __content = ::serde::Deserializer::deserialize_content(__deserializer)?;\n\
                 match __content {{\n\
                     {CONTENT}::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err({DE_CUSTOM}(\
                             format!(\"{name}: unknown variant `{{}}`\", __other))),\n\
                     }},\n\
                     {CONTENT}::Map(mut __m) if __m.len() == 1 => {{\n\
                         let (_k, _v) = __m.remove(0);\n\
                         match _k.as_str() {{\n\
                             {data_arms}\
                             __other => ::std::result::Result::Err({DE_CUSTOM}(\
                                 format!(\"{name}: unknown variant `{{}}`\", __other))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err({DE_CUSTOM}(\
                         format!(\"{name}: expected variant, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap_or_else(|e| compile_error(&format!("serde shim derive (Deserialize {name}): {e}")))
}
