//! Offline stand-in for `serde_json` (API subset used by this workspace):
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`Value`], [`Error`], and a [`json!`] macro subset.
//!
//! [`Value`] is the serde shim's `Content` tree re-exported; it prints as
//! JSON. Numbers parse to `i64`/`u64` when integral and `f64` otherwise;
//! non-finite floats serialize as `null` (matching upstream's default).

use serde::__private::{from_content, to_content, Content};
use serde::{Deserialize, Serialize};
use std::fmt;

/// JSON value tree (alias of the serde shim's content model).
pub type Value = Content;

/// Errors from serialization, deserialization, or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

fn err(msg: impl Into<String>) -> Error {
    Error { msg: msg.into() }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = to_content(value).map_err(|e| err(e.0))?;
    let mut out = String::new();
    write_json(&content, &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = to_content(value).map_err(|e| err(e.0))?;
    let mut out = String::new();
    write_json(&content, &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    to_content(value).map_err(|e| err(e.0))
}

/// Deserializes a value from JSON text.
pub fn from_str<T>(s: &str) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let content = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(err(format!("trailing characters at offset {}", parser.pos)));
    }
    from_content(content).map_err(|e| err(e.0))
}

/// Converts a [`Value`] tree into any deserializable type.
pub fn from_value<T>(value: Value) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    from_content(value).map_err(|e| err(e.0))
}

/// Builds a [`Value`] from JSON-ish syntax. Subset: `null`, arrays of
/// expressions, and single-level objects with literal string keys and
/// expression values (nested literals go through expressions returning
/// `Value`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$elem).expect("json! value") ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val).expect("json! value")) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_json(c: &Content, out: &mut String, indent: Option<usize>, level: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{}` on f64 produces the shortest round-trippable form.
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(v, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected `{}` at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(err(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(err(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(err(format!(
                "unexpected character {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.eat_keyword("\\u") {
                                    let low = self.hex4()?;
                                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(err("lone high surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err("invalid unicode escape"))?,
                            );
                        }
                        other => return Err(err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| err("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|_| err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_nesting() {
        let v: Vec<Vec<f64>> = from_str("[[1, 2.5], [-3e2]]").unwrap();
        assert_eq!(v, vec![vec![1.0, 2.5], vec![-300.0]]);
        assert_eq!(to_string(&v).unwrap(), "[[1,2.5],[-300]]");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s: String = from_str(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(s, "a\"b\\c\ndA");
        assert_eq!(to_string(&s).unwrap(), r#""a\"b\\c\ndA""#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({"a": 1, "b": true, "c": "x"});
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":true,"c":"x"}"#);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = json!({"rows": vec![1u64, 2], "name": "bstc"});
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(to_string(&back).unwrap(), to_string(&v).unwrap());
    }
}
