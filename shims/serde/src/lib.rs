//! Offline stand-in for `serde` (API subset used by this workspace).
//!
//! The build container has no crates.io access, so the real `serde` cannot
//! be downloaded; this shim keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` code and the `serde_json` call sites compiling and
//! behaving like the real thing for the JSON data model.
//!
//! Design: instead of serde's streaming visitor architecture, everything
//! funnels through a JSON-shaped [`__private::Content`] tree. A
//! [`Serializer`] consumes a `Content`; a [`Deserializer`] produces one.
//! The derive macros in `serde_derive` generate code against the
//! `__private` helpers. The trait *shapes* (`serialize<S: Serializer>`,
//! `deserialize<'de, D: Deserializer<'de>>`, `ser::Error::custom`,
//! `de::Error::custom`) match real serde so hand-written `#[serde(with =
//! "...")]` modules compile unchanged.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization errors.
pub mod ser {
    /// Error constructor required of every [`crate::Serializer::Error`].
    pub trait Error: Sized + std::fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization errors.
pub mod de {
    /// Error constructor required of every [`crate::Deserializer::Error`].
    pub trait Error: Sized + std::fmt::Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A type that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Consumes values. In this shim a serializer is anything that can accept
/// a completed [`__private::Content`] tree; the `serialize_*` primitives
/// are provided on top of that.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type; must support [`ser::Error::custom`].
    type Error: ser::Error;

    /// Accepts a finished content tree.
    fn serialize_content(self, content: __private::Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes a bool.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::Bool(v))
    }
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::I64(v))
    }
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::U64(v))
    }
    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::F64(v))
    }
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::Str(v.to_string()))
    }
    /// Serializes a unit / null.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(__private::Content::Null)
    }
}

/// A type that can be deserialized. The `'de` lifetime mirrors real serde
/// (this shim never borrows from the input, but keeping the parameter
/// lets hand-written `with`-modules compile unchanged).
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Produces values. In this shim a deserializer is anything that can
/// yield a [`__private::Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type; must support [`de::Error::custom`].
    type Error: de::Error;

    /// Yields the input as a content tree.
    fn deserialize_content(self) -> Result<__private::Content, Self::Error>;
}

/// Helpers the derive macros generate code against. Not a stable API.
pub mod __private {
    use super::{de, ser, Deserialize, Deserializer, Serialize, Serializer};
    use std::fmt;

    /// JSON-shaped value tree — the single data model of this shim.
    ///
    /// Maps preserve insertion order (`Vec` of pairs, not a hash map) so
    /// serialized output is deterministic.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Content {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        Str(String),
        Seq(Vec<Content>),
        Map(Vec<(String, Content)>),
    }

    /// Error for content-tree conversions.
    #[derive(Clone, Debug)]
    pub struct ContentError(pub String);

    impl fmt::Display for ContentError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ContentError {}

    impl ser::Error for ContentError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    impl de::Error for ContentError {
        fn custom<T: fmt::Display>(msg: T) -> Self {
            ContentError(msg.to_string())
        }
    }

    /// Serializer whose output *is* the content tree.
    pub struct ContentSerializer;

    impl Serializer for ContentSerializer {
        type Ok = Content;
        type Error = ContentError;

        fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
            Ok(content)
        }
    }

    /// Deserializer that reads from an owned content tree.
    pub struct ContentDeserializer {
        content: Content,
    }

    impl ContentDeserializer {
        /// Wraps a content tree for deserialization.
        pub fn new(content: Content) -> Self {
            ContentDeserializer { content }
        }
    }

    impl<'de> Deserializer<'de> for ContentDeserializer {
        type Error = ContentError;

        fn deserialize_content(self) -> Result<Content, ContentError> {
            Ok(self.content)
        }
    }

    /// Serializes any value into a content tree.
    pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
        value.serialize(ContentSerializer)
    }

    /// Deserializes any value out of a content tree.
    pub fn from_content<T>(content: Content) -> Result<T, ContentError>
    where
        T: for<'de> Deserialize<'de>,
    {
        T::deserialize(ContentDeserializer::new(content))
    }

    /// Removes and returns the entry with the given key, if present.
    pub fn take_entry(map: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
        let idx = map.iter().position(|(k, _)| k == key)?;
        Some(map.swap_remove(idx).1)
    }

    impl Content {
        /// Member of an object by key (`None` for other variants or a
        /// missing key) — mirrors `serde_json::Value::get`.
        pub fn get(&self, key: &str) -> Option<&Content> {
            match self {
                Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The string payload, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Content::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean payload, if this is a bool.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Content::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The value as a `u64`, if this is a non-negative integer.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Content::I64(v) => u64::try_from(*v).ok(),
                Content::U64(v) => Some(*v),
                _ => None,
            }
        }

        /// The value as an `i64`, if this is a representable integer.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Content::I64(v) => Some(*v),
                Content::U64(v) => i64::try_from(*v).ok(),
                _ => None,
            }
        }

        /// The value as an `f64`, if this is any number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Content::I64(v) => Some(*v as f64),
                Content::U64(v) => Some(*v as f64),
                Content::F64(v) => Some(*v),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_array(&self) -> Option<&[Content]> {
            match self {
                Content::Seq(v) => Some(v),
                _ => None,
            }
        }

        /// The entries, if this is an object.
        pub fn as_object(&self) -> Option<&[(String, Content)]> {
            match self {
                Content::Map(v) => Some(v),
                _ => None,
            }
        }

        /// Whether this is JSON `null`.
        pub fn is_null(&self) -> bool {
            matches!(self, Content::Null)
        }

        /// Human-readable name of the variant, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Content::Null => "null",
                Content::Bool(_) => "bool",
                Content::I64(_) | Content::U64(_) => "integer",
                Content::F64(_) => "number",
                Content::Str(_) => "string",
                Content::Seq(_) => "array",
                Content::Map(_) => "object",
            }
        }
    }
}

use __private::Content;

// ---------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.clone())
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_content()
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = Vec::with_capacity(self.len());
        for item in self {
            seq.push(__private::to_content(item).map_err(<S::Error as ser::Error>::custom)?);
        }
        serializer.serialize_content(Content::Seq(seq))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_unit(),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let seq = vec![
                    $(__private::to_content(&self.$idx)
                        .map_err(<S::Error as ser::Error>::custom)?),+
                ];
                serializer.serialize_content(Content::Seq(seq))
            }
        }
    )+};
}
ser_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

// ---------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------

fn type_err<E: de::Error>(expected: &str, got: &Content) -> E {
    E::custom(format!("expected {expected}, found {}", got.kind()))
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(type_err("bool", &other)),
        }
    }
}

fn content_to_i128<E: de::Error>(c: Content) -> Result<i128, E> {
    match c {
        Content::I64(v) => Ok(v as i128),
        Content::U64(v) => Ok(v as i128),
        other => Err(type_err("integer", &other)),
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let v = content_to_i128::<D::Error>(deserializer.deserialize_content()?)?;
                <$t>::try_from(v).map_err(|_| {
                    <D::Error as de::Error>::custom(format!(
                        "integer {v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            other => Err(type_err("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(type_err("string", &other)),
        }
    }
}

impl<'de, T> Deserialize<'de> for Vec<T>
where
    T: for<'any> Deserialize<'any>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| __private::from_content(c).map_err(<D::Error as de::Error>::custom))
                .collect(),
            other => Err(type_err("array", &other)),
        }
    }
}

impl<'de, T> Deserialize<'de> for Option<T>
where
    T: for<'any> Deserialize<'any>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => {
                __private::from_content(other).map(Some).map_err(<D::Error as de::Error>::custom)
            }
        }
    }
}

impl<'de, T> Deserialize<'de> for Box<T>
where
    T: for<'any> Deserialize<'any>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($n:literal, $($name:ident),+)),+ $(,)?) => {$(
        impl<'de, $($name),+> Deserialize<'de> for ($($name,)+)
        where
            $($name: for<'any> Deserialize<'any>),+
        {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) if items.len() == $n => {
                        let mut it = items.into_iter();
                        Ok(($(
                            __private::from_content::<$name>(it.next().expect("length checked"))
                                .map_err(<De::Error as de::Error>::custom)?,
                        )+))
                    }
                    Content::Seq(items) => Err(<De::Error as de::Error>::custom(format!(
                        "expected array of length {}, found length {}",
                        $n,
                        items.len()
                    ))),
                    other => Err(type_err("array", &other)),
                }
            }
        }
    )+};
}
de_tuple!((2, A, B), (3, A, B, C), (4, A, B, C, D));
