//! Offline stand-in for `proptest` (API subset used by this workspace).
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), `prop_assert!` /
//! `prop_assert_eq!` / `prop_assert_ne!`, [`Strategy`] with `prop_map`,
//! `prop_flat_map` and `prop_filter`, [`Just`], integer/float range
//! strategies, tuple strategies, and `prop::collection::vec`.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (fully reproducible runs), and
//! there is **no shrinking** — a failure reports the case number and the
//! assertion message only.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Deterministic RNG for one case of one named test.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5bd1_e995))
}

/// Generates values of `Self::Value`.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy it
    /// maps to.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Rejects values failing `pred` (regenerates; gives up after 1000
    /// consecutive rejections).
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, whence: whence.into(), pred }
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, O, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<B, F> {
    base: B,
    whence: String,
    pred: F,
}

impl<B, F> Strategy for Filter<B, F>
where
    B: Strategy,
    F: Fn(&B::Value) -> bool,
{
    type Value = B::Value;
    fn generate(&self, rng: &mut TestRng) -> B::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive values", self.whence);
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for ::core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for ::core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Strategy for ::core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for ::core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Inclusive-exclusive size specification for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::core::ops::Range<usize>> for SizeRange {
        fn from(r: ::core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<::core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::prelude`-style namespace: `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __left,
                __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ( $($strat,)* );
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), __case);
                let ( $($pat,)* ) =
                    $crate::Strategy::generate(&__strategies, &mut __rng);
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e.0
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(v in 5usize..10, f in -1.0..1.0f64) {
            prop_assert!((5..10).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_spec(v in prop::collection::vec(0usize..3, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0usize..10, n))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_header_is_accepted(x in 0usize..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        let s = 0usize..1000;
        assert_eq!(s.generate(&mut a), (0usize..1000).generate(&mut b));
    }
}
