//! Offline stand-in for the `rand` crate (API subset used by this
//! workspace). The container that builds this repository has no access to
//! a crates.io registry, so external dependencies are replaced by local
//! shims under `shims/`.
//!
//! What is provided, mirroring the rand 0.9 surface this workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 from [`SeedableRng::seed_from_u64`];
//! * [`Rng::random_range`] over half-open and inclusive integer/float
//!   ranges;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! The streams are *not* bit-compatible with upstream `rand`; they are
//! deterministic per seed, which is all the workspace relies on.

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a `f64` in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Lemire-style widening multiply; bias is < 2^-64 per draw.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for ::core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}

int_range!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion — guarantees a non-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (subset: in-place shuffling).
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1_000_000usize), b.random_range(0..1_000_000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice unchanged");
    }
}
