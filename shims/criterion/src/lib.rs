//! Offline stand-in for `criterion` (API subset used by this workspace's
//! benches): `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and `black_box`.
//!
//! Measurement is deliberately simple: each benchmark runs a short warmup
//! to size the batch, then timed batches until the time budget (driven by
//! `sample_size`) is spent, and prints the mean wall-clock time per
//! iteration. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// Identifier for a parameterized benchmark (`name/param`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { full: format!("{name}/{param}") }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{name}", self.name), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark receiving a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.full), self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (outputs are passed through
    /// [`black_box`] so the optimizer cannot discard them).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warmup: find an iteration count that takes roughly 10ms per batch,
    // capped to keep total runtime bounded.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let batch = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos()).clamp(1, 100_000);

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..sample_size {
        b.iters = batch as u64;
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
        if total > Duration::from_secs(3) {
            break;
        }
    }
    let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    println!("bench {name:<48} {:>12} /iter ({iters} iters)", fmt_ns(mean_ns));
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group
            .bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert!(calls > 0);
    }
}
