//! Concurrency test for the shared histogram: N writer threads record
//! while a reader renders concurrently; after the writers join, totals
//! must balance exactly and every concurrent render must have been
//! internally consistent (monotone buckets, +Inf == _count).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use obs::Histogram;

const WRITERS: usize = 8;
const PER_WRITER: u64 = 20_000;

fn parse_render(out: &str) -> (u64, u64, Vec<u64>) {
    let mut count = 0;
    let mut inf = 0;
    let mut buckets = Vec::new();
    for line in out.lines() {
        let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        if line.starts_with("h_bucket{") {
            buckets.push(value);
            if line.contains("le=\"+Inf\"") {
                inf = value;
            }
        } else if line.starts_with("h_count") {
            count = value;
        }
    }
    (count, inf, buckets)
}

#[test]
fn concurrent_records_balance_and_renders_stay_consistent() {
    let hist = Arc::new(Histogram::new());
    let stop = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // Deterministic per-writer value stream spanning many buckets.
                let mut x = (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut local_sum = 0u64;
                for _ in 0..PER_WRITER {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let v = x % 1_000_000; // µs-scale latencies
                    hist.record(v);
                    local_sum += v;
                }
                local_sum
            })
        })
        .collect();

    // Reader renders continuously while the writers hammer the histogram.
    let reader = {
        let hist = Arc::clone(&hist);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut renders = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let mut out = String::new();
                hist.render_into(&mut out, "h", &[]);
                let (count, inf, buckets) = parse_render(&out);
                assert_eq!(inf, count, "+Inf bucket must equal _count mid-flight:\n{out}");
                assert!(
                    buckets.windows(2).all(|w| w[0] <= w[1]),
                    "bucket counts must be monotone mid-flight:\n{out}"
                );
                renders += 1;
            }
            renders
        })
    };

    let mut expected_sum = 0u64;
    for w in writers {
        expected_sum += w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let renders = reader.join().unwrap();
    assert!(renders > 0, "reader must have rendered at least once");

    let expected_count = (WRITERS as u64) * PER_WRITER;
    assert_eq!(hist.count(), expected_count);
    assert_eq!(hist.sum(), expected_sum);

    let mut out = String::new();
    hist.render_into(&mut out, "h", &[]);
    let (count, inf, _) = parse_render(&out);
    assert_eq!(count, expected_count, "rendered _count must balance after join");
    assert_eq!(inf, expected_count, "rendered +Inf must balance after join");
}
