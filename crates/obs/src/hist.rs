//! A lock-free log-bucketed histogram and the shared nearest-rank
//! percentile helpers.
//!
//! [`Histogram`] buckets non-negative integer values (the stack records
//! microseconds) into logarithmic buckets with 16 linear sub-buckets per
//! power of two, HdrHistogram-style: values below 16 are exact, larger
//! values land in a bucket whose width is at most 1/16 of its lower
//! edge, so any reported quantile is within ~6% of the true value while
//! the whole histogram is a fixed 976 relaxed `AtomicU64`s — recording
//! is two atomic adds, never a lock, never an allocation.
//!
//! Percentiles use the **nearest-rank (rounding up)** convention shared
//! by [`nearest_rank_index`]: the reported p-quantile of `n` samples is
//! the sample at 0-based index `min(floor(p·n), n-1)`, the smallest
//! sample with *more* than a fraction `p` of the data at or below it.
//! Rounding up matters for small samples: the truncating
//! `((n-1) as f64 * p) as usize` this replaces read index 98 for
//! `n = 100, p = 0.99` — under-reporting p99 by one whole sample — where
//! this convention reads index 99. Bucketed extraction additionally
//! reports the bucket's *upper* edge, so [`Histogram::percentile`]
//! never understates a latency.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket bits per power of two (16 sub-buckets).
const SUB_BITS: u32 = 4;
/// First power-of-two boundary; values below it are bucketed exactly.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
const N_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) << SUB_BITS;

/// Bucket index of a value (total order preserved across buckets).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let shift = 63 - v.leading_zeros() - SUB_BITS;
        ((u64::from(shift) + 1) * SUB + ((v >> shift) - SUB)) as usize
    }
}

/// Inclusive upper edge of a bucket (the value quantiles report).
#[inline]
fn bucket_bound(i: usize) -> u64 {
    if i < SUB as usize {
        i as u64
    } else if i == N_BUCKETS - 1 {
        u64::MAX
    } else {
        let shift = (i >> SUB_BITS) as u32 - 1;
        ((SUB + (i as u64 & (SUB - 1)) + 1) << shift) - 1
    }
}

/// 0-based index of the nearest-rank p-quantile in a sorted sample of
/// size `n`: `min(floor(p·n), n-1)`, i.e. the smallest index holding
/// strictly more than a fraction `p` of the samples at or below it.
///
/// This rounds *up* on small samples — `nearest_rank_index(100, 0.99)`
/// is 99, not the 98 a truncating `(n-1)·p` cast reads — so percentiles
/// derived from it never under-report. `p` is clamped to `[0, 1]`;
/// `n = 0` returns 0 (there is no meaningful rank).
pub fn nearest_rank_index(n: usize, p: f64) -> usize {
    if n == 0 {
        return 0;
    }
    let p = if p.is_finite() { p.clamp(0.0, 1.0) } else { 0.0 };
    (((p * n as f64).floor()) as usize).min(n - 1)
}

/// The nearest-rank p-quantile of an already **sorted** slice (see
/// [`nearest_rank_index`]); 0 for an empty slice.
pub fn percentile_of_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[nearest_rank_index(sorted.len(), p)]
    }
}

/// A lock-free log-bucketed histogram of `u64` values (see the module
/// docs for the bucket layout and quantile semantics).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Creates an empty histogram (a fixed ~8 KiB of atomics).
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free: three atomic adds, never a lock,
    /// never an allocation; safe to call from any number of threads
    /// concurrently with readers.
    ///
    /// The sum add is a *release*: a reader that acquires the sum (see
    /// [`Histogram::snapshot_into`]) is guaranteed to also see the
    /// bucket increment that preceded it, so a rendered `_sum` can
    /// never include a sample the rendered buckets lack.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Release);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the raw bucket counts (index order follows
    /// value order).
    fn load_buckets(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// One coherent (sum, buckets) snapshot: loads the sum with
    /// *acquire* ordering **before** reading any bucket, pairing with
    /// the release sum add in [`Histogram::record`]. Every sample whose
    /// value is in the returned sum therefore also has its bucket
    /// increment in `counts` — the rendered `_sum` can lag the buckets
    /// (a record between the two reads shows up in buckets only) but
    /// never lead them. Bucket counts accumulate into `counts`
    /// (`counts.len()` must be [`BUCKETS_LEN`]) so the windowed variant
    /// can merge its two epochs; returns this histogram's sum.
    pub(crate) fn snapshot_into(&self, counts: &mut [u64]) -> u64 {
        let sum = self.sum.load(Ordering::Acquire);
        for (slot, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot += b.load(Ordering::Relaxed);
        }
        sum
    }

    /// Zeroes every bucket plus the count and sum. Not atomic with
    /// respect to concurrent `record` calls — a racing record may land
    /// in a partially cleared histogram — which is acceptable for the
    /// metrics use case (the windowed flip loses at most a sample or
    /// two per window).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// The nearest-rank p-quantile of the recorded values, reported as
    /// the containing bucket's upper edge (within ~6% above the true
    /// sample; never below it). Returns 0 when nothing was recorded.
    ///
    /// Rank selection is *exact*: the bucket counts are snapshotted
    /// once, the target rank computed by [`nearest_rank_index`] over
    /// that snapshot's total, and the buckets walked cumulatively.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_from_counts(&self.load_buckets())(p)
    }

    /// Appends this histogram in Prometheus text exposition format:
    /// cumulative `<metric>_bucket{...,le="..."}` samples (non-empty
    /// buckets plus `+Inf`), then `<metric>_count` and `<metric>_sum`.
    /// The caller writes the one `# TYPE <metric> histogram` line per
    /// family. Counts and sum come from one [`Histogram::snapshot_into`]
    /// snapshot, so the rendered buckets are always monotone, `_count`
    /// equals the `+Inf` bucket, and `_sum` never includes a sample the
    /// buckets lack.
    pub fn render_into(&self, out: &mut String, metric: &str, labels: &[(&str, &str)]) {
        let mut counts = vec![0u64; BUCKETS_LEN];
        let sum = self.snapshot_into(&mut counts);
        render_counts_into(out, metric, labels, &counts, sum);
    }
}

/// Number of buckets a [`Histogram`] snapshot holds.
pub(crate) const BUCKETS_LEN: usize = N_BUCKETS;

/// Nearest-rank quantile extraction over a bucket-count snapshot; returns
/// a closure so one snapshot can serve several quantiles. Semantics match
/// [`Histogram::percentile`].
pub(crate) fn percentile_from_counts(counts: &[u64]) -> impl Fn(f64) -> u64 + '_ {
    move |p: f64| {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = nearest_rank_index(total as usize, p) as u64;
        let mut cumulative = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(N_BUCKETS - 1)
    }
}

/// Prometheus text exposition of a bucket-count snapshot (the body of
/// [`Histogram::render_into`], shared with the windowed variant).
pub(crate) fn render_counts_into(
    out: &mut String,
    metric: &str,
    labels: &[(&str, &str)],
    counts: &[u64],
    sum: u64,
) {
    let plain = render_labels(labels, None);
    let mut cumulative = 0u64;
    for (i, c) in counts.iter().enumerate() {
        if *c > 0 {
            cumulative += c;
            let le = render_labels(labels, Some(bucket_bound(i)));
            let _ = writeln!(out, "{metric}_bucket{le} {cumulative}");
        }
    }
    let inf = render_labels(labels, Some(u64::MAX));
    let _ = writeln!(out, "{metric}_bucket{inf} {cumulative}");
    let _ = writeln!(out, "{metric}_count{plain} {cumulative}");
    let _ = writeln!(out, "{metric}_sum{plain} {sum}");
}

/// `{k="v",...}` (empty string when no labels), with `le` appended for
/// bucket samples (`u64::MAX` renders as `+Inf`).
fn render_labels(labels: &[(&str, &str)], le: Option<u64>) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    match le {
        Some(u64::MAX) => parts.push("le=\"+Inf\"".into()),
        Some(bound) => parts.push(format!("le=\"{bound}\"")),
        None => {}
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact_and_buckets_preserve_order() {
        for v in 0..SUB {
            assert_eq!(bucket_bound(bucket_index(v)), v);
        }
        let mut last = 0usize;
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 65_535, 1 << 30, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "bucket order broken at {v}");
            last = i;
        }
    }

    #[test]
    fn bucket_bound_never_understates_and_bounds_relative_error() {
        for exp in 0..63u32 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << exp) + off;
                let bound = bucket_bound(bucket_index(v));
                assert!(bound >= v, "bound {bound} < value {v}");
                // Width of a log bucket is at most 1/16 of its lower edge.
                assert!(bound - v <= v / 8 + 1, "bound {bound} too far above {v}");
            }
        }
        assert_eq!(bucket_bound(bucket_index(u64::MAX)), u64::MAX);
    }

    #[test]
    fn nearest_rank_rounds_up_for_small_samples() {
        // The exact case from the serve_bench bug: 100 samples, p99 must
        // read the 100th value (index 99), not the truncated index 98.
        assert_eq!(nearest_rank_index(100, 0.99), 99);
        // The buggy expression this replaces: ((n-1) as f64 * p) as usize.
        assert_eq!(((100usize - 1) as f64 * 0.99) as usize, 98);
        assert_eq!(nearest_rank_index(10, 0.99), 9);
        assert_eq!(nearest_rank_index(1000, 0.99), 990);
        assert_eq!(nearest_rank_index(101, 0.5), 50); // true median
        assert_eq!(nearest_rank_index(100, 1.0), 99);
        assert_eq!(nearest_rank_index(100, 0.0), 0);
        assert_eq!(nearest_rank_index(0, 0.5), 0);
        assert_eq!(nearest_rank_index(1, 0.99), 0);
    }

    #[test]
    fn percentile_of_sorted_n100_p99_reads_the_maximum() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_of_sorted(&sorted, 0.99), 100);
        assert_eq!(percentile_of_sorted(&sorted, 0.50), 51);
        assert_eq!(percentile_of_sorted(&sorted, 1.0), 100);
        assert_eq!(percentile_of_sorted(&[], 0.99), 0);
    }

    #[test]
    fn histogram_percentiles_track_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p99 = h.percentile(0.99);
        // True nearest-rank p99 is 991; bucketed extraction may report up
        // to one bucket width (~6%) above, never below.
        assert!((991..=1055).contains(&p99), "p99 {p99}");
        let p50 = h.percentile(0.50);
        assert!((501..=543).contains(&p50), "p50 {p50}");
        assert_eq!(h.percentile(0.0), bucket_bound(bucket_index(1)));
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        for v in [1u64, 70, 9_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.percentile(0.99), 0);
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(0.5), bucket_bound(bucket_index(42)));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.percentile(0.99), 0);
        let mut out = String::new();
        h.render_into(&mut out, "m", &[]);
        assert!(out.contains("m_bucket{le=\"+Inf\"} 0"), "{out}");
        assert!(out.contains("m_count 0"), "{out}");
    }

    #[test]
    fn render_is_cumulative_monotone_and_balances() {
        let h = Histogram::new();
        for v in [3u64, 3, 90, 2_000, 2_000, 2_000, 1 << 40] {
            h.record(v);
        }
        let mut out = String::new();
        h.render_into(&mut out, "lat_us", &[("route", "/classify")]);
        let mut last = 0u64;
        let mut bucket_lines = 0;
        for line in out.lines() {
            if let Some(rest) = line.strip_prefix("lat_us_bucket{") {
                assert!(rest.contains("route=\"/classify\""), "{line}");
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "non-monotone at {line}");
                last = v;
                bucket_lines += 1;
            }
        }
        assert!(bucket_lines >= 5, "{out}"); // 4 distinct buckets + +Inf
        assert!(out.contains("lat_us_count{route=\"/classify\"} 7"), "{out}");
        assert_eq!(last, 7, "+Inf bucket must equal the count");
    }
}
