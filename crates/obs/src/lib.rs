//! # obs — observability primitives for the BSTC stack
//!
//! Everything the pipeline and the server use to measure themselves,
//! with **no dependencies beyond std**:
//!
//! * [`hist`] — [`Histogram`], a lock-free log-bucketed value histogram
//!   (relaxed atomics, ~6% relative bucket resolution) with exact
//!   nearest-rank percentile extraction and Prometheus text rendering,
//!   plus the shared nearest-rank helpers ([`nearest_rank_index`],
//!   [`percentile_of_sorted`]) every bench uses so p99 is computed the
//!   same way everywhere;
//! * [`counter`] — [`CounterRegistry`], process-global monotonic named
//!   counters (`bstc_bst_pairs_total`, …) rendered as Prometheus counter
//!   families next to the stage histograms;
//! * [`stage`] — [`Stage`], a drop-guard span timer (`Stage::enter
//!   ("mdl_cuts")` … drop records the elapsed microseconds) feeding a
//!   process-global [`Registry`] of named histograms that renders as one
//!   Prometheus histogram family (`bstc_stage_duration_us{stage=...}`);
//! * [`window`] — [`WindowedHistogram`], a two-epoch flip variant of
//!   [`Histogram`] whose reports cover only the last 1–2 windows, so
//!   scraped p99s reflect steady state instead of mixing in cold-start
//!   samples;
//! * [`log`] — a structured logger emitting JSON lines (or plain text)
//!   with per-request trace IDs ([`log::request_id`]), a minimum-level
//!   filter plus per-(level, event) token-bucket rate limiting, and
//!   swappable sinks: stderr, an in-memory test buffer, or a
//!   size-rotated file ([`log::set_file_sink`]);
//! * [`trace`] — [`Trace`], parent-span trees with cross-process
//!   joining ([`Trace::adopt`] re-maps a worker's span ids under a
//!   parent span), how the sharded CV driver shows shard → replicate
//!   structure in one tree.
//!
//! The training pipeline records into the global registry (stages
//! `mdl_cuts`, `binarize`, `bst_build`, `compile`, `classify_batch`);
//! the inference server renders that registry on `GET /metrics` next to
//! its own request histograms, so one scrape decomposes both the
//! paper's per-stage training cost (Tables 4–7) and serving latency.

#![warn(missing_docs)]

pub mod counter;
pub mod hist;
pub mod log;
pub mod stage;
pub mod trace;
pub mod window;

pub use counter::{counters, CounterRegistry};
pub use hist::{nearest_rank_index, percentile_of_sorted, Histogram};
pub use log::{Level, LogFormat};
pub use stage::{global, Registry, Stage, StageTotal};
pub use trace::{Span, SpanRecord, Trace};
pub use window::WindowedHistogram;
