//! Structured logging: JSON lines (or plain text) with request IDs,
//! a minimum-level filter and per-(level, event) rate limiting.
//!
//! One event = one line on the configured sink (stderr by default).
//! JSON format emits `{"ts":...,"level":"info","event":"request",...}`
//! with all user fields as string values and hand-rolled escaping (no
//! serializer dependency); text format emits `key=value` pairs with
//! quoting only where needed. The sink is swappable to an in-memory
//! buffer so integration tests can assert on emitted lines.
//!
//! Events below the configured [`Level`] ([`set_level`], default
//! [`Level::Info`]) are dropped before any formatting. Events at or
//! above it pass through a token bucket keyed by `(level, event)`
//! ([`set_rate_limit`]): each key may burst up to `burst` lines, then
//! refills at `per_sec` — so a hot 404 loop logging the same `request`
//! event thousands of times per second emits a bounded trickle instead
//! of saturating the sink, while distinct events (and higher levels)
//! keep their own budget. When a throttled key next earns a token, the
//! emitted line carries a `suppressed=<n>` field accounting for the
//! dropped lines, so totals remain reconstructible.
//!
//! [`request_id`] generates 16-hex-char IDs suitable for `X-Request-Id`
//! correlation: unique per process and across restarts, with no global
//! RNG dependency.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Output format for emitted log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// `ts=... level=... event=... key=value` pairs, quoted as needed.
    Text,
    /// One JSON object per line.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format '{other}' (expected 'text' or 'json')")),
        }
    }
}

/// Severity of a log event, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Development-time detail, off by default.
    Debug,
    /// Normal operational events (the default minimum).
    Info,
    /// Degraded but self-healing conditions.
    Warn,
    /// Failures needing attention.
    Error,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s {
            "debug" => Ok(Level::Debug),
            "info" => Ok(Level::Info),
            "warn" => Ok(Level::Warn),
            "error" => Ok(Level::Error),
            other => Err(format!(
                "unknown log level '{other}' (expected 'debug', 'info', 'warn' or 'error')"
            )),
        }
    }
}

/// Token-bucket parameters for per-(level, event) rate limiting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Lines a single (level, event) key may emit back to back.
    pub burst: u32,
    /// Sustained refill rate per key, lines per second.
    pub per_sec: f64,
}

/// Default limiter: generous enough that a healthy server never trips
/// it, tight enough that a runaway loop is bounded to ~50 lines/s/key.
pub const DEFAULT_RATE_LIMIT: RateLimit = RateLimit { burst: 500, per_sec: 50.0 };

/// One (level, event) key's bucket.
struct Bucket {
    tokens: f64,
    refilled: Instant,
    suppressed: u64,
}

enum Sink {
    Stderr,
    Buffer(Arc<Mutex<Vec<u8>>>),
    File(FileSink),
}

/// A size-rotated log file: when appending a line would push the active
/// file past `max_bytes`, the file is renamed to `<path>.1` (shifting
/// `.1 → .2 …` up to `keep` rotated files, dropping the oldest) and a
/// fresh file is opened. `keep == 0` truncates in place instead of
/// renaming. Rotation happens between lines, never mid-line.
struct FileSink {
    path: PathBuf,
    file: File,
    written: u64,
    max_bytes: u64,
    keep: usize,
}

impl FileSink {
    fn rotated(&self, i: usize) -> PathBuf {
        PathBuf::from(format!("{}.{i}", self.path.display()))
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        self.file.flush()?;
        if self.keep == 0 {
            self.file = File::create(&self.path)?;
        } else {
            let _ = std::fs::remove_file(self.rotated(self.keep));
            for i in (1..self.keep).rev() {
                let _ = std::fs::rename(self.rotated(i), self.rotated(i + 1));
            }
            let _ = std::fs::rename(&self.path, self.rotated(1));
            self.file = OpenOptions::new().create(true).append(true).open(&self.path)?;
        }
        self.written = 0;
        Ok(())
    }

    fn write_line(&mut self, line: &[u8]) {
        if self.max_bytes > 0
            && self.written > 0
            && self.written + line.len() as u64 > self.max_bytes
        {
            let _ = self.rotate();
        }
        if self.file.write_all(line).is_ok() {
            self.written += line.len() as u64;
        }
    }
}

struct State {
    format: LogFormat,
    sink: Sink,
    min_level: Level,
    rate: Option<RateLimit>,
    buckets: Option<HashMap<(Level, String), Bucket>>,
}

static STATE: Mutex<State> = Mutex::new(State {
    format: LogFormat::Text,
    sink: Sink::Stderr,
    min_level: Level::Info,
    rate: Some(DEFAULT_RATE_LIMIT),
    buckets: None,
});

fn state() -> std::sync::MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sets the global output format (`bstc-cli serve --log-format`).
pub fn set_format(format: LogFormat) {
    state().format = format;
}

/// Current global output format.
pub fn format() -> LogFormat {
    state().format
}

/// Sets the minimum level emitted (`bstc-cli serve --log-level`).
/// Events below it are dropped before formatting.
pub fn set_level(level: Level) {
    state().min_level = level;
}

/// Current minimum emitted level.
pub fn level() -> Level {
    state().min_level
}

/// Replaces the per-(level, event) token-bucket limiter (`None`
/// disables rate limiting entirely). Existing bucket state is cleared.
pub fn set_rate_limit(rate: Option<RateLimit>) {
    let mut guard = state();
    guard.rate = rate;
    guard.buckets = None;
}

/// Redirects all subsequent log output into an in-memory buffer and
/// returns a handle to it (integration-test hook). Call
/// [`use_stderr`] to restore the default sink. Limiter bucket state is
/// cleared so captures start from a full budget.
pub fn capture() -> Arc<Mutex<Vec<u8>>> {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    let mut guard = state();
    guard.sink = Sink::Buffer(Arc::clone(&buffer));
    guard.buckets = None;
    buffer
}

/// Redirects all subsequent log output to a size-rotated file
/// (`bstc-cli --log-file`). The file is opened in append mode so
/// restarts continue an existing log. When appending would exceed
/// `max_bytes`, the file rotates: `<path>` becomes `<path>.1`, shifting
/// older rotations up to `<path>.<keep>` and deleting beyond that
/// (`max_bytes == 0` disables rotation; `keep == 0` truncates in place).
/// Call [`use_stderr`] to restore the default sink.
pub fn set_file_sink(path: &Path, max_bytes: u64, keep: usize) -> std::io::Result<()> {
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let written = file.metadata()?.len();
    let mut guard = state();
    guard.sink = Sink::File(FileSink { path: path.to_path_buf(), file, written, max_bytes, keep });
    guard.buckets = None;
    Ok(())
}

/// Restores the default stderr sink.
pub fn use_stderr() {
    state().sink = Sink::Stderr;
}

/// Emits one event at level `debug` (dropped under the default filter).
pub fn debug(event: &str, fields: &[(&str, &str)]) {
    emit(Level::Debug, event, fields);
}

/// Emits one event at level `info`.
pub fn info(event: &str, fields: &[(&str, &str)]) {
    emit(Level::Info, event, fields);
}

/// Emits one event at level `warn`.
pub fn warn(event: &str, fields: &[(&str, &str)]) {
    emit(Level::Warn, event, fields);
}

/// Emits one event at level `error`.
pub fn error(event: &str, fields: &[(&str, &str)]) {
    emit(Level::Error, event, fields);
}

/// Level filter + token bucket, then [`write_event`]. The bucket is
/// checked and debited under the state lock; the `(level, event)` key's
/// accumulated suppression count is flushed as a `suppressed=<n>` field
/// on the next line that passes.
pub fn emit(level: Level, event: &str, fields: &[(&str, &str)]) {
    let suppressed = {
        let mut guard = state();
        if level < guard.min_level {
            return;
        }
        match guard.rate {
            None => 0,
            Some(rate) => {
                let now = Instant::now();
                let bucket = guard
                    .buckets
                    .get_or_insert_with(HashMap::new)
                    .entry((level, event.to_string()))
                    .or_insert(Bucket {
                        tokens: f64::from(rate.burst),
                        refilled: now,
                        suppressed: 0,
                    });
                bucket.tokens = (bucket.tokens
                    + now.duration_since(bucket.refilled).as_secs_f64() * rate.per_sec)
                    .min(f64::from(rate.burst));
                bucket.refilled = now;
                if bucket.tokens < 1.0 {
                    bucket.suppressed += 1;
                    return;
                }
                bucket.tokens -= 1.0;
                std::mem::take(&mut bucket.suppressed)
            }
        }
    };
    if suppressed > 0 {
        let n = suppressed.to_string();
        let mut with_note: Vec<(&str, &str)> = fields.to_vec();
        with_note.push(("suppressed", &n));
        write_event(level.as_str(), event, &with_note);
    } else {
        write_event(level.as_str(), event, fields);
    }
}

/// Emits one event unconditionally: a timestamp, level and event name
/// followed by the given fields, formatted per the configured
/// [`LogFormat`], written as a single line to the configured sink.
/// Field order is preserved. Bypasses the level filter and rate
/// limiter — use [`emit`] (or the level helpers) on anything hot.
pub fn write_event(level: &str, event: &str, fields: &[(&str, &str)]) {
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs_f64()).unwrap_or(0.0);
    let mut guard = state();
    let mut line = String::with_capacity(96);
    match guard.format {
        LogFormat::Json => {
            line.push_str(&format!("{{\"ts\":{ts:.3}"));
            for (key, value) in [("level", level), ("event", event)].iter().chain(fields.iter()) {
                line.push_str(",\"");
                json_escape_into(&mut line, key);
                line.push_str("\":\"");
                json_escape_into(&mut line, value);
                line.push('"');
            }
            line.push('}');
        }
        LogFormat::Text => {
            line.push_str(&format!("ts={ts:.3}"));
            for (key, value) in [("level", level), ("event", event)].iter().chain(fields.iter()) {
                line.push(' ');
                line.push_str(key);
                line.push('=');
                text_value_into(&mut line, value);
            }
        }
    }
    line.push('\n');
    match &mut guard.sink {
        Sink::Stderr => {
            let _ = std::io::stderr().lock().write_all(line.as_bytes());
        }
        Sink::Buffer(buffer) => {
            buffer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(line.as_bytes());
        }
        Sink::File(sink) => sink.write_line(line.as_bytes()),
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn text_value_into(out: &mut String, value: &str) {
    let needs_quotes = value.is_empty() || value.contains([' ', '=', '"', '\n', '\r', '\t']);
    if needs_quotes {
        out.push('"');
        for c in value.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c => out.push(c),
            }
        }
        out.push('"');
    } else {
        out.push_str(value);
    }
}

static REQUEST_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Generates a 16-hex-char request ID: a splitmix64 finalizer over
/// wall-clock nanos, the process ID and a process-local counter. IDs
/// are unique within a process (counter) and effectively unique across
/// restarts (clock + pid), with no RNG dependency.
pub fn request_id() -> String {
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
    let n = REQUEST_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut z =
        nanos ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(std::process::id()) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    format!("{z:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Logger state is process-global; serialize the tests that touch it.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn captured(format: LogFormat, f: impl FnOnce()) -> String {
        let buffer = capture();
        set_format(format);
        f();
        set_format(LogFormat::Text);
        use_stderr();
        let bytes = buffer.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn json_lines_are_well_formed_and_escaped() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let out = captured(LogFormat::Json, || {
            info("request", &[("path", "/classify"), ("note", "a\"b\\c\nd")]);
        });
        let line = out.lines().next().unwrap();
        assert!(line.starts_with("{\"ts\":"), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"event\":\"request\""), "{line}");
        assert!(line.contains("\"path\":\"/classify\""), "{line}");
        assert!(line.contains("\"note\":\"a\\\"b\\\\c\\nd\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    #[test]
    fn text_lines_quote_only_when_needed() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let out = captured(LogFormat::Text, || {
            warn("shed", &[("route", "/classify"), ("why", "queue full")]);
        });
        let line = out.lines().next().unwrap();
        assert!(line.contains("level=warn"), "{line}");
        assert!(line.contains("event=shed"), "{line}");
        assert!(line.contains("route=/classify"), "{line}");
        assert!(line.contains("why=\"queue full\""), "{line}");
    }

    #[test]
    fn level_filter_drops_below_minimum() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let out = captured(LogFormat::Text, || {
            debug("noise", &[]); // default minimum is Info
            info("kept", &[]);
            set_level(Level::Warn);
            info("dropped", &[]);
            warn("kept_too", &[]);
            set_level(Level::Debug);
            debug("now_kept", &[]);
            set_level(Level::Info);
        });
        assert!(!out.contains("event=noise"), "{out}");
        assert!(out.contains("event=kept"), "{out}");
        assert!(!out.contains("event=dropped"), "{out}");
        assert!(out.contains("event=kept_too"), "{out}");
        assert!(out.contains("event=now_kept"), "{out}");
    }

    #[test]
    fn level_parses_and_orders() {
        assert_eq!("warn".parse::<Level>().unwrap(), Level::Warn);
        assert!("trace".parse::<Level>().is_err());
        assert!(Level::Debug < Level::Info && Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn rate_limit_bounds_a_hot_loop_per_key() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let out = captured(LogFormat::Text, || {
            set_rate_limit(Some(RateLimit { burst: 3, per_sec: 0.0 }));
            for _ in 0..50 {
                info("hot", &[("path", "/nope")]);
            }
            // A distinct event and a distinct level each have their own
            // bucket and still get through.
            info("other", &[]);
            warn("hot", &[]);
            set_rate_limit(Some(DEFAULT_RATE_LIMIT));
        });
        assert_eq!(out.matches("event=hot").count(), 3 + 1, "{out}");
        assert!(out.contains("event=other"), "{out}");
        assert!(out.contains("level=warn event=hot"), "{out}");
    }

    #[test]
    fn suppressed_count_is_flushed_on_refill() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let out = captured(LogFormat::Text, || {
            set_rate_limit(Some(RateLimit { burst: 1, per_sec: 1000.0 }));
            info("busy", &[]); // spends the only token
            for _ in 0..7 {
                info("busy", &[]);
            }
            // Earn a token back, then verify the next line accounts for
            // every dropped one.
            std::thread::sleep(std::time::Duration::from_millis(20));
            info("busy", &[("k", "v")]);
            set_rate_limit(Some(DEFAULT_RATE_LIMIT));
        });
        let resumed = out.lines().find(|l| l.contains("suppressed=")).expect("resume line");
        assert!(resumed.contains("suppressed=7"), "{resumed}");
        assert!(resumed.contains("k=v"), "{resumed}");
    }

    #[test]
    fn file_sink_rotates_at_the_size_budget_and_bounds_retention() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("obs_log_rotate_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bstc.log");
        for stale in
            [path.clone(), dir.join("bstc.log.1"), dir.join("bstc.log.2"), dir.join("bstc.log.3")]
        {
            let _ = std::fs::remove_file(stale);
        }
        // Each line is ~40 bytes; a 100-byte budget forces a rotation
        // every couple of lines. keep=2 → at most bstc.log + .1 + .2.
        set_file_sink(&path, 100, 2).unwrap();
        for i in 0..12 {
            let n = i.to_string();
            info("tick", &[("i", n.as_str())]);
        }
        use_stderr();
        assert!(path.exists());
        assert!(dir.join("bstc.log.1").exists());
        assert!(dir.join("bstc.log.2").exists());
        assert!(!dir.join("bstc.log.3").exists(), "retention must stop at keep");
        // No line is ever split across files, and the newest lines are
        // in the active file.
        let active = std::fs::read_to_string(&path).unwrap();
        assert!(active.lines().all(|l| l.contains("event=tick")), "{active}");
        assert!(active.contains("i=11"), "{active}");
        let rotated = std::fs::read_to_string(dir.join("bstc.log.1")).unwrap();
        assert!(rotated.len() as u64 <= 100 + 64, "rotation should keep files near budget");
    }

    #[test]
    fn file_sink_appends_across_reopens() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("obs_log_append_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("append.log");
        let _ = std::fs::remove_file(&path);
        set_file_sink(&path, 0, 0).unwrap(); // max_bytes=0 → never rotate
        info("first", &[]);
        use_stderr();
        set_file_sink(&path, 0, 0).unwrap();
        info("second", &[]);
        use_stderr();
        let all = std::fs::read_to_string(&path).unwrap();
        assert!(all.contains("event=first") && all.contains("event=second"), "{all}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn request_ids_are_unique_hex16() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = request_id();
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(seen.insert(id), "duplicate request id");
        }
    }

    #[test]
    fn format_parses_from_str() {
        assert_eq!("text".parse::<LogFormat>().unwrap(), LogFormat::Text);
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("yaml".parse::<LogFormat>().is_err());
    }
}
