//! Structured logging: JSON lines (or plain text) with request IDs.
//!
//! One event = one line on the configured sink (stderr by default).
//! JSON format emits `{"ts":...,"level":"info","event":"request",...}`
//! with all user fields as string values and hand-rolled escaping (no
//! serializer dependency); text format emits `key=value` pairs with
//! quoting only where needed. The sink is swappable to an in-memory
//! buffer so integration tests can assert on emitted lines.
//!
//! [`request_id`] generates 16-hex-char IDs suitable for `X-Request-Id`
//! correlation: unique per process and across restarts, with no global
//! RNG dependency.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{SystemTime, UNIX_EPOCH};

/// Output format for emitted log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// `ts=... level=... event=... key=value` pairs, quoted as needed.
    Text,
    /// One JSON object per line.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<LogFormat, String> {
        match s {
            "text" => Ok(LogFormat::Text),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format '{other}' (expected 'text' or 'json')")),
        }
    }
}

enum Sink {
    Stderr,
    Buffer(Arc<Mutex<Vec<u8>>>),
}

struct State {
    format: LogFormat,
    sink: Sink,
}

static STATE: Mutex<State> = Mutex::new(State { format: LogFormat::Text, sink: Sink::Stderr });

fn state() -> std::sync::MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sets the global output format (`bstc-cli serve --log-format`).
pub fn set_format(format: LogFormat) {
    state().format = format;
}

/// Current global output format.
pub fn format() -> LogFormat {
    state().format
}

/// Redirects all subsequent log output into an in-memory buffer and
/// returns a handle to it (integration-test hook). Call
/// [`use_stderr`] to restore the default sink.
pub fn capture() -> Arc<Mutex<Vec<u8>>> {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    state().sink = Sink::Buffer(Arc::clone(&buffer));
    buffer
}

/// Restores the default stderr sink.
pub fn use_stderr() {
    state().sink = Sink::Stderr;
}

/// Emits one event at level `info`.
pub fn info(event: &str, fields: &[(&str, &str)]) {
    write_event("info", event, fields);
}

/// Emits one event at level `warn`.
pub fn warn(event: &str, fields: &[(&str, &str)]) {
    write_event("warn", event, fields);
}

/// Emits one event at level `error`.
pub fn error(event: &str, fields: &[(&str, &str)]) {
    write_event("error", event, fields);
}

/// Emits one event: a timestamp, level and event name followed by the
/// given fields, formatted per the configured [`LogFormat`], written as
/// a single line to the configured sink. Field order is preserved.
pub fn write_event(level: &str, event: &str, fields: &[(&str, &str)]) {
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs_f64()).unwrap_or(0.0);
    let guard = state();
    let mut line = String::with_capacity(96);
    match guard.format {
        LogFormat::Json => {
            line.push_str(&format!("{{\"ts\":{ts:.3}"));
            for (key, value) in [("level", level), ("event", event)].iter().chain(fields.iter()) {
                line.push_str(",\"");
                json_escape_into(&mut line, key);
                line.push_str("\":\"");
                json_escape_into(&mut line, value);
                line.push('"');
            }
            line.push('}');
        }
        LogFormat::Text => {
            line.push_str(&format!("ts={ts:.3}"));
            for (key, value) in [("level", level), ("event", event)].iter().chain(fields.iter()) {
                line.push(' ');
                line.push_str(key);
                line.push('=');
                text_value_into(&mut line, value);
            }
        }
    }
    line.push('\n');
    match &guard.sink {
        Sink::Stderr => {
            let _ = std::io::stderr().lock().write_all(line.as_bytes());
        }
        Sink::Buffer(buffer) => {
            buffer
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(line.as_bytes());
        }
    }
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn text_value_into(out: &mut String, value: &str) {
    let needs_quotes = value.is_empty() || value.contains([' ', '=', '"', '\n', '\r', '\t']);
    if needs_quotes {
        out.push('"');
        for c in value.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c => out.push(c),
            }
        }
        out.push('"');
    } else {
        out.push_str(value);
    }
}

static REQUEST_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Generates a 16-hex-char request ID: a splitmix64 finalizer over
/// wall-clock nanos, the process ID and a process-local counter. IDs
/// are unique within a process (counter) and effectively unique across
/// restarts (clock + pid), with no RNG dependency.
pub fn request_id() -> String {
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
    let n = REQUEST_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut z =
        nanos ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (u64::from(std::process::id()) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    format!("{z:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Logger state is process-global; serialize the tests that touch it.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn captured(format: LogFormat, f: impl FnOnce()) -> String {
        let buffer = capture();
        set_format(format);
        f();
        set_format(LogFormat::Text);
        use_stderr();
        let bytes = buffer.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn json_lines_are_well_formed_and_escaped() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let out = captured(LogFormat::Json, || {
            info("request", &[("path", "/classify"), ("note", "a\"b\\c\nd")]);
        });
        let line = out.lines().next().unwrap();
        assert!(line.starts_with("{\"ts\":"), "{line}");
        assert!(line.contains("\"level\":\"info\""), "{line}");
        assert!(line.contains("\"event\":\"request\""), "{line}");
        assert!(line.contains("\"path\":\"/classify\""), "{line}");
        assert!(line.contains("\"note\":\"a\\\"b\\\\c\\nd\""), "{line}");
        assert!(line.ends_with('}'), "{line}");
    }

    #[test]
    fn text_lines_quote_only_when_needed() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let out = captured(LogFormat::Text, || {
            warn("shed", &[("route", "/classify"), ("why", "queue full")]);
        });
        let line = out.lines().next().unwrap();
        assert!(line.contains("level=warn"), "{line}");
        assert!(line.contains("event=shed"), "{line}");
        assert!(line.contains("route=/classify"), "{line}");
        assert!(line.contains("why=\"queue full\""), "{line}");
    }

    #[test]
    fn request_ids_are_unique_hex16() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = request_id();
            assert_eq!(id.len(), 16);
            assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
            assert!(seen.insert(id), "duplicate request id");
        }
    }

    #[test]
    fn format_parses_from_str() {
        assert_eq!("text".parse::<LogFormat>().unwrap(), LogFormat::Text);
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("yaml".parse::<LogFormat>().is_err());
    }
}
