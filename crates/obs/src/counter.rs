//! Process-global monotonic counters: named `AtomicU64`s with
//! Prometheus counter-family rendering.
//!
//! Stage histograms ([`crate::stage`]) answer "how long did phase X
//! take"; counters answer "how much work did it do". The BST builder
//! records its volume counters here (`bstc_bst_pairs_total`,
//! `bstc_bst_distinct_lists_total`, `bstc_bst_arena_bytes_total`), the
//! CLI folds them into `BENCH_train.json`, and the server appends them
//! to `GET /metrics`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A named collection of monotonic `u64` counters.
///
/// Counters are created on first use and live for the registry's
/// lifetime; the lock is taken only to insert a new name, so
/// [`CounterRegistry::add`] on an existing counter is one atomic op
/// after a read-locked lookup (or hold the [`Arc`] from
/// [`CounterRegistry::counter`] to skip even that).
pub struct CounterRegistry {
    inner: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
}

impl CounterRegistry {
    /// Creates an empty registry (usable in `static` position).
    pub const fn new() -> CounterRegistry {
        CounterRegistry { inner: RwLock::new(BTreeMap::new()) }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<AtomicU64>>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the counter registered under `name`, creating it at zero
    /// if this is the first use of the name.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))))
    }

    /// Adds `delta` to the counter under `name` (created if absent).
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of the counter under `name`; 0 if never touched.
    pub fn get(&self, name: &str) -> u64 {
        self.read().get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Every registered counter's `(name, value)`, in name order.
    pub fn totals(&self) -> Vec<(String, u64)> {
        self.read().iter().map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))).collect()
    }

    /// Renders every registered counter as its own Prometheus counter
    /// family (`# TYPE <name> counter` + one unlabelled sample). Returns
    /// an empty string when nothing is registered, so callers can append
    /// this verbatim to an existing exposition.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.totals() {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        out
    }

    /// Resets the registry to empty (test isolation helper).
    pub fn clear(&self) {
        self.inner.write().unwrap_or_else(PoisonError::into_inner).clear();
    }
}

impl Default for CounterRegistry {
    fn default() -> Self {
        CounterRegistry::new()
    }
}

static GLOBAL: CounterRegistry = CounterRegistry::new();

/// The process-global counter registry. The training pipeline records
/// into it; `/metrics`, `BENCH_train.json`, and the CLI read it.
pub fn counters() -> &'static CounterRegistry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_creates_and_accumulates() {
        let reg = CounterRegistry::new();
        assert_eq!(reg.get("x_total"), 0);
        reg.add("x_total", 3);
        reg.add("x_total", 4);
        assert_eq!(reg.get("x_total"), 7);
    }

    #[test]
    fn counter_identity_is_stable_per_name() {
        let reg = CounterRegistry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        assert!(Arc::ptr_eq(&a, &b));
        a.fetch_add(5, Ordering::Relaxed);
        assert_eq!(reg.get("same"), 5);
    }

    #[test]
    fn totals_are_name_ordered() {
        let reg = CounterRegistry::new();
        reg.add("b_total", 2);
        reg.add("a_total", 1);
        assert_eq!(reg.totals(), vec![("a_total".into(), 1), ("b_total".into(), 2)]);
    }

    #[test]
    fn render_is_empty_without_counters_and_typed_with() {
        let reg = CounterRegistry::new();
        assert_eq!(reg.render_prometheus(), "");
        reg.add("bstc_bst_pairs_total", 42);
        let out = reg.render_prometheus();
        assert_eq!(out, "# TYPE bstc_bst_pairs_total counter\nbstc_bst_pairs_total 42\n");
    }

    #[test]
    fn global_registry_is_shared() {
        counters().add("counter_global_smoke_total", 1);
        assert!(counters().get("counter_global_smoke_total") >= 1);
    }
}
