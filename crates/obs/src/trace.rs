//! Parent-span trace trees — structural timing across process
//! boundaries.
//!
//! [`Stage`](crate::Stage) answers "how long did each stage take in
//! aggregate"; a [`Trace`] answers "which spans ran *under* which" — the
//! shape the sharded CV driver needs, where a parent process fans
//! replicate ranges out to `cv-shard` workers and wants one tree:
//!
//! ```text
//! cv dur_us=...
//!   shard shard_id=0 dur_us=...
//!     replicate rep=0 dur_us=...
//!     replicate rep=1 dur_us=...
//!   shard shard_id=1 dur_us=...
//!     replicate rep=2 dur_us=...
//! ```
//!
//! Spans are recorded into a [`Trace`] (per driver run, not
//! process-global) and exported as plain [`SpanRecord`]s — obs stays
//! std-only, so serialization to the shard JSON protocol lives with the
//! CLI. A parent joins a worker's records with [`Trace::adopt`], which
//! re-maps the child's span ids into the parent's id space and grafts
//! the child's roots under a chosen parent span; ids never collide and
//! the structure is preserved exactly.
//!
//! Span timestamps are relative to their own trace's start (`start_us`),
//! so adopted spans keep the *worker's* timebase: the tree is
//! structural, durations are real, but cross-process `start_us` values
//! are not mutually comparable.

use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// One completed (or still-open) span in a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Id unique within the owning [`Trace`] (after [`Trace::adopt`],
    /// within the adopting trace).
    pub id: u64,
    /// Enclosing span, `None` for roots.
    pub parent: Option<u64>,
    /// Span name (e.g. `"shard"`, `"replicate"`).
    pub name: String,
    /// Key/value annotations (e.g. `("shard_id", "2")`).
    pub fields: Vec<(String, String)>,
    /// Microseconds from the owning trace's creation to span start.
    pub start_us: u64,
    /// Span duration in microseconds; `0` until the span ends.
    pub dur_us: u64,
}

struct Inner {
    spans: Vec<SpanRecord>,
    next_id: u64,
}

/// A collector of parent-linked spans. Cheap enough for per-replicate
/// granularity; thread-safe so rayon-parallel replicates can record
/// concurrently.
pub struct Trace {
    inner: Mutex<Inner>,
    t0: Instant,
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new()
    }
}

impl Trace {
    /// An empty trace; `start_us` of its spans are relative to now.
    pub fn new() -> Trace {
        Trace { inner: Mutex::new(Inner { spans: Vec::new(), next_id: 0 }), t0: Instant::now() }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Opens a span under `parent` (`None` = root) and returns its id.
    /// The span stays open (`dur_us == 0`) until [`end`](Trace::end).
    pub fn begin(&self, name: &str, parent: Option<u64>) -> u64 {
        let start_us = self.t0.elapsed().as_micros() as u64;
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        inner.spans.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            fields: Vec::new(),
            start_us,
            dur_us: 0,
        });
        id
    }

    /// Closes span `id`, fixing its duration. No-op on unknown ids.
    pub fn end(&self, id: u64) {
        let now_us = self.t0.elapsed().as_micros() as u64;
        let mut inner = self.lock();
        if let Some(span) = inner.spans.iter_mut().find(|s| s.id == id) {
            span.dur_us = now_us.saturating_sub(span.start_us);
        }
    }

    /// Attaches a `key=value` annotation to span `id`.
    pub fn add_field(&self, id: u64, key: &str, value: &str) {
        let mut inner = self.lock();
        if let Some(span) = inner.spans.iter_mut().find(|s| s.id == id) {
            span.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// RAII convenience: opens a span that [`end`](Trace::end)s itself
    /// on drop.
    pub fn span(&self, name: &str, parent: Option<u64>) -> Span<'_> {
        Span { trace: self, id: self.begin(name, parent) }
    }

    /// Snapshot of every span recorded so far, in begin order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// Grafts another trace's records (typically deserialized from a
    /// worker process) under span `parent` of *this* trace.
    ///
    /// Every adopted span gets a fresh id from this trace's sequence;
    /// internal parent links are re-mapped through the same translation,
    /// and the child's roots become children of `parent`. Records whose
    /// parent id is missing from `records` are grafted under `parent`
    /// too rather than dropped. Returns the new ids, parallel to
    /// `records`.
    pub fn adopt(&self, parent: u64, records: &[SpanRecord]) -> Vec<u64> {
        let mut inner = self.lock();
        let mut remap = std::collections::HashMap::with_capacity(records.len());
        let mut new_ids = Vec::with_capacity(records.len());
        for record in records {
            let id = inner.next_id;
            inner.next_id += 1;
            remap.insert(record.id, id);
            new_ids.push(id);
        }
        for (record, &id) in records.iter().zip(&new_ids) {
            let mapped_parent =
                record.parent.and_then(|p| remap.get(&p).copied()).unwrap_or(parent);
            let mut adopted = record.clone();
            adopted.id = id;
            adopted.parent = Some(mapped_parent);
            inner.spans.push(adopted);
        }
        new_ids
    }

    /// Renders the tree as indented text, two spaces per depth level,
    /// children in begin order: `name key=value dur_us=N`. Spans whose
    /// parent is unknown render as roots so partial traces still print.
    pub fn render_tree(&self) -> String {
        let spans = self.lock().spans.clone();
        let known: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
        let mut out = String::new();
        // Unknown parents — and the degenerate self-parent an adopt
        // under a nonexistent graft point can produce — render as roots.
        let roots: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !known.contains(&p) || p == s.id))
            .collect();
        for root in roots {
            render_into(&mut out, &spans, root, 0);
        }
        out
    }
}

fn render_into(out: &mut String, spans: &[SpanRecord], span: &SpanRecord, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&span.name);
    for (k, v) in &span.fields {
        out.push(' ');
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push_str(&format!(" dur_us={}\n", span.dur_us));
    for child in spans.iter().filter(|s| s.parent == Some(span.id) && s.id != span.id) {
        render_into(out, spans, child, depth + 1);
    }
}

/// Drop guard returned by [`Trace::span`].
pub struct Span<'a> {
    trace: &'a Trace,
    id: u64,
}

impl Span<'_> {
    /// The underlying span id, for parenting children or annotating.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a `key=value` annotation to this span.
    pub fn add_field(&self, key: &str, value: &str) {
        self.trace.add_field(self.id, key, value);
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.trace.end(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close_on_drop() {
        let trace = Trace::new();
        {
            let root = trace.span("cv", None);
            let child = trace.span("replicate", Some(root.id()));
            child.add_field("rep", "0");
        }
        let records = trace.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].name, "cv");
        assert_eq!(records[0].parent, None);
        assert_eq!(records[1].parent, Some(records[0].id));
        assert_eq!(records[1].fields, vec![("rep".to_string(), "0".to_string())]);
    }

    #[test]
    fn adopt_remaps_ids_and_grafts_roots_under_the_parent() {
        // Worker trace: its own root with two children; ids 0,1,2 will
        // collide with the parent's numbering unless remapped.
        let worker = Trace::new();
        let wroot = worker.begin("shard_work", None);
        let wa = worker.begin("replicate", Some(wroot));
        let wb = worker.begin("replicate", Some(wroot));
        worker.end(wa);
        worker.end(wb);
        worker.end(wroot);

        let parent = Trace::new();
        let cv = parent.begin("cv", None);
        let shard = parent.begin("shard", Some(cv));
        parent.add_field(shard, "shard_id", "0");
        let new_ids = parent.adopt(shard, &worker.records());
        parent.end(shard);
        parent.end(cv);

        assert_eq!(new_ids.len(), 3);
        let records = parent.records();
        // Adopted ids are fresh — no collisions with cv/shard.
        let mut all: Vec<u64> = records.iter().map(|s| s.id).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), records.len(), "span ids must stay unique after adopt");
        // The worker's root now hangs off the shard span; its children
        // still hang off it.
        let adopted_root = records.iter().find(|s| s.name == "shard_work").unwrap();
        assert_eq!(adopted_root.parent, Some(shard));
        let reps: Vec<&SpanRecord> = records.iter().filter(|s| s.name == "replicate").collect();
        assert_eq!(reps.len(), 2);
        assert!(reps.iter().all(|r| r.parent == Some(adopted_root.id)));
    }

    #[test]
    fn render_tree_indents_by_structure() {
        let trace = Trace::new();
        let cv = trace.begin("cv", None);
        let shard = trace.begin("shard", Some(cv));
        trace.add_field(shard, "shard_id", "1");
        let rep = trace.begin("replicate", Some(shard));
        trace.add_field(rep, "rep", "3");
        trace.end(rep);
        trace.end(shard);
        trace.end(cv);
        let tree = trace.render_tree();
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 3, "{tree}");
        assert!(lines[0].starts_with("cv "), "{tree}");
        assert!(lines[1].starts_with("  shard shard_id=1 "), "{tree}");
        assert!(lines[2].starts_with("    replicate rep=3 "), "{tree}");
    }

    #[test]
    fn orphaned_parents_degrade_to_roots() {
        // A partial record set (e.g. a worker that died mid-run) whose
        // parent ids point outside the set must still render.
        let trace = Trace::new();
        let orphan = SpanRecord {
            id: 99,
            parent: Some(42),
            name: "lost".into(),
            fields: vec![],
            start_us: 0,
            dur_us: 7,
        };
        let root = trace.begin("cv", None);
        trace.adopt(root, std::slice::from_ref(&orphan));
        trace.end(root);
        let tree = trace.render_tree();
        assert!(tree.contains("lost dur_us=7"), "{tree}");
        // Direct render of an un-adopted orphan set also works.
        let lone = Trace::new();
        lone.adopt(0, &[orphan]); // parent 0 doesn't exist in `lone`
        assert!(lone.render_tree().contains("lost"), "{}", lone.render_tree());
    }

    #[test]
    fn durations_are_monotone_with_nesting() {
        let trace = Trace::new();
        let outer = trace.begin("outer", None);
        let inner = trace.begin("inner", Some(outer));
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.end(inner);
        trace.end(outer);
        let records = trace.records();
        let outer_dur = records.iter().find(|s| s.name == "outer").unwrap().dur_us;
        let inner_dur = records.iter().find(|s| s.name == "inner").unwrap().dur_us;
        assert!(outer_dur >= inner_dur, "outer {outer_dur} < inner {inner_dur}");
        assert!(inner_dur > 0);
    }
}
