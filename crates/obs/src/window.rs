//! A windowed (two-epoch flip) variant of [`Histogram`].
//!
//! A cumulative histogram never forgets: a `/metrics` p99 scraped an hour
//! into a run still mixes in the cold-start samples from minute one, so
//! steady-state regressions hide behind stale history. A
//! [`WindowedHistogram`] bounds that memory with the classic two-epoch
//! flip: writers record into the *active* epoch (same lock-free fast path
//! as [`Histogram::record`]); once the active epoch is older than the
//! window, the next reader resets the inactive epoch and swaps. Reads
//! merge **both** epochs, so every report covers between 1× and 2× the
//! window — recent enough to reflect steady state, wide enough that a
//! flip never empties the view mid-scrape.
//!
//! The flip is not atomic with respect to writers: a record racing the
//! swap may land in the epoch being reset and be lost, or double into the
//! freshly cleared one. That is at most a couple of samples per window —
//! noise at metrics cardinality — and buys a zero-coordination record
//! path.

use crate::hist::{percentile_from_counts, render_counts_into, Histogram, BUCKETS_LEN};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A latency histogram that only remembers the last 1–2 windows of
/// samples (see the module docs for the epoch-flip design).
pub struct WindowedHistogram {
    /// The two epochs; `active` indexes the one writers record into.
    epochs: [Histogram; 2],
    active: AtomicUsize,
    window: Duration,
    /// Instant of the last flip (guards the flip itself; the record path
    /// never touches it).
    flipped_at: Mutex<Instant>,
}

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedHistogram")
            .field("window", &self.window)
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

impl Default for WindowedHistogram {
    /// A windowed histogram with the conventional scrape-friendly
    /// 60-second window (covers several 10–15 s scrape intervals).
    fn default() -> WindowedHistogram {
        WindowedHistogram::new(Duration::from_secs(60))
    }
}

impl WindowedHistogram {
    /// An empty windowed histogram forgetting samples older than
    /// 1–2 × `window`.
    pub fn new(window: Duration) -> WindowedHistogram {
        WindowedHistogram {
            epochs: [Histogram::new(), Histogram::new()],
            active: AtomicUsize::new(0),
            window,
            flipped_at: Mutex::new(Instant::now()),
        }
    }

    /// Records one value into the active epoch. Lock-free, same cost as
    /// [`Histogram::record`].
    pub fn record(&self, value: u64) {
        self.epochs[self.active.load(Ordering::Relaxed)].record(value);
    }

    /// Flips epochs if the active one has outlived the window, then
    /// takes one merged (buckets, sum) snapshot of both epochs — all
    /// under the flip lock, so no concurrent reader can reset an epoch
    /// between this reader's bucket and sum reads. Each epoch's sum and
    /// buckets come from a single [`Histogram::snapshot_into`] call
    /// (sum acquired before buckets), so the merged `_sum` never counts
    /// a sample the merged buckets lack — a racing `record` shows up in
    /// neither or in the buckets only, keeping `_sum` ≤ what the
    /// buckets can explain. (The flip's reset keeps its documented
    /// couple-of-samples-per-window noise; that requires a writer
    /// stalled mid-record across a whole window, not a scrape race.)
    /// The lock is per *read*; records stay lock-free (reads are
    /// scrapes, not the hot path).
    fn flip_and_snapshot(&self) -> (Vec<u64>, u64) {
        let mut flipped_at = self.flipped_at.lock().unwrap_or_else(|e| e.into_inner());
        if flipped_at.elapsed() >= self.window {
            let active = self.active.load(Ordering::Relaxed);
            let next = 1 - active;
            // The outgoing inactive epoch holds the window before last —
            // clear it and direct writers at it.
            self.epochs[next].reset();
            self.active.store(next, Ordering::Relaxed);
            *flipped_at = Instant::now();
        }
        let mut counts = vec![0u64; BUCKETS_LEN];
        let mut sum = 0u64;
        for epoch in &self.epochs {
            sum = sum.wrapping_add(epoch.snapshot_into(&mut counts));
        }
        (counts, sum)
    }

    /// Number of values recorded in the last 1–2 windows.
    pub fn count(&self) -> u64 {
        let (counts, _) = self.flip_and_snapshot();
        counts.iter().sum()
    }

    /// Sum of the values recorded in the last 1–2 windows.
    pub fn sum(&self) -> u64 {
        let (_, sum) = self.flip_and_snapshot();
        sum
    }

    /// Nearest-rank p-quantile over the last 1–2 windows (same bucket
    /// semantics as [`Histogram::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        let (counts, _) = self.flip_and_snapshot();
        let q = percentile_from_counts(&counts)(p);
        q
    }

    /// Prometheus text exposition of the merged epochs (same shape as
    /// [`Histogram::render_into`]). Note the rendered `_count`/`_sum`
    /// are *windowed*, not cumulative — rate() over them is meaningless;
    /// they exist for quantile extraction.
    pub fn render_into(&self, out: &mut String, metric: &str, labels: &[(&str, &str)]) {
        let (counts, sum) = self.flip_and_snapshot();
        render_counts_into(out, metric, labels, &counts, sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_both_epochs_within_window() {
        let w = WindowedHistogram::new(Duration::from_secs(3600));
        for v in 1..=100u64 {
            w.record(v);
        }
        assert_eq!(w.count(), 100);
        assert_eq!(w.sum(), 5050);
        assert!(w.percentile(0.99) >= 99);
    }

    #[test]
    fn flip_forgets_samples_older_than_two_windows() {
        let w = WindowedHistogram::new(Duration::from_millis(1));
        for _ in 0..50 {
            w.record(1_000_000); // a slow cold start
        }
        // Two expired windows: first read flips (old samples now in the
        // inactive epoch), second flip clears them.
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(w.count(), 50, "first flip keeps the previous epoch visible");
        std::thread::sleep(Duration::from_millis(3));
        let _ = w.count(); // second flip resets the old epoch
        w.record(10);
        assert_eq!(w.count(), 1, "cold-start samples evicted");
        assert!(w.percentile(0.99) < 1000, "p99 reflects steady state only");
    }

    /// Regression test for the counts/sum scrape race: `render_into`
    /// used to snapshot the bucket counts and then re-read the live
    /// epoch sums, so a `record` landing between the two reads made the
    /// rendered `_sum` include a sample the buckets lacked. The value
    /// 1023 is exactly a bucket upper edge, so with a coherent snapshot
    /// `_sum == count × 1023` must hold *exactly* — a single leaked
    /// sample trips the assertion. The window is long enough that no
    /// flip occurs mid-test: the flip's (documented, bounded) reset
    /// noise is a separate phenomenon from the scrape race under test.
    #[test]
    fn concurrent_records_never_leak_into_sum_ahead_of_buckets() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        const VALUE: u64 = 1023;
        let w = Arc::new(WindowedHistogram::new(Duration::from_secs(3600)));
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let w = Arc::clone(&w);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        w.record(VALUE);
                    }
                })
            })
            .collect();
        for _ in 0..2000 {
            let mut out = String::new();
            w.render_into(&mut out, "m", &[]);
            let mut sum = None;
            let mut inf = None;
            for line in out.lines() {
                if let Some(rest) = line.strip_prefix("m_sum ") {
                    sum = rest.parse::<u64>().ok();
                } else if let Some(rest) = line.strip_prefix("m_bucket{le=\"+Inf\"} ") {
                    inf = rest.parse::<u64>().ok();
                }
            }
            let (sum, inf) = (sum.expect("sum line"), inf.expect("+Inf line"));
            assert!(
                sum <= inf * VALUE,
                "rendered _sum {sum} exceeds {inf} bucketed samples × {VALUE}: a \
                 record leaked into the sum ahead of its bucket\n{out}"
            );
        }
        stop.store(true, Ordering::Relaxed);
        for t in writers {
            t.join().unwrap();
        }
    }

    #[test]
    fn render_matches_plain_histogram_shape() {
        let w = WindowedHistogram::new(Duration::from_secs(3600));
        for v in [3u64, 90, 2_000] {
            w.record(v);
        }
        let mut out = String::new();
        w.render_into(&mut out, "m", &[("route", "/classify")]);
        assert!(out.contains("m_bucket{route=\"/classify\",le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("m_count{route=\"/classify\"} 3"), "{out}");
        assert!(out.contains("m_sum{route=\"/classify\"} 2093"), "{out}");
    }
}
