//! A windowed (two-epoch flip) variant of [`Histogram`].
//!
//! A cumulative histogram never forgets: a `/metrics` p99 scraped an hour
//! into a run still mixes in the cold-start samples from minute one, so
//! steady-state regressions hide behind stale history. A
//! [`WindowedHistogram`] bounds that memory with the classic two-epoch
//! flip: writers record into the *active* epoch (same lock-free fast path
//! as [`Histogram::record`]); once the active epoch is older than the
//! window, the next reader resets the inactive epoch and swaps. Reads
//! merge **both** epochs, so every report covers between 1× and 2× the
//! window — recent enough to reflect steady state, wide enough that a
//! flip never empties the view mid-scrape.
//!
//! The flip is not atomic with respect to writers: a record racing the
//! swap may land in the epoch being reset and be lost, or double into the
//! freshly cleared one. That is at most a couple of samples per window —
//! noise at metrics cardinality — and buys a zero-coordination record
//! path.

use crate::hist::{percentile_from_counts, render_counts_into, Histogram, BUCKETS_LEN};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A latency histogram that only remembers the last 1–2 windows of
/// samples (see the module docs for the epoch-flip design).
pub struct WindowedHistogram {
    /// The two epochs; `active` indexes the one writers record into.
    epochs: [Histogram; 2],
    active: AtomicUsize,
    window: Duration,
    /// Instant of the last flip (guards the flip itself; the record path
    /// never touches it).
    flipped_at: Mutex<Instant>,
}

impl std::fmt::Debug for WindowedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WindowedHistogram")
            .field("window", &self.window)
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

impl Default for WindowedHistogram {
    /// A windowed histogram with the conventional scrape-friendly
    /// 60-second window (covers several 10–15 s scrape intervals).
    fn default() -> WindowedHistogram {
        WindowedHistogram::new(Duration::from_secs(60))
    }
}

impl WindowedHistogram {
    /// An empty windowed histogram forgetting samples older than
    /// 1–2 × `window`.
    pub fn new(window: Duration) -> WindowedHistogram {
        WindowedHistogram {
            epochs: [Histogram::new(), Histogram::new()],
            active: AtomicUsize::new(0),
            window,
            flipped_at: Mutex::new(Instant::now()),
        }
    }

    /// Records one value into the active epoch. Lock-free, same cost as
    /// [`Histogram::record`].
    pub fn record(&self, value: u64) {
        self.epochs[self.active.load(Ordering::Relaxed)].record(value);
    }

    /// Rotates epochs if the active one has outlived the window. Called
    /// from every read path; cheap when no flip is due (one mutex lock
    /// per read — reads are scrapes, not the hot path).
    fn maybe_flip(&self) {
        let mut flipped_at = self.flipped_at.lock().unwrap_or_else(|e| e.into_inner());
        if flipped_at.elapsed() < self.window {
            return;
        }
        let active = self.active.load(Ordering::Relaxed);
        let next = 1 - active;
        // The outgoing inactive epoch holds the window before last —
        // clear it and direct writers at it.
        self.epochs[next].reset();
        self.active.store(next, Ordering::Relaxed);
        *flipped_at = Instant::now();
    }

    /// Merged bucket snapshot of both epochs.
    fn merged_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; BUCKETS_LEN];
        for epoch in &self.epochs {
            epoch.add_buckets_into(&mut counts);
        }
        counts
    }

    /// Number of values recorded in the last 1–2 windows.
    pub fn count(&self) -> u64 {
        self.maybe_flip();
        self.epochs.iter().map(|e| e.count()).sum()
    }

    /// Sum of the values recorded in the last 1–2 windows.
    pub fn sum(&self) -> u64 {
        self.maybe_flip();
        self.epochs.iter().map(|e| e.sum()).sum()
    }

    /// Nearest-rank p-quantile over the last 1–2 windows (same bucket
    /// semantics as [`Histogram::percentile`]).
    pub fn percentile(&self, p: f64) -> u64 {
        self.maybe_flip();
        percentile_from_counts(&self.merged_counts())(p)
    }

    /// Prometheus text exposition of the merged epochs (same shape as
    /// [`Histogram::render_into`]). Note the rendered `_count`/`_sum`
    /// are *windowed*, not cumulative — rate() over them is meaningless;
    /// they exist for quantile extraction.
    pub fn render_into(&self, out: &mut String, metric: &str, labels: &[(&str, &str)]) {
        self.maybe_flip();
        let counts = self.merged_counts();
        let sum: u64 = self.epochs.iter().map(|e| e.sum()).sum();
        render_counts_into(out, metric, labels, &counts, sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_both_epochs_within_window() {
        let w = WindowedHistogram::new(Duration::from_secs(3600));
        for v in 1..=100u64 {
            w.record(v);
        }
        assert_eq!(w.count(), 100);
        assert_eq!(w.sum(), 5050);
        assert!(w.percentile(0.99) >= 99);
    }

    #[test]
    fn flip_forgets_samples_older_than_two_windows() {
        let w = WindowedHistogram::new(Duration::from_millis(1));
        for _ in 0..50 {
            w.record(1_000_000); // a slow cold start
        }
        // Two expired windows: first read flips (old samples now in the
        // inactive epoch), second flip clears them.
        std::thread::sleep(Duration::from_millis(3));
        assert_eq!(w.count(), 50, "first flip keeps the previous epoch visible");
        std::thread::sleep(Duration::from_millis(3));
        let _ = w.count(); // second flip resets the old epoch
        w.record(10);
        assert_eq!(w.count(), 1, "cold-start samples evicted");
        assert!(w.percentile(0.99) < 1000, "p99 reflects steady state only");
    }

    #[test]
    fn render_matches_plain_histogram_shape() {
        let w = WindowedHistogram::new(Duration::from_secs(3600));
        for v in [3u64, 90, 2_000] {
            w.record(v);
        }
        let mut out = String::new();
        w.render_into(&mut out, "m", &[("route", "/classify")]);
        assert!(out.contains("m_bucket{route=\"/classify\",le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("m_count{route=\"/classify\"} 3"), "{out}");
        assert!(out.contains("m_sum{route=\"/classify\"} 2093"), "{out}");
    }
}
