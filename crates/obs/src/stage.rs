//! Stage timers: named drop-guard spans feeding a registry of
//! histograms.
//!
//! `Stage::enter("mdl_cuts")` starts a span; dropping the guard records
//! the elapsed wall time in microseconds into the histogram named
//! `mdl_cuts` in the process-global [`Registry`]. Recording is lock-free
//! (the registry lock is taken only on first use of a name, to insert
//! the histogram); the registry renders all stages as one Prometheus
//! histogram family and exposes raw per-stage totals for CLI
//! breakdowns.
//!
//! The stage names used across the BSTC stack are `mdl_cuts`,
//! `binarize`, `bst_build`, `compile` and `classify_batch` — one per
//! pipeline phase, matching the per-stage cost decomposition of the
//! paper's runtime tables.

use std::collections::BTreeMap;
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

use crate::hist::Histogram;

/// A named collection of [`Histogram`]s, keyed by stage name.
///
/// Histograms are created on first use and live for the registry's
/// lifetime; callers hold an `Arc` to the histogram, so recording never
/// touches the registry lock.
pub struct Registry {
    inner: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Aggregate view of one stage: how often it ran and for how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTotal {
    /// Stage name (registry key).
    pub name: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Total recorded duration, microseconds.
    pub sum_us: u64,
}

impl Registry {
    /// Creates an empty registry (usable in `static` position).
    pub const fn new() -> Registry {
        Registry { inner: RwLock::new(BTreeMap::new()) }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<Histogram>>> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the histogram registered under `name`, creating it if
    /// this is the first use of the name.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.read().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_insert_with(|| Arc::new(Histogram::new())))
    }

    /// Returns the histogram under `name` without creating it.
    pub fn get(&self, name: &str) -> Option<Arc<Histogram>> {
        self.read().get(name).map(Arc::clone)
    }

    /// Count/sum totals for every registered stage, in name order.
    /// Stages that never recorded a span (created but unused) are
    /// included with zero counts.
    pub fn totals(&self) -> Vec<StageTotal> {
        self.read()
            .iter()
            .map(|(name, h)| StageTotal { name: name.clone(), count: h.count(), sum_us: h.sum() })
            .collect()
    }

    /// Renders every registered stage as one Prometheus histogram
    /// family named `metric`, labelled `{label_key="<stage>"}`. Returns
    /// an empty string when no stage has been registered, so callers
    /// can append this verbatim to an existing exposition.
    pub fn render_prometheus(&self, metric: &str, label_key: &str) -> String {
        let entries: Vec<(String, Arc<Histogram>)> =
            self.read().iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect();
        if entries.is_empty() {
            return String::new();
        }
        let mut out = format!("# TYPE {metric} histogram\n");
        for (name, h) in &entries {
            h.render_into(&mut out, metric, &[(label_key, name)]);
        }
        out
    }

    /// Drops every registered histogram (test isolation helper).
    pub fn clear(&self) {
        self.inner.write().unwrap_or_else(PoisonError::into_inner).clear();
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

static GLOBAL: Registry = Registry::new();

/// The process-global stage registry. The training pipeline records
/// into it; `/metrics` and the CLI read it.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// A drop-guard span timer: created with a stage name, records the
/// elapsed microseconds into that stage's histogram when dropped.
///
/// ```
/// {
///     let _stage = obs::Stage::enter("mdl_cuts");
///     // ... work ...
/// } // drop records elapsed µs into global()'s "mdl_cuts" histogram
/// ```
#[must_use = "a Stage records on drop; binding it to _ drops it immediately"]
pub struct Stage {
    hist: Arc<Histogram>,
    started: Instant,
}

impl Stage {
    /// Starts a span recording into the global registry.
    pub fn enter(name: &str) -> Stage {
        Stage::enter_in(global(), name)
    }

    /// Starts a span recording into an explicit registry (tests).
    pub fn enter_in(registry: &Registry, name: &str) -> Stage {
        Stage { hist: registry.histogram(name), started: Instant::now() }
    }
}

impl Drop for Stage {
    fn drop(&mut self) {
        let us = self.started.elapsed().as_micros();
        self.hist.record(u64::try_from(us).unwrap_or(u64::MAX));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_drop_records_into_named_histogram() {
        let reg = Registry::new();
        {
            let _s = Stage::enter_in(&reg, "unit_stage");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = reg.get("unit_stage").expect("histogram created");
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000, "recorded {} µs", h.sum());
    }

    #[test]
    fn totals_are_sorted_and_accumulate() {
        let reg = Registry::new();
        reg.histogram("b_stage").record(5);
        reg.histogram("a_stage").record(7);
        reg.histogram("a_stage").record(9);
        let totals = reg.totals();
        assert_eq!(
            totals,
            vec![
                StageTotal { name: "a_stage".into(), count: 2, sum_us: 16 },
                StageTotal { name: "b_stage".into(), count: 1, sum_us: 5 },
            ]
        );
    }

    #[test]
    fn histogram_identity_is_stable_per_name() {
        let reg = Registry::new();
        let a = reg.histogram("same");
        let b = reg.histogram("same");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn render_is_empty_without_stages_and_typed_with() {
        let reg = Registry::new();
        assert_eq!(reg.render_prometheus("m", "stage"), "");
        reg.histogram("compile").record(42);
        let out = reg.render_prometheus("bstc_stage_duration_us", "stage");
        assert!(out.starts_with("# TYPE bstc_stage_duration_us histogram\n"), "{out}");
        assert!(out.contains("bstc_stage_duration_us_count{stage=\"compile\"} 1"), "{out}");
        assert!(out.contains("bstc_stage_duration_us_sum{stage=\"compile\"} 42"), "{out}");
        assert!(out.contains("le=\"+Inf\""), "{out}");
    }

    #[test]
    fn global_registry_is_shared() {
        global().histogram("global_smoke").record(1);
        assert!(global().get("global_smoke").is_some());
        let totals = global().totals();
        assert!(totals.iter().any(|t| t.name == "global_smoke" && t.count >= 1));
    }
}
