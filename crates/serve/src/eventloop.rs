//! The event-driven connection core: one thread owns every socket.
//!
//! A level-triggered readiness loop ([`EventLoop::run`]) accepts
//! connections, feeds whatever bytes each socket has into that
//! connection's incremental [`RequestParser`], and hands only *fully
//! parsed* requests to the worker pool over the bounded queue. Workers
//! are pure compute — they never touch a socket — and deliver finished
//! responses back through [`Completions`] plus a self-pipe wake. The
//! loop then streams each response out with nonblocking writes,
//! switching to `transfer-encoding: chunked` framing for large bodies on
//! HTTP/1.1 connections.
//!
//! Because no thread ever blocks on client I/O, ten thousand idle
//! keep-alive connections cost ten thousand fds and parser states — not
//! ten thousand threads — and a slow-loris client is just a connection
//! whose per-request deadline (a [`TimerWheel`] entry armed at its first
//! byte) expires into a `408`.
//!
//! ## Admission and accounting
//!
//! The loop accepts up to `max_connections` concurrent clients; arrivals
//! beyond the cap are answered `503` + `retry-after` immediately and
//! never reach the parser. The PR-3 ledger `accepted == handled + shed`
//! is preserved: every accepted connection is counted exactly once —
//! *shed* if it was refused admission or its first request found the
//! dispatch queue full, *handled* otherwise (at first dispatch, or at
//! close for connections that never completed a request).
//!
//! ## Shutdown
//!
//! Graceful drain is a first-class loop state: the listener closes,
//! idle connections are dropped at once, in-flight requests finish and
//! their responses flush, and the loop exits when the last connection
//! closes or the drain deadline passes — whichever comes first.

use crate::chaos::{self, IoShape};
use crate::http::{encode_head, Framing, Request, RequestParser, Response};
use crate::server::{error_body, Shared};
use crate::sys::{self, Interest, Poller, WakeReceiver};
use crate::timer::TimerWheel;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Poller token of the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Poller token of the wake pipe's read end.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Read buffer per readiness event (stack-allocated, reused).
const READ_BUF: usize = 16 * 1024;
/// Payload bytes per chunk of a chunked response.
const RESPONSE_CHUNK: usize = 16 * 1024;
/// Over-cap connections beyond this many concurrent 503 writes are
/// dropped without a response (defends the loop itself during a flood).
const SHED_HEADROOM: usize = 128;
/// How long a closing connection lingers so the peer can read the final
/// response before the socket drops.
const LINGER: Duration = Duration::from_millis(500);
/// Poll timeout when no timer is armed.
const IDLE_WAIT: Duration = Duration::from_millis(500);
/// Timer wheel tick — deadlines are honored to this resolution.
const WHEEL_GRANULARITY: Duration = Duration::from_millis(20);
const WHEEL_SLOTS: usize = 64;

/// Event-loop knobs lifted from [`crate::server::ServerConfig`].
pub(crate) struct LoopConfig {
    /// Concurrent-connection cap; arrivals beyond it are shed with `503`.
    pub max_connections: usize,
    /// Per-request wall-clock budget (first byte → response flushed).
    pub request_timeout: Option<Duration>,
    /// Grace period for in-flight work at shutdown.
    pub drain_timeout: Duration,
    /// Response bodies larger than this stream chunked to HTTP/1.1
    /// clients; `0` disables chunked responses entirely.
    pub chunk_threshold: usize,
}

/// A fully parsed request handed to the worker pool.
pub(crate) struct WorkItem {
    /// Slab index of the owning connection.
    pub token: usize,
    /// Connection generation — stale completions are dropped on mismatch.
    pub gen: u64,
    pub request: Request,
    /// When the request's first byte arrived (latency accounting).
    pub started: Instant,
}

/// A finished response traveling back from a worker to the loop.
pub(crate) struct Done {
    pub token: usize,
    pub gen: u64,
    pub response: Response,
    pub keep_alive: bool,
}

/// Worker → loop completion mailbox: a mutexed vector plus the wake
/// pipe, so a push is two syscall-free moves and one pipe write.
pub(crate) struct Completions {
    items: Mutex<Vec<Done>>,
    waker: sys::Waker,
}

impl Completions {
    pub fn new(waker: sys::Waker) -> Completions {
        Completions { items: Mutex::new(Vec::new()), waker }
    }

    /// Deliver one finished response and nudge the loop.
    pub fn push(&self, done: Done) {
        self.items.lock().unwrap_or_else(PoisonError::into_inner).push(done);
        self.waker.wake();
    }

    /// Nudge the loop without a completion (shutdown notification).
    pub fn wake(&self) {
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Done> {
        std::mem::take(&mut *self.items.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

enum Progress {
    Done,
    Blocked,
}

#[derive(Clone, Copy)]
enum Seg {
    Head,
    Frame,
    Body,
}

/// Incremental response writer: resumes from any byte offset after a
/// short write, and frames large bodies as chunks on the fly.
struct Writer {
    head: Vec<u8>,
    head_pos: usize,
    body: Vec<u8>,
    body_pos: usize,
    chunked: bool,
    /// Current chunk-size frame (`"\r\n{len:x}\r\n"` or the terminator).
    frame: Vec<u8>,
    frame_pos: usize,
    /// End of the current chunk's payload within `body`.
    chunk_end: usize,
    first_chunk: bool,
    terminated: bool,
    keep_alive: bool,
}

impl Writer {
    fn new(response: Response, keep_alive: bool, chunked: bool) -> Writer {
        let framing = if chunked { Framing::Chunked } else { Framing::Length(response.body.len()) };
        let head = encode_head(&response, keep_alive, framing);
        Writer {
            head,
            head_pos: 0,
            body: response.body,
            body_pos: 0,
            chunked,
            frame: Vec::new(),
            frame_pos: 0,
            chunk_end: 0,
            first_chunk: true,
            terminated: false,
            keep_alive,
        }
    }

    /// Write as much as the socket accepts right now.
    fn write_some(&mut self, mut stream: &TcpStream) -> io::Result<Progress> {
        loop {
            let (seg, start, end) = if self.head_pos < self.head.len() {
                (Seg::Head, self.head_pos, self.head.len())
            } else if !self.chunked {
                if self.body_pos >= self.body.len() {
                    return Ok(Progress::Done);
                }
                (Seg::Body, self.body_pos, self.body.len())
            } else if self.frame_pos < self.frame.len() {
                (Seg::Frame, self.frame_pos, self.frame.len())
            } else if self.body_pos < self.chunk_end {
                (Seg::Body, self.body_pos, self.chunk_end)
            } else if self.terminated {
                return Ok(Progress::Done);
            } else {
                self.next_frame();
                continue;
            };
            let buf = match seg {
                Seg::Head => &self.head[start..end],
                Seg::Frame => &self.frame[start..end],
                Seg::Body => &self.body[start..end],
            };
            let buf = match chaos::io_shape("event_loop") {
                IoShape::Normal => buf,
                IoShape::Short => &buf[..1],
                IoShape::Eagain => return Ok(Progress::Blocked),
                IoShape::Error => {
                    return Err(io::Error::other("chaos: injected write failure"));
                }
            };
            match stream.write(buf) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => match seg {
                    Seg::Head => self.head_pos += n,
                    Seg::Frame => self.frame_pos += n,
                    Seg::Body => self.body_pos += n,
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(Progress::Blocked),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Generate the next chunk-size frame (or the terminator). Every
    /// frame after the first leads with the CRLF that closes the
    /// previous chunk's payload.
    fn next_frame(&mut self) {
        let remaining = self.body.len() - self.body_pos;
        if remaining == 0 {
            self.frame =
                if self.first_chunk { b"0\r\n\r\n".to_vec() } else { b"\r\n0\r\n\r\n".to_vec() };
            self.terminated = true;
        } else {
            let n = remaining.min(RESPONSE_CHUNK);
            self.frame = if self.first_chunk {
                format!("{n:x}\r\n").into_bytes()
            } else {
                format!("\r\n{n:x}\r\n").into_bytes()
            };
            self.chunk_end = self.body_pos + n;
            self.first_chunk = false;
        }
        self.frame_pos = 0;
    }
}

enum ConnState {
    /// Feeding socket bytes into the parser.
    Reading,
    /// A request is with the worker pool; the loop waits for its [`Done`].
    Dispatched,
    /// Streaming a response out.
    Writing(Writer),
    /// Write half shut; discarding input until EOF or the linger timer.
    Draining,
}

struct Conn {
    stream: TcpStream,
    /// Bumped per accept into this slot; guards against stale
    /// completions and timers after slot reuse.
    gen: u64,
    state: ConnState,
    parser: RequestParser,
    /// Pipelined bytes beyond the request currently in flight.
    pending: Vec<u8>,
    interest: Interest,
    registered: bool,
    /// Generation of this connection's armed timer (0 = disarmed).
    timer_gen: u64,
    /// When the in-progress request's first byte arrived.
    started_at: Option<Instant>,
    /// Whether this connection has been counted as handled or shed.
    accounted: bool,
    /// Whether it counts against `max_connections` (503-shed ones don't).
    admitted: bool,
    /// Last request's protocol version (chunked responses need 1.1).
    http11: bool,
    closing: bool,
    /// Close after the current write even if the client asked keep-alive.
    force_linger: bool,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64, admitted: bool) -> Conn {
        Conn {
            stream,
            gen,
            state: ConnState::Reading,
            parser: RequestParser::new(),
            pending: Vec::new(),
            interest: Interest::NONE,
            registered: false,
            timer_gen: 0,
            started_at: None,
            accounted: false,
            admitted,
            http11: true,
            closing: false,
            force_linger: false,
        }
    }
}

/// The connection core. Owns the listener, every client socket, the
/// poller, and the timer wheel; runs on its own thread.
pub(crate) struct EventLoop {
    poller: Poller,
    /// Dropped (closed) when drain begins.
    listener: Option<TcpListener>,
    wake_rx: WakeReceiver,
    shared: Arc<Shared>,
    config: LoopConfig,
    /// Connection slab indexed by poller token.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Live connections, admitted or shedding.
    open: usize,
    /// Live connections that count against `max_connections`.
    open_admitted: usize,
    wheel: TimerWheel,
    next_gen: u64,
    next_timer_gen: u64,
    drain_deadline: Option<Instant>,
}

impl EventLoop {
    pub fn new(
        listener: TcpListener,
        wake_rx: WakeReceiver,
        shared: Arc<Shared>,
        config: LoopConfig,
    ) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)?;
        poller.register(wake_rx.fd(), WAKE_TOKEN, Interest::READ)?;
        Ok(EventLoop {
            poller,
            listener: Some(listener),
            wake_rx,
            shared,
            config,
            conns: Vec::new(),
            free: Vec::new(),
            open: 0,
            open_admitted: 0,
            wheel: TimerWheel::new(WHEEL_GRANULARITY, WHEEL_SLOTS),
            next_gen: 0,
            next_timer_gen: 0,
            drain_deadline: None,
        })
    }

    pub fn run(&mut self) {
        let mut events: Vec<sys::Event> = Vec::new();
        loop {
            if self.drain_deadline.is_none() && self.shared.shutting_down.load(Ordering::SeqCst) {
                self.begin_drain();
            }
            if let Some(deadline) = self.drain_deadline {
                if self.open == 0 {
                    break;
                }
                if Instant::now() >= deadline {
                    self.close_all();
                    break;
                }
            }
            let mut timeout = self.wheel.next_wakeup().unwrap_or(IDLE_WAIT);
            if self.drain_deadline.is_some() {
                timeout = timeout.min(Duration::from_millis(50));
            }
            if let Err(e) = self.poller.wait(&mut events, Some(timeout)) {
                obs::log::warn("event_loop_poll_error", &[("error", e.to_string().as_str())]);
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            for &ev in &events {
                match ev.token {
                    LISTENER_TOKEN => self.on_accept(),
                    WAKE_TOKEN => self.wake_rx.drain(),
                    t => self.on_conn_event(t as usize, ev),
                }
            }
            self.apply_completions();
            self.fire_timers();
        }
        self.shared.metrics.set_conns_open(0);
    }

    // -- admission ----------------------------------------------------------

    fn on_accept(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    self.shared.metrics.record_conn_accepted();
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        self.shared.metrics.record_conn_handled();
                        continue;
                    }
                    if self.open_admitted >= self.config.max_connections {
                        self.shared.metrics.record_conn_shed();
                        self.shed_connection(stream);
                    } else {
                        self.admit(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        match self.free.pop() {
            Some(t) => t,
            None => {
                self.conns.push(None);
                self.conns.len() - 1
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let t = self.alloc_slot();
        self.next_gen += 1;
        let conn = Conn::new(stream, self.next_gen, true);
        self.open += 1;
        self.open_admitted += 1;
        self.shared.metrics.set_conns_open(self.open as u64);
        self.settle(t, conn);
    }

    /// Answer an over-cap arrival with an immediate `503` and close. The
    /// connection is already accounted (shed); it occupies a slot only
    /// for the duration of the write.
    fn shed_connection(&mut self, stream: TcpStream) {
        if self.open - self.open_admitted >= SHED_HEADROOM {
            // A flood of over-cap arrivals must not pile up 503 writers:
            // past the headroom, drop without a response.
            return;
        }
        let t = self.alloc_slot();
        self.next_gen += 1;
        let mut conn = Conn::new(stream, self.next_gen, false);
        conn.accounted = true;
        conn.force_linger = true;
        self.open += 1;
        self.shared.metrics.set_conns_open(self.open as u64);
        let response = Response::json(
            503,
            error_body("overloaded", "connection limit reached; retry shortly"),
        )
        .with_header("retry-after", "1");
        self.respond(&mut conn, t, response, false);
        self.settle(t, conn);
    }

    // -- event dispatch -----------------------------------------------------

    fn on_conn_event(&mut self, t: usize, ev: sys::Event) {
        let Some(mut conn) = self.conns.get_mut(t).and_then(Option::take) else {
            return;
        };
        match conn.state {
            ConnState::Reading => {
                if ev.readable || ev.hangup {
                    self.read_ready(&mut conn, t);
                }
            }
            ConnState::Dispatched => {
                if ev.hangup && conn.registered {
                    // Level-triggered RDHUP would refire every wait while
                    // the worker computes; drop the registration and
                    // re-register when the response is ready.
                    let _ = self.poller.deregister(conn.stream.as_raw_fd());
                    conn.registered = false;
                }
            }
            ConnState::Writing(_) => {
                if ev.writable || ev.hangup {
                    self.flush(&mut conn, t);
                }
            }
            ConnState::Draining => {
                if ev.readable || ev.hangup {
                    self.drain_ready(&mut conn);
                }
            }
        }
        self.settle(t, conn);
    }

    // -- reading ------------------------------------------------------------

    fn read_ready(&mut self, conn: &mut Conn, t: usize) {
        let mut buf = [0u8; READ_BUF];
        loop {
            if conn.closing || !matches!(conn.state, ConnState::Reading) {
                return;
            }
            let cap = match chaos::io_shape("event_loop") {
                IoShape::Normal => buf.len(),
                IoShape::Short => 1,
                IoShape::Eagain => return,
                IoShape::Error => {
                    conn.closing = true;
                    return;
                }
            };
            match (&conn.stream).read(&mut buf[..cap]) {
                Ok(0) => {
                    self.on_eof(conn, t);
                    return;
                }
                Ok(n) => {
                    let data = buf[..n].to_vec();
                    self.ingest(conn, t, &data);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.closing = true;
                    return;
                }
            }
        }
    }

    /// Feed bytes to the connection's parser, dispatching at most one
    /// request (leftovers wait in `pending` until its response is done).
    fn ingest(&mut self, conn: &mut Conn, t: usize, data: &[u8]) {
        let mut off = 0;
        while off < data.len() {
            if conn.closing || !matches!(conn.state, ConnState::Reading) {
                conn.pending.extend_from_slice(&data[off..]);
                return;
            }
            if !conn.parser.started() && conn.started_at.is_none() {
                // First byte of a request starts its wall-clock budget —
                // this is the slow-loris deadline.
                conn.started_at = Some(Instant::now());
                if let Some(rt) = self.config.request_timeout {
                    self.arm_timer(conn, t, Instant::now() + rt);
                }
            }
            match conn.parser.advance(&data[off..]) {
                Ok((n, None)) => off += n,
                Ok((n, Some(request))) => {
                    off += n;
                    conn.http11 = request.http11;
                    self.dispatch(conn, t, request);
                }
                Err(pe) => {
                    let status = pe.status();
                    let (family, code) = match status {
                        501 => ("unsupported", "not_implemented"),
                        413 => ("malformed", "payload_too_large"),
                        _ => ("malformed", "bad_request"),
                    };
                    if status == 501 {
                        obs::log::warn("unsupported_request", &[("detail", pe.detail())]);
                    }
                    self.shared.metrics.record_request(family, status);
                    self.disarm(conn);
                    conn.pending.clear();
                    let response = Response::json(status, error_body(code, pe.detail()));
                    self.respond(conn, t, response, false);
                    return;
                }
            }
        }
    }

    fn dispatch(&mut self, conn: &mut Conn, t: usize, request: Request) {
        let started = conn.started_at.take().unwrap_or_else(Instant::now);
        self.disarm(conn);
        let item = WorkItem { token: t, gen: conn.gen, request, started };
        match self.shared.queue.push(item) {
            Ok(()) => {
                if !conn.accounted {
                    conn.accounted = true;
                    self.shared.metrics.record_conn_handled();
                }
                conn.state = ConnState::Dispatched;
            }
            Err(_) => {
                // Dispatch queue full: shed exactly like the PR-3
                // acceptor did, with an immediate 503 + retry-after.
                if !conn.accounted {
                    conn.accounted = true;
                    self.shared.metrics.record_conn_shed();
                }
                conn.force_linger = true;
                conn.pending.clear();
                let response = Response::json(
                    503,
                    error_body("overloaded", "server is at capacity; retry shortly"),
                )
                .with_header("retry-after", "1");
                self.respond(conn, t, response, false);
            }
        }
    }

    fn on_eof(&mut self, conn: &mut Conn, t: usize) {
        if conn.parser.started() {
            // The peer quit mid-request: answer the half-open socket
            // with a 400 (its read half may still be open).
            self.shared.metrics.record_request("malformed", 400);
            self.disarm(conn);
            let response =
                Response::json(400, error_body("bad_request", "connection closed mid-request"));
            self.respond(conn, t, response, false);
        } else {
            conn.closing = true;
        }
    }

    fn drain_ready(&mut self, conn: &mut Conn) {
        let mut buf = [0u8; 1024];
        loop {
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    conn.closing = true;
                    return;
                }
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.closing = true;
                    return;
                }
            }
        }
    }

    // -- writing ------------------------------------------------------------

    /// Start streaming `response` out, chunked when it is large and the
    /// client speaks HTTP/1.1.
    fn respond(&mut self, conn: &mut Conn, t: usize, response: Response, keep_alive: bool) {
        let chunked = self.config.chunk_threshold > 0
            && response.body.len() > self.config.chunk_threshold
            && conn.http11;
        let keep = keep_alive && !conn.force_linger;
        conn.state = ConnState::Writing(Writer::new(response, keep, chunked));
        let stall = self.config.request_timeout.unwrap_or(Duration::from_secs(10));
        self.arm_timer(conn, t, Instant::now() + stall);
        self.flush(conn, t);
    }

    fn flush(&mut self, conn: &mut Conn, t: usize) {
        let ConnState::Writing(ref mut writer) = conn.state else {
            return;
        };
        match writer.write_some(&conn.stream) {
            Ok(Progress::Done) => {
                let keep = writer.keep_alive;
                self.finish_response(conn, t, keep);
            }
            Ok(Progress::Blocked) => {}
            Err(_) => {
                self.disarm(conn);
                conn.closing = true;
            }
        }
    }

    fn finish_response(&mut self, conn: &mut Conn, t: usize, keep_alive: bool) {
        self.disarm(conn);
        if keep_alive {
            conn.state = ConnState::Reading;
            if !conn.pending.is_empty() {
                let pending = std::mem::take(&mut conn.pending);
                self.ingest(conn, t, &pending);
            }
        } else if conn.force_linger || conn.parser.started() || !conn.pending.is_empty() {
            // Half-close and linger so the peer reads the response
            // before the socket drops (a hard close could RST it away).
            let _ = conn.stream.shutdown(Shutdown::Write);
            conn.state = ConnState::Draining;
            conn.parser = RequestParser::new();
            conn.pending.clear();
            self.arm_timer(conn, t, Instant::now() + LINGER);
        } else {
            conn.closing = true;
        }
    }

    // -- completions and timers ---------------------------------------------

    fn apply_completions(&mut self) {
        for done in self.shared.completions.drain() {
            let t = done.token;
            let Some(mut conn) = self.conns.get_mut(t).and_then(Option::take) else {
                continue;
            };
            if conn.gen != done.gen || !matches!(conn.state, ConnState::Dispatched) {
                self.conns[t] = Some(conn);
                continue;
            }
            // Same chaos site the blocking server exposed before its
            // response write; keeps injected write-failure tests honest.
            if chaos::io_point("write").is_err() {
                conn.closing = true;
            } else {
                self.respond(&mut conn, t, done.response, done.keep_alive);
            }
            self.settle(t, conn);
        }
    }

    fn fire_timers(&mut self) {
        let expired = self.wheel.expired(Instant::now());
        for (token, tgen) in expired {
            let t = token as usize;
            let Some(mut conn) = self.conns.get_mut(t).and_then(Option::take) else {
                continue;
            };
            if conn.timer_gen != tgen {
                // Stale entry from a disarmed or re-armed deadline.
                self.conns[t] = Some(conn);
                continue;
            }
            conn.timer_gen = 0;
            match conn.state {
                ConnState::Reading => {
                    if conn.parser.started() {
                        self.shared.metrics.record_request("timeout", 408);
                        conn.pending.clear();
                        let response = Response::json(
                            408,
                            error_body("timeout", "request not received in time"),
                        );
                        self.respond(&mut conn, t, response, false);
                    } else {
                        conn.closing = true;
                    }
                }
                ConnState::Writing(_) | ConnState::Draining => conn.closing = true,
                ConnState::Dispatched => {}
            }
            self.settle(t, conn);
        }
    }

    fn arm_timer(&mut self, conn: &mut Conn, t: usize, deadline: Instant) {
        self.next_timer_gen += 1;
        conn.timer_gen = self.next_timer_gen;
        self.wheel.insert(t as u64, conn.timer_gen, deadline);
    }

    fn disarm(&mut self, conn: &mut Conn) {
        conn.timer_gen = 0;
        conn.started_at = None;
    }

    // -- lifecycle ----------------------------------------------------------

    /// Re-apply poller interest for the connection's state and return it
    /// to the slab — or close it out if it is done.
    fn settle(&mut self, t: usize, mut conn: Conn) {
        if conn.closing {
            self.finalize_close(t, conn);
            return;
        }
        let want = match conn.state {
            ConnState::Reading | ConnState::Draining => Interest::READ,
            ConnState::Writing(_) => Interest::WRITE,
            ConnState::Dispatched => Interest::NONE,
        };
        let fd = conn.stream.as_raw_fd();
        if !conn.registered {
            if matches!(conn.state, ConnState::Dispatched) {
                // Deregistered on hangup while the worker computes;
                // re-registers when the completion arrives.
            } else if self.poller.register(fd, t as u64, want).is_ok() {
                conn.registered = true;
                conn.interest = want;
            } else {
                conn.closing = true;
                self.finalize_close(t, conn);
                return;
            }
        } else if want != conn.interest {
            if self.poller.modify(fd, t as u64, want).is_ok() {
                conn.interest = want;
            } else {
                conn.closing = true;
                self.finalize_close(t, conn);
                return;
            }
        }
        self.conns[t] = Some(conn);
    }

    fn finalize_close(&mut self, t: usize, conn: Conn) {
        if conn.registered {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        if !conn.accounted {
            // Never dispatched, never shed: an idle or errored-out
            // connection still balances the ledger as handled.
            self.shared.metrics.record_conn_handled();
        }
        self.open -= 1;
        if conn.admitted {
            self.open_admitted -= 1;
        }
        self.free.push(t);
        self.shared.metrics.set_conns_open(self.open as u64);
    }

    fn begin_drain(&mut self) {
        self.drain_deadline = Some(Instant::now() + self.config.drain_timeout);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        // Idle connections have nothing in flight: close them now.
        for t in 0..self.conns.len() {
            let Some(conn) = &self.conns[t] else { continue };
            let idle = matches!(conn.state, ConnState::Reading)
                && !conn.parser.started()
                && conn.pending.is_empty();
            if idle {
                let conn = self.conns[t].take().expect("checked above");
                self.finalize_close(t, conn);
            }
        }
        obs::log::info("drain_started", &[("open_connections", self.open.to_string().as_str())]);
    }

    fn close_all(&mut self) {
        for t in 0..self.conns.len() {
            if let Some(conn) = self.conns[t].take() {
                self.finalize_close(t, conn);
            }
        }
    }
}
