//! Shadow / canary traffic: mirror a deterministic fraction of live
//! `/classify` requests to a candidate model and compare server-side.
//!
//! ## Why on the serving path
//!
//! Offline cross-validation ranks candidate models on historical data;
//! shadowing ranks them on the *actual* traffic distribution, which for
//! gene-expression classifiers is exactly where quantization and
//! cut-point drift bite. The primary's response is never delayed: the
//! worker answers the client first and only then enqueues a
//! [`ShadowJob`] on a bounded queue; a dedicated shadow thread replays
//! the raw rows through the candidate bundle (its own discretizer, its
//! own compiled form) and compares predicted classes row by row.
//!
//! ## Deterministic sampling
//!
//! Whether request *n* to a shadowed model is mirrored is a pure
//! function of `(seed, n)`: a splitmix64 draw over a per-model request
//! counter, compared against the configured percentage in basis points.
//! Tests pin the seed and know exactly which requests shadow —
//! `percent: 100.0` mirrors everything, `0.0` nothing, and any rate in
//! between reproduces byte-for-byte across runs.
//!
//! ## Accounting
//!
//! * `bstc_shadow_requests_total` — mirrored requests executed;
//! * `bstc_shadow_disagreements_total{model}` — requests where the
//!   candidate's predicted class differed from the primary's on at
//!   least one row;
//! * `bstc_shadow_latency_us` — candidate classification latency
//!   histogram (compare against `bstc_classify_latency_us`);
//! * `bstc_shadow_dropped_total` — jobs shed because the shadow queue
//!   was full (the primary path never blocks on shadowing).

use crate::bundle::ModelBundle;
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, Pop};
use bstc::Scratch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One `--shadow` directive: mirror `percent`% of requests routed to
/// `primary` onto the registered model `candidate`.
#[derive(Clone, Debug, PartialEq)]
pub struct ShadowSpec {
    /// Name of the live model whose traffic is mirrored.
    pub primary: String,
    /// Name of the registered candidate model that replays it.
    pub candidate: String,
    /// Percentage of requests to mirror, `0.0..=100.0`.
    pub percent: f64,
}

impl ShadowSpec {
    /// Parses `primary=candidate:percent` (percent optional, default
    /// 100): `tumor=tumor-next:10`.
    ///
    /// # Errors
    /// Returns a human-readable description of the malformed directive.
    pub fn parse(text: &str) -> Result<ShadowSpec, String> {
        let (primary, rest) = text
            .split_once('=')
            .ok_or_else(|| format!("'{text}' is not of the form primary=candidate[:percent]"))?;
        let (candidate, percent) = match rest.rsplit_once(':') {
            Some((candidate, pct)) => {
                let percent: f64 =
                    pct.parse().map_err(|_| format!("'{pct}' is not a percentage in '{text}'"))?;
                (candidate, percent)
            }
            None => (rest, 100.0),
        };
        if primary.is_empty() || candidate.is_empty() {
            return Err(format!("empty model name in '{text}'"));
        }
        if !(0.0..=100.0).contains(&percent) {
            return Err(format!("percentage {percent} out of [0, 100] in '{text}'"));
        }
        Ok(ShadowSpec { primary: primary.to_string(), candidate: candidate.to_string(), percent })
    }
}

/// The per-primary sampling state: candidate handle, rate, and the
/// request counter the deterministic draw runs over.
#[derive(Debug)]
pub struct ShadowRoute {
    spec: ShadowSpec,
    /// Mirror threshold in basis points (percent × 100), so integer
    /// comparison against a `% 10_000` draw is exact.
    threshold: u64,
    seed: u64,
    requests: AtomicU64,
}

impl ShadowRoute {
    /// Builds the sampling state for one spec.
    pub fn new(spec: ShadowSpec, seed: u64) -> ShadowRoute {
        let threshold = (spec.percent * 100.0).round() as u64;
        ShadowRoute { spec, threshold, seed, requests: AtomicU64::new(0) }
    }

    /// The directive this route implements.
    pub fn spec(&self) -> &ShadowSpec {
        &self.spec
    }

    /// Deterministically decides whether this (next) request mirrors:
    /// request `n`'s draw is `splitmix64(seed ⊕ n) mod 10 000 <
    /// percent·100`, independent of thread interleaving given the
    /// arrival order.
    pub fn sample(&self) -> bool {
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        if self.threshold >= 10_000 {
            return true;
        }
        if self.threshold == 0 {
            return false;
        }
        splitmix64(self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 10_000 < self.threshold
    }
}

/// SplitMix64: a full-period 64-bit mixer; adjacent inputs produce
/// statistically independent outputs, which is what turns a sequential
/// request counter into an unbiased Bernoulli stream.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One mirrored request, queued for asynchronous candidate replay.
pub struct ShadowJob {
    /// The primary model's name (labels the disagreement counter).
    pub model: String,
    /// The candidate bundle to replay against.
    pub candidate: Arc<ModelBundle>,
    /// The raw rows of the original request (the candidate re-binarizes
    /// with its *own* discretizer — that is the point of the exercise).
    pub rows: Vec<Vec<f64>>,
    /// The classes the primary predicted, one per row.
    pub primary_classes: Vec<usize>,
}

/// Handle for enqueueing shadow jobs; owns the executor's queue.
pub struct ShadowExecutor {
    queue: Arc<BoundedQueue<ShadowJob>>,
    metrics: Arc<Metrics>,
}

/// Cadence at which the idle shadow thread re-checks for work/shutdown.
const IDLE_POLL: Duration = Duration::from_millis(250);

impl ShadowExecutor {
    /// Spawns the shadow replay thread. Join the returned handle after
    /// [`ShadowExecutor::close`] during shutdown.
    pub fn start(queue_depth: usize, metrics: Arc<Metrics>) -> (ShadowExecutor, JoinHandle<()>) {
        let queue = Arc::new(BoundedQueue::new(queue_depth.max(1)));
        let executor = ShadowExecutor { queue: Arc::clone(&queue), metrics: Arc::clone(&metrics) };
        let thread = std::thread::Builder::new()
            .name("bstc-serve-shadow".into())
            .spawn(move || run(&queue, &metrics))
            .expect("spawn shadow executor");
        (executor, thread)
    }

    /// Enqueues one mirrored request. A full queue drops the job (and
    /// ticks `bstc_shadow_dropped_total`) — shadowing is best-effort
    /// and must never apply backpressure to the serving path.
    pub fn enqueue(&self, job: ShadowJob) {
        if self.queue.push(job).is_err() {
            self.metrics.record_shadow_dropped();
        }
    }

    /// Closes the queue: enqueued jobs still replay, then the thread
    /// exits.
    pub fn close(&self) {
        self.queue.close();
    }
}

/// The shadow thread: replay each mirrored request against its
/// candidate, compare classes, account the result.
fn run(queue: &BoundedQueue<ShadowJob>, metrics: &Metrics) {
    let mut scratch = Scratch::new();
    loop {
        match queue.pop(IDLE_POLL) {
            Pop::Item(job) => replay(&job, &mut scratch, metrics),
            Pop::Empty => continue,
            Pop::Closed => break,
        }
    }
}

/// Replays one job and records shadow metrics. A row the candidate
/// cannot classify (mismatched gene universe) counts as a disagreement:
/// a candidate that cannot even accept the primary's traffic disagrees
/// with it rather more fundamentally than by label.
fn replay(job: &ShadowJob, scratch: &mut Scratch, metrics: &Metrics) {
    let started = Instant::now();
    let mut disagreed = false;
    for (row, &primary_class) in job.rows.iter().zip(&job.primary_classes) {
        match job.candidate.classify_row_with(row, scratch) {
            Ok(prediction) => disagreed |= prediction.class != primary_class,
            Err(_) => disagreed = true,
        }
    }
    let latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    metrics.record_shadow_request(latency_us);
    if disagreed {
        metrics.record_shadow_disagreement(&job.model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::Provenance;
    use microarray::ContinuousDataset;

    fn toy(flip: bool) -> ContinuousDataset {
        let labels = if flip { vec![1, 1, 1, 1, 0, 0, 0, 0] } else { vec![0, 0, 0, 0, 1, 1, 1, 1] };
        ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 5.0],
                vec![1.2, 3.0],
                vec![0.8, 5.5],
                vec![1.1, 2.9],
                vec![9.0, 5.1],
                vec![9.2, 3.2],
                vec![8.9, 5.2],
                vec![9.1, 3.1],
            ],
            labels,
        )
        .unwrap()
    }

    #[test]
    fn spec_parses_and_rejects() {
        assert_eq!(
            ShadowSpec::parse("tumor=tumor-next:10").unwrap(),
            ShadowSpec { primary: "tumor".into(), candidate: "tumor-next".into(), percent: 10.0 }
        );
        assert_eq!(ShadowSpec::parse("a=b").unwrap().percent, 100.0);
        assert_eq!(ShadowSpec::parse("a=b:0.5").unwrap().percent, 0.5);
        for bad in ["nope", "=b:10", "a=:10", "a=b:pct", "a=b:101", "a=b:-1"] {
            assert!(ShadowSpec::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_rate_accurate() {
        let spec = ShadowSpec { primary: "a".into(), candidate: "b".into(), percent: 10.0 };
        let draws = |seed: u64| -> Vec<bool> {
            let route = ShadowRoute::new(spec.clone(), seed);
            (0..4000).map(|_| route.sample()).collect()
        };
        let a = draws(42);
        let b = draws(42);
        assert_eq!(a, b, "same seed, same mirror pattern");
        let rate = a.iter().filter(|&&m| m).count() as f64 / 4000.0;
        assert!((0.07..0.13).contains(&rate), "rate {rate} far from 10%");
        let c = draws(43);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn edge_rates_are_exact() {
        let all = ShadowRoute::new(
            ShadowSpec { primary: "a".into(), candidate: "b".into(), percent: 100.0 },
            7,
        );
        let none = ShadowRoute::new(
            ShadowSpec { primary: "a".into(), candidate: "b".into(), percent: 0.0 },
            7,
        );
        for _ in 0..200 {
            assert!(all.sample());
            assert!(!none.sample());
        }
    }

    #[test]
    fn replay_counts_disagreements_between_label_flipped_models() {
        let agree =
            Arc::new(ModelBundle::train(&toy(false), Provenance::new("same", None)).unwrap());
        let flipped =
            Arc::new(ModelBundle::train(&toy(true), Provenance::new("flipped", None)).unwrap());
        let metrics = Arc::new(Metrics::new());
        let (executor, thread) = ShadowExecutor::start(64, Arc::clone(&metrics));
        let rows = vec![vec![1.0, 4.0], vec![9.0, 4.0]];
        let primary: Vec<usize> =
            rows.iter().map(|r| agree.classify_row(r).unwrap().class).collect();
        // Candidate == primary: no disagreement.
        executor.enqueue(ShadowJob {
            model: "m".into(),
            candidate: Arc::clone(&agree),
            rows: rows.clone(),
            primary_classes: primary.clone(),
        });
        // Label-flipped candidate: guaranteed disagreement on every row.
        executor.enqueue(ShadowJob {
            model: "m".into(),
            candidate: flipped,
            rows,
            primary_classes: primary,
        });
        executor.close();
        thread.join().unwrap();
        let snap = metrics.snapshot();
        assert_eq!(snap.shadow_requests, 2);
        assert_eq!(snap.shadow_disagreements, 1);
        assert_eq!(snap.shadow_dropped, 0);
        let text = metrics.render();
        assert!(text.contains("bstc_shadow_disagreements_total{model=\"m\"} 1"), "{text}");
    }

    #[test]
    fn full_queue_drops_instead_of_blocking() {
        let agree =
            Arc::new(ModelBundle::train(&toy(false), Provenance::new("same", None)).unwrap());
        let metrics = Arc::new(Metrics::new());
        // Depth-1 queue that is never drained: close first so pushes fail.
        let (executor, thread) = ShadowExecutor::start(1, Arc::clone(&metrics));
        executor.close();
        thread.join().unwrap();
        executor.enqueue(ShadowJob {
            model: "m".into(),
            candidate: agree,
            rows: vec![vec![1.0, 4.0]],
            primary_classes: vec![0],
        });
        assert_eq!(metrics.snapshot().shadow_dropped, 1);
    }
}
