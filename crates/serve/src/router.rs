//! Path routing for the registry API: parses a request's method + path
//! into a typed [`Route`] the server dispatches on.
//!
//! The route table:
//!
//! | route                              | meaning                                |
//! |------------------------------------|----------------------------------------|
//! | `GET /health`                      | liveness probe                         |
//! | `GET /model`                       | default model's metadata (legacy)      |
//! | `GET /metrics`                     | Prometheus-style exposition            |
//! | `POST /classify`                   | classify against the default model     |
//! | `POST /reload`                     | swap the default model (legacy)        |
//! | `GET /v1/models`                   | list every registered model            |
//! | `GET /v1/models/{name}`            | one model's metadata                   |
//! | `POST /v1/models/{name}/classify`  | classify against a named model         |
//! | `POST /v1/models/{name}/reload`    | atomic version swap of a named model   |
//!
//! The legacy unnamed routes are aliases: `/classify` *is*
//! `/v1/models/{default}/classify`. Parsing is purely syntactic — the
//! name segment is validated against the model-name grammar (the same
//! rule the registry enforces at load time, which is what bounds the
//! `{model}` metric label cardinality), but whether the model *exists*
//! is the registry's question, answered at dispatch with a structured
//! 404.

use crate::registry::valid_model_name;

/// A parsed route. Name segments borrow from the request path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Route<'a> {
    /// `GET /health`
    Health,
    /// `GET /model` — default model's metadata.
    Model,
    /// `GET /metrics`
    Metrics,
    /// `POST /classify` or `POST /v1/models/{name}/classify`; `None`
    /// means the default model.
    Classify(Option<&'a str>),
    /// `POST /reload` or `POST /v1/models/{name}/reload`; `None` means
    /// the default model.
    Reload(Option<&'a str>),
    /// `GET /v1/models` — list registered models.
    Models,
    /// `GET /v1/models/{name}` — one model's metadata.
    ModelMeta(&'a str),
    /// The path names a known endpoint but the method is wrong (405).
    MethodNotAllowed,
    /// The path exists under `/v1/models/` but its name segment is not
    /// a valid model name (400 with a structured error, not a 404: the
    /// request is syntactically wrong, not merely unknown).
    BadName(&'a str),
    /// Nothing lives at this path (404).
    NotFound,
}

/// Parses one request into a [`Route`] borrowing from `path`.
pub fn route_of<'a>(method: &str, path: &'a str) -> Route<'a> {
    match (method, path) {
        ("GET", "/health") => return Route::Health,
        ("GET", "/model") => return Route::Model,
        ("GET", "/metrics") => return Route::Metrics,
        ("POST", "/classify") => return Route::Classify(None),
        ("POST", "/reload") => return Route::Reload(None),
        ("GET", "/v1/models") | ("GET", "/v1/models/") => return Route::Models,
        (_, "/health" | "/model" | "/metrics" | "/classify" | "/reload" | "/v1/models") => {
            return Route::MethodNotAllowed
        }
        _ => {}
    }
    let Some(rest) = path.strip_prefix("/v1/models/") else {
        return Route::NotFound;
    };
    let (name, action) = match rest.split_once('/') {
        Some((name, action)) => (name, Some(action)),
        None => (rest, None),
    };
    if !valid_model_name(name) {
        return Route::BadName(name);
    }
    match (method, action) {
        ("GET", None) => Route::ModelMeta(name),
        ("POST", Some("classify")) => Route::Classify(Some(name)),
        ("POST", Some("reload")) => Route::Reload(Some(name)),
        (_, None | Some("classify") | Some("reload")) => Route::MethodNotAllowed,
        _ => Route::NotFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_routes_parse() {
        assert_eq!(route_of("GET", "/health"), Route::Health);
        assert_eq!(route_of("GET", "/model"), Route::Model);
        assert_eq!(route_of("GET", "/metrics"), Route::Metrics);
        assert_eq!(route_of("POST", "/classify"), Route::Classify(None));
        assert_eq!(route_of("POST", "/reload"), Route::Reload(None));
    }

    #[test]
    fn registry_routes_parse() {
        assert_eq!(route_of("GET", "/v1/models"), Route::Models);
        assert_eq!(route_of("GET", "/v1/models/"), Route::Models);
        assert_eq!(route_of("GET", "/v1/models/tumor"), Route::ModelMeta("tumor"));
        assert_eq!(route_of("POST", "/v1/models/tumor/classify"), Route::Classify(Some("tumor")));
        assert_eq!(route_of("POST", "/v1/models/m.2/reload"), Route::Reload(Some("m.2")));
    }

    #[test]
    fn wrong_methods_are_405_not_404() {
        assert_eq!(route_of("DELETE", "/classify"), Route::MethodNotAllowed);
        assert_eq!(route_of("POST", "/v1/models"), Route::MethodNotAllowed);
        assert_eq!(route_of("POST", "/v1/models/tumor"), Route::MethodNotAllowed);
        assert_eq!(route_of("GET", "/v1/models/tumor/classify"), Route::MethodNotAllowed);
        assert_eq!(route_of("PUT", "/v1/models/tumor/reload"), Route::MethodNotAllowed);
    }

    #[test]
    fn bad_names_and_unknown_paths() {
        assert_eq!(route_of("POST", "/v1/models/.hidden/classify"), Route::BadName(".hidden"));
        assert_eq!(route_of("GET", "/v1/models/ümlaut"), Route::BadName("ümlaut"));
        assert_eq!(route_of("POST", "/v1/models//classify"), Route::BadName(""));
        assert_eq!(route_of("GET", "/nope"), Route::NotFound);
        assert_eq!(route_of("GET", "/v1"), Route::NotFound);
        assert_eq!(route_of("POST", "/v1/models/tumor/nope"), Route::NotFound);
        assert_eq!(route_of("POST", "/v1/models/tumor/classify/extra"), Route::NotFound);
    }
}
