//! Model artifacts and a concurrent BSTC inference server.
//!
//! This crate turns the research pipeline into something deployable:
//!
//! * [`bundle`] — [`ModelBundle`], a versioned, checksummed JSON artifact
//!   packaging a trained [`bstc::BstcModel`] with its fitted
//!   [`discretize::Discretizer`], vocabulary, class labels, and
//!   provenance, so one file is sufficient to serve predictions on raw
//!   continuous expression vectors.
//! * [`http`] — a minimal dependency-free HTTP/1.1 implementation built
//!   as an incremental push parser ([`http::RequestParser`]), with
//!   smuggling-safe `Transfer-Encoding: chunked` request decoding and
//!   chunked response framing for large bodies.
//! * [`sys`] — a raw-syscall shim (no `libc` crate): epoll/kqueue
//!   readiness polling, a self-pipe waker, and an fd-limit helper.
//! * `eventloop` (crate-private) — the event-driven connection core:
//!   one thread owns
//!   every socket, parses incrementally, enforces `--max-connections`
//!   admission and per-request deadlines (timer wheel), and streams
//!   responses with nonblocking writes; workers never touch a socket.
//! * [`batcher`] — cross-connection adaptive micro-batching: workers
//!   submit binarized queries to a bounded queue, one batcher thread
//!   coalesces them (up to `--max-batch` or `--batch-wait-us`) and runs
//!   the batch-sweep kernel once per batch, amortizing the model pass
//!   over concurrent requests.
//! * [`metrics`] — lock-free request counters and latency histograms
//!   (windowed for the request- and batch-wait families), including the
//!   fault-tolerance and batching counters (shed, panics caught,
//!   respawns, timeouts, batch ledger).
//! * [`queue`] — the poison-free bounded acceptor→worker hand-off;
//!   admission beyond its depth is shed with `503` + `Retry-After`.
//! * [`registry`] — the multi-model fleet: named, versioned bundles
//!   loaded from `--models-dir`, atomic per-model version swaps with
//!   rollback-by-not-swapping, and an LRU cap on how many *compiled*
//!   models stay resident (bundle JSON always stays; the derived
//!   word-parallel form is evicted under pressure and re-lowered
//!   lazily).
//! * [`router`] — typed parsing of the `/v1/models/{name}/...` route
//!   space, with the legacy unnamed routes aliased to a default model.
//! * [`shadow`] — deterministic shadow/canary traffic: a seeded,
//!   reproducible sample of a primary model's requests is replayed
//!   asynchronously against a candidate model and compared server-side
//!   (prediction disagreements and latency, on `/metrics`).
//! * [`server`] — the TCP server exposing `/classify` (single and
//!   batch), `/health`, `/model`, `/metrics`, `/reload`, and the
//!   `/v1/models/*` registry API, with panic isolation (`catch_unwind`
//!   → structured 500) and a supervisor that respawns dead workers; the
//!   event loop owns connections, the pool owns compute.
//! * [`chaos`] — deterministic fault injection at named sites (enabled
//!   under `cfg(test)` or the `chaos` feature; compiled out otherwise),
//!   driving the chaos integration test that *measures* the above
//!   instead of assuming it.
//!
//! ```no_run
//! use serve::{serve, ModelBundle, Provenance, ServerConfig};
//!
//! let data = microarray::synth::presets::all_aml(7).scaled_down(40).generate();
//! let bundle = ModelBundle::train(&data, Provenance::new("ALL/AML", Some(7))).unwrap();
//! let handle = serve(ServerConfig::default(), bundle).unwrap();
//! println!("listening on http://{}", handle.addr());
//! handle.wait();
//! ```

pub mod batcher;
pub mod bundle;
pub mod chaos;
pub(crate) mod eventloop;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod router;
pub mod server;
pub mod shadow;
pub mod sys;
pub(crate) mod timer;

pub use batcher::{Batcher, BatcherConfig};
pub use bundle::{BundleError, ModelBundle, Prediction, Provenance, FORMAT_VERSION};
pub use metrics::{Metrics, MetricsSnapshot};
pub use registry::{ModelRegistry, ModelVersion, RegistryError};
pub use server::{serve, serve_models, ServerConfig, ServerHandle};
pub use shadow::{ShadowExecutor, ShadowJob, ShadowSpec};
