//! Model artifacts and a concurrent BSTC inference server.
//!
//! This crate turns the research pipeline into something deployable:
//!
//! * [`bundle`] — [`ModelBundle`], a versioned, checksummed JSON artifact
//!   packaging a trained [`bstc::BstcModel`] with its fitted
//!   [`discretize::Discretizer`], vocabulary, class labels, and
//!   provenance, so one file is sufficient to serve predictions on raw
//!   continuous expression vectors.
//! * [`http`] — a minimal dependency-free HTTP/1.1 reader/writer with
//!   per-request wall-clock deadlines.
//! * [`batcher`] — cross-connection adaptive micro-batching: workers
//!   submit binarized queries to a bounded queue, one batcher thread
//!   coalesces them (up to `--max-batch` or `--batch-wait-us`) and runs
//!   the batch-sweep kernel once per batch, amortizing the model pass
//!   over concurrent requests.
//! * [`metrics`] — lock-free request counters and latency histograms
//!   (windowed for the request- and batch-wait families), including the
//!   fault-tolerance and batching counters (shed, panics caught,
//!   respawns, timeouts, batch ledger).
//! * [`queue`] — the poison-free bounded acceptor→worker hand-off;
//!   admission beyond its depth is shed with `503` + `Retry-After`.
//! * [`server`] — a worker-pool TCP server exposing `/classify` (single
//!   and batch), `/health`, `/model`, `/metrics`, and `/reload`
//!   (hot-swap behind `RwLock<Arc<ModelBundle>>`), with panic isolation
//!   (`catch_unwind` → structured 500) and a supervisor that respawns
//!   dead workers.
//! * [`chaos`] — deterministic fault injection at named sites (enabled
//!   under `cfg(test)` or the `chaos` feature; compiled out otherwise),
//!   driving the chaos integration test that *measures* the above
//!   instead of assuming it.
//!
//! ```no_run
//! use serve::{serve, ModelBundle, Provenance, ServerConfig};
//!
//! let data = microarray::synth::presets::all_aml(7).scaled_down(40).generate();
//! let bundle = ModelBundle::train(&data, Provenance::new("ALL/AML", Some(7))).unwrap();
//! let handle = serve(ServerConfig::default(), bundle).unwrap();
//! println!("listening on http://{}", handle.addr());
//! handle.wait();
//! ```

pub mod batcher;
pub mod bundle;
pub mod chaos;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;

pub use batcher::{Batcher, BatcherConfig};
pub use bundle::{BundleError, ModelBundle, Prediction, Provenance, FORMAT_VERSION};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{serve, ServerConfig, ServerHandle};
