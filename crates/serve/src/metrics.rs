//! Lock-free serving metrics, rendered in a Prometheus-style plaintext
//! format by `GET /metrics`. Everything is relaxed atomics: counters are
//! monotonically increasing and the scrape tolerates torn reads across
//! series.
//!
//! Latency is measured with the shared obs histograms — the same
//! log-bucketed, nearest-rank-percentile buckets the training stages and
//! benches use. The *request*- and *batch*-latency families
//! (`bstc_request_duration_us{route=...}`, `bstc_batch_wait_us`) are
//! [`obs::WindowedHistogram`]s: their scraped percentiles cover only the
//! last 1–2 minutes, so steady-state p99s are not diluted by cold-start
//! history. The `/classify` handler's own `bstc_classify_latency_us` and
//! the batch-size distribution stay cumulative (their totals feed
//! cross-run comparisons).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use obs::{Histogram, WindowedHistogram};

/// Counters for one endpoint family.
#[derive(Debug, Default)]
pub struct EndpointStats {
    hits: AtomicU64,
    errors: AtomicU64,
    /// Whole-request wall time (read + handle + write), microseconds —
    /// windowed, so scraped p99s reflect recent traffic only.
    latency: WindowedHistogram,
}

impl EndpointStats {
    fn record(&self, status: u16) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// All metrics of one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    classify: EndpointStats,
    health: EndpointStats,
    model: EndpointStats,
    metrics: EndpointStats,
    reload: EndpointStats,
    other: EndpointStats,
    /// Individual expression vectors classified (a batch counts each row).
    samples_classified: AtomicU64,
    /// Completed model hot-swaps.
    reloads: AtomicU64,
    /// Rejected hot-swaps (bad file, failed checksum, ...); the old model
    /// kept serving.
    reload_failures: AtomicU64,
    /// Connections the acceptor took from the listener.
    conns_accepted: AtomicU64,
    /// Connections answered `503 overloaded` because the hand-off queue
    /// was full.
    conns_shed: AtomicU64,
    /// Connections a worker claimed from the queue (every accepted
    /// connection ends up exactly once in `shed` or `handled`).
    conns_handled: AtomicU64,
    /// Gauge: connections currently registered with the event loop. A
    /// nonzero value after traffic has fully drained means a leaked
    /// connection slot.
    conns_open: AtomicU64,
    /// Handler panics converted into 500 responses by `catch_unwind`.
    panics_caught: AtomicU64,
    /// Dead workers replaced by the supervisor.
    workers_respawned: AtomicU64,
    /// Requests that hit their wall-clock deadline (408s).
    request_timeouts: AtomicU64,
    /// Gauge: workers currently alive.
    workers_alive: AtomicU64,
    /// Gauge: pool size the server was configured with.
    workers_configured: AtomicU64,
    /// `/classify` *handler* latency (parse + classify, excluding
    /// request read and response write) — the paper-relevant number.
    classify_latency: Histogram,
    /// Batch executions run by the batcher thread.
    batches_executed: AtomicU64,
    /// Jobs workers successfully submitted to the batcher queue.
    batch_jobs_submitted: AtomicU64,
    /// Submitted jobs whose completion the worker resolved (answer,
    /// expiry, timeout, or disconnect — a clean ledger: in steady state
    /// `submitted == completed`, so a gap means a stranded job).
    batch_jobs_completed: AtomicU64,
    /// Submissions bounced by a full batcher queue and classified inline
    /// on the worker instead.
    batch_inline_fallbacks: AtomicU64,
    /// Batch executions that panicked (isolated; member jobs answered
    /// 500, the batcher thread survived).
    batch_panics: AtomicU64,
    /// Jobs coalesced per batch execution (cumulative — the amortization
    /// factor over the whole run).
    batch_size: Histogram,
    /// Time jobs spent queued before their batch executed, microseconds
    /// (windowed: the batching latency tax under *current* load).
    batch_wait_us: WindowedHistogram,
    /// Bundle-group switches inside batch executions: how often the
    /// batch kernel changed models within one coalesced batch (the cost
    /// of round-robin fairness across a mixed-model fleet).
    batch_model_switches: AtomicU64,
    /// Gauge: compiled models currently resident (LRU-tracked).
    models_resident: AtomicU64,
    /// Compiled forms evicted by the residency LRU.
    compile_evictions: AtomicU64,
    /// Mirrored requests the shadow executor replayed.
    shadow_requests: AtomicU64,
    /// Mirrored requests dropped because the shadow queue was full.
    shadow_dropped: AtomicU64,
    /// Per-primary-model count of replays where the candidate's class
    /// differed on at least one row. Keyed by model name — a `Mutex`
    /// around a map, not an atomic, because the label set is dynamic;
    /// cardinality stays bounded because the registry validates names
    /// at load time and shadowing is configured per registered model.
    shadow_disagreements: Mutex<BTreeMap<String, u64>>,
    /// Candidate classification latency in the shadow executor,
    /// microseconds (cumulative, for direct comparison against
    /// `bstc_classify_latency_us`).
    shadow_latency_us: Histogram,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one handled request by route and response status.
    pub fn record_request(&self, path: &str, status: u16) {
        self.endpoint(path).record(status);
        if status == 408 {
            self.request_timeouts.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a `/classify` handler latency observation.
    pub fn record_latency_us(&self, us: u64) {
        self.classify_latency.record(us);
    }

    /// Records whole-request wall time against the route's endpoint
    /// histogram (unknown paths pool under `other`).
    pub fn record_route_latency(&self, path: &str, us: u64) {
        self.endpoint(path).latency.record(us);
    }

    /// The `/classify` handler-latency nearest-rank p-quantile, µs
    /// (0 when nothing has been recorded). Used by supervisors and tests;
    /// scrapes read the full histogram from [`render`](Self::render).
    pub fn classify_latency_percentile_us(&self, p: f64) -> u64 {
        self.classify_latency.percentile(p)
    }

    fn endpoint(&self, path: &str) -> &EndpointStats {
        match path {
            "/classify" => &self.classify,
            "/health" => &self.health,
            "/model" => &self.model,
            "/metrics" => &self.metrics,
            "/reload" => &self.reload,
            // Registry routes pool into their unnamed counterparts: the
            // `route` label set stays fixed no matter how many models are
            // registered (bounded label cardinality by construction).
            _ if path.starts_with("/v1/models") => {
                if path.ends_with("/classify") {
                    &self.classify
                } else if path.ends_with("/reload") {
                    &self.reload
                } else {
                    &self.model
                }
            }
            _ => &self.other,
        }
    }

    /// Adds to the classified-samples counter.
    pub fn record_samples(&self, n: u64) {
        self.samples_classified.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a completed hot-swap.
    pub fn record_reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a rejected hot-swap (the old model kept serving).
    pub fn record_reload_failure(&self) {
        self.reload_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection taken from the listener.
    pub fn record_conn_accepted(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection shed with `503 overloaded` at admission.
    pub fn record_conn_shed(&self) {
        self.conns_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection claimed by a worker.
    pub fn record_conn_handled(&self) {
        self.conns_handled.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the open-connections gauge (event-loop registered sockets).
    pub fn set_conns_open(&self, n: u64) {
        self.conns_open.store(n, Ordering::Relaxed);
    }

    /// Records a handler panic that was isolated into a 500 response.
    pub fn record_panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one dead worker replaced by the supervisor.
    pub fn record_worker_respawned(&self) {
        self.workers_respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Sets the live-worker gauge.
    pub fn set_workers_alive(&self, n: u64) {
        self.workers_alive.store(n, Ordering::Relaxed);
    }

    /// Sets the configured pool-size gauge.
    pub fn set_workers_configured(&self, n: u64) {
        self.workers_configured.store(n, Ordering::Relaxed);
    }

    /// Records one batch execution of `size` coalesced jobs.
    pub fn record_batch(&self, size: u64) {
        self.batches_executed.fetch_add(1, Ordering::Relaxed);
        self.batch_size.record(size);
    }

    /// Records how long one job waited in the batcher queue.
    pub fn record_batch_wait_us(&self, us: u64) {
        self.batch_wait_us.record(us);
    }

    /// Records one job submitted to the batcher queue.
    pub fn record_batch_job_submitted(&self) {
        self.batch_jobs_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one submitted job whose completion the worker resolved.
    pub fn record_batch_job_completed(&self) {
        self.batch_jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one submission bounced to the inline path.
    pub fn record_batch_inline_fallback(&self) {
        self.batch_inline_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one isolated batch-execution panic.
    pub fn record_batch_panic(&self) {
        self.batch_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` model switches inside one batch execution.
    pub fn record_batch_model_switches(&self, n: u64) {
        self.batch_model_switches.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the compiled-models-resident gauge.
    pub fn set_models_resident(&self, n: u64) {
        self.models_resident.store(n, Ordering::Relaxed);
    }

    /// Records one compiled form evicted by the residency LRU.
    pub fn record_compile_eviction(&self) {
        self.compile_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one replayed shadow request and its candidate latency.
    pub fn record_shadow_request(&self, latency_us: u64) {
        self.shadow_requests.fetch_add(1, Ordering::Relaxed);
        self.shadow_latency_us.record(latency_us);
    }

    /// Records one shadow replay disagreeing with the primary, labeled
    /// by the primary model's name.
    pub fn record_shadow_disagreement(&self, model: &str) {
        let mut map = self.shadow_disagreements.lock().unwrap_or_else(PoisonError::into_inner);
        *map.entry(model.to_string()).or_insert(0) += 1;
    }

    /// Records one shadow job dropped at a full queue.
    pub fn record_shadow_dropped(&self) {
        self.shadow_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy for tests and supervisors
    /// (individual counters are exact; cross-counter skew is possible
    /// while traffic is in flight).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_shed: self.conns_shed.load(Ordering::Relaxed),
            conns_handled: self.conns_handled.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            workers_alive: self.workers_alive.load(Ordering::Relaxed),
            workers_configured: self.workers_configured.load(Ordering::Relaxed),
            request_timeouts: self.request_timeouts.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            samples_classified: self.samples_classified.load(Ordering::Relaxed),
            batches_executed: self.batches_executed.load(Ordering::Relaxed),
            batch_jobs_submitted: self.batch_jobs_submitted.load(Ordering::Relaxed),
            batch_jobs_completed: self.batch_jobs_completed.load(Ordering::Relaxed),
            batch_inline_fallbacks: self.batch_inline_fallbacks.load(Ordering::Relaxed),
            batch_panics: self.batch_panics.load(Ordering::Relaxed),
            batch_model_switches: self.batch_model_switches.load(Ordering::Relaxed),
            models_resident: self.models_resident.load(Ordering::Relaxed),
            compile_evictions: self.compile_evictions.load(Ordering::Relaxed),
            shadow_requests: self.shadow_requests.load(Ordering::Relaxed),
            shadow_dropped: self.shadow_dropped.load(Ordering::Relaxed),
            shadow_disagreements: self
                .shadow_disagreements
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .values()
                .sum(),
        }
    }

    /// Renders the Prometheus-style plaintext exposition.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let routes = [
            ("/classify", &self.classify),
            ("/health", &self.health),
            ("/model", &self.model),
            ("/metrics", &self.metrics),
            ("/reload", &self.reload),
            ("other", &self.other),
        ];
        // One family at a time: a scraper requires every sample to follow
        // its own # TYPE line (interleaving the two families put the
        // error samples under bstc_requests_total's type).
        out.push_str("# TYPE bstc_requests_total counter\n");
        for (route, stats) in routes {
            let _ = writeln!(
                out,
                "bstc_requests_total{{route=\"{route}\"}} {}",
                stats.hits.load(Ordering::Relaxed)
            );
        }
        out.push_str("# TYPE bstc_request_errors_total counter\n");
        for (route, stats) in routes {
            let _ = writeln!(
                out,
                "bstc_request_errors_total{{route=\"{route}\"}} {}",
                stats.errors.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# TYPE bstc_samples_classified_total counter\nbstc_samples_classified_total {}",
            self.samples_classified.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_model_reloads_total counter\nbstc_model_reloads_total {}",
            self.reloads.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_model_reload_failures_total counter\nbstc_model_reload_failures_total {}",
            self.reload_failures.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE bstc_connections_total counter\n");
        for (event, counter) in [
            ("accepted", &self.conns_accepted),
            ("shed", &self.conns_shed),
            ("handled", &self.conns_handled),
        ] {
            let _ = writeln!(
                out,
                "bstc_connections_total{{event=\"{event}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# TYPE bstc_connections_open gauge\nbstc_connections_open {}",
            self.conns_open.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_panics_caught_total counter\nbstc_panics_caught_total {}",
            self.panics_caught.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_workers_respawned_total counter\nbstc_workers_respawned_total {}",
            self.workers_respawned.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_request_timeouts_total counter\nbstc_request_timeouts_total {}",
            self.request_timeouts.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE bstc_workers gauge\n");
        let _ = writeln!(
            out,
            "bstc_workers{{state=\"alive\"}} {}",
            self.workers_alive.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "bstc_workers{{state=\"configured\"}} {}",
            self.workers_configured.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE bstc_request_duration_us histogram\n");
        for (route, stats) in [
            ("/classify", &self.classify),
            ("/health", &self.health),
            ("/model", &self.model),
            ("/metrics", &self.metrics),
            ("/reload", &self.reload),
            ("other", &self.other),
        ] {
            stats.latency.render_into(&mut out, "bstc_request_duration_us", &[("route", route)]);
        }
        out.push_str("# TYPE bstc_classify_latency_us histogram\n");
        self.classify_latency.render_into(&mut out, "bstc_classify_latency_us", &[]);
        let _ = writeln!(
            out,
            "# TYPE bstc_batches_total counter\nbstc_batches_total {}",
            self.batches_executed.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE bstc_batch_jobs_total counter\n");
        for (state, counter) in [
            ("submitted", &self.batch_jobs_submitted),
            ("completed", &self.batch_jobs_completed),
            ("inline_fallback", &self.batch_inline_fallbacks),
        ] {
            let _ = writeln!(
                out,
                "bstc_batch_jobs_total{{state=\"{state}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# TYPE bstc_batch_panics_total counter\nbstc_batch_panics_total {}",
            self.batch_panics.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE bstc_batch_size histogram\n");
        self.batch_size.render_into(&mut out, "bstc_batch_size", &[]);
        out.push_str("# TYPE bstc_batch_wait_us histogram\n");
        self.batch_wait_us.render_into(&mut out, "bstc_batch_wait_us", &[]);
        let _ = writeln!(
            out,
            "# TYPE bstc_batch_model_switches_total counter\nbstc_batch_model_switches_total {}",
            self.batch_model_switches.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_models_resident gauge\nbstc_models_resident {}",
            self.models_resident.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_model_compile_evictions_total counter\n\
             bstc_model_compile_evictions_total {}",
            self.compile_evictions.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_shadow_requests_total counter\nbstc_shadow_requests_total {}",
            self.shadow_requests.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_shadow_dropped_total counter\nbstc_shadow_dropped_total {}",
            self.shadow_dropped.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE bstc_shadow_disagreements_total counter\n");
        for (model, count) in
            self.shadow_disagreements.lock().unwrap_or_else(PoisonError::into_inner).iter()
        {
            let _ = writeln!(out, "bstc_shadow_disagreements_total{{model=\"{model}\"}} {count}");
        }
        out.push_str("# TYPE bstc_shadow_latency_us histogram\n");
        self.shadow_latency_us.render_into(&mut out, "bstc_shadow_latency_us", &[]);
        out
    }
}

/// A point-in-time copy of the fault-tolerance counters (see
/// [`Metrics::snapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connections taken from the listener.
    pub conns_accepted: u64,
    /// Connections answered `503 overloaded` at admission.
    pub conns_shed: u64,
    /// Connections claimed (and eventually finished) by a worker.
    pub conns_handled: u64,
    /// Connections currently registered with the event loop (gauge).
    pub conns_open: u64,
    /// Handler panics isolated into 500s.
    pub panics_caught: u64,
    /// Dead workers replaced by the supervisor.
    pub workers_respawned: u64,
    /// Workers currently alive.
    pub workers_alive: u64,
    /// Configured pool size.
    pub workers_configured: u64,
    /// Requests that hit their wall-clock deadline.
    pub request_timeouts: u64,
    /// Completed hot-swaps.
    pub reloads: u64,
    /// Rejected hot-swaps.
    pub reload_failures: u64,
    /// Expression vectors classified.
    pub samples_classified: u64,
    /// Batch executions run by the batcher thread.
    pub batches_executed: u64,
    /// Jobs submitted to the batcher queue.
    pub batch_jobs_submitted: u64,
    /// Submitted jobs whose completion the worker resolved.
    pub batch_jobs_completed: u64,
    /// Submissions bounced to the inline path.
    pub batch_inline_fallbacks: u64,
    /// Isolated batch-execution panics.
    pub batch_panics: u64,
    /// Model switches inside batch executions.
    pub batch_model_switches: u64,
    /// Compiled models currently resident.
    pub models_resident: u64,
    /// Compiled forms evicted by the residency LRU.
    pub compile_evictions: u64,
    /// Shadow replays executed.
    pub shadow_requests: u64,
    /// Shadow jobs dropped at a full queue.
    pub shadow_dropped: u64,
    /// Shadow replays that disagreed with the primary (sum over models).
    pub shadow_disagreements: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_count_by_route_and_status() {
        let m = Metrics::new();
        m.record_request("/classify", 200);
        m.record_request("/classify", 400);
        m.record_request("/nope", 404);
        let text = m.render();
        assert!(text.contains("bstc_requests_total{route=\"/classify\"} 2"), "{text}");
        assert!(text.contains("bstc_request_errors_total{route=\"/classify\"} 1"), "{text}");
        assert!(text.contains("bstc_requests_total{route=\"other\"} 1"), "{text}");
    }

    #[test]
    fn classify_latency_uses_shared_histogram() {
        let m = Metrics::new();
        m.record_latency_us(50);
        m.record_latency_us(700);
        m.record_latency_us(10_000_000);
        let text = m.render();
        // Exact sum/count survive the move to log buckets.
        assert!(text.contains("bstc_classify_latency_us_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("bstc_classify_latency_us_count 3"), "{text}");
        assert!(text.contains("bstc_classify_latency_us_sum 10000750"), "{text}");
        // Nearest-rank percentiles come from the shared obs histogram:
        // the bucketed answer may sit up to one bucket (~6%) above the
        // recorded sample, never below it.
        let p99 = m.classify_latency_percentile_us(0.99);
        assert!((10_000_000..=10_700_000).contains(&p99), "p99 {p99}");
        let p0 = m.classify_latency_percentile_us(0.0);
        assert!((50..=54).contains(&p0), "p0 {p0}");
    }

    #[test]
    fn route_latency_renders_per_endpoint_family() {
        let m = Metrics::new();
        m.record_route_latency("/classify", 800);
        m.record_route_latency("/classify", 1_200);
        m.record_route_latency("/health", 30);
        m.record_route_latency("/nope", 5);
        let text = m.render();
        assert!(text.contains("# TYPE bstc_request_duration_us histogram"), "{text}");
        assert!(text.contains("bstc_request_duration_us_count{route=\"/classify\"} 2"), "{text}");
        assert!(text.contains("bstc_request_duration_us_sum{route=\"/classify\"} 2000"), "{text}");
        assert!(text.contains("bstc_request_duration_us_count{route=\"/health\"} 1"), "{text}");
        assert!(text.contains("bstc_request_duration_us_count{route=\"other\"} 1"), "{text}");
        // Every bucket line carries its route label and +Inf closes each.
        assert!(
            text.contains("bstc_request_duration_us_bucket{route=\"/health\",le=\"+Inf\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn fault_tolerance_counters_render_and_snapshot() {
        let m = Metrics::new();
        m.set_workers_configured(4);
        m.set_workers_alive(4);
        for _ in 0..5 {
            m.record_conn_accepted();
        }
        m.record_conn_shed();
        for _ in 0..4 {
            m.record_conn_handled();
        }
        m.record_panic_caught();
        m.record_worker_respawned();
        m.record_reload_failure();
        m.record_request("/classify", 408);
        let text = m.render();
        assert!(text.contains("bstc_connections_total{event=\"accepted\"} 5"), "{text}");
        assert!(text.contains("bstc_connections_total{event=\"shed\"} 1"), "{text}");
        assert!(text.contains("bstc_connections_total{event=\"handled\"} 4"), "{text}");
        assert!(text.contains("bstc_panics_caught_total 1"), "{text}");
        assert!(text.contains("bstc_workers_respawned_total 1"), "{text}");
        assert!(text.contains("bstc_model_reload_failures_total 1"), "{text}");
        assert!(text.contains("bstc_request_timeouts_total 1"), "{text}");
        assert!(text.contains("bstc_workers{state=\"alive\"} 4"), "{text}");
        assert!(text.contains("bstc_workers{state=\"configured\"} 4"), "{text}");
        let snap = m.snapshot();
        assert_eq!(snap.conns_accepted, snap.conns_handled + snap.conns_shed);
        assert_eq!(snap.panics_caught, 1);
        assert_eq!(snap.request_timeouts, 1);
    }

    #[test]
    fn batch_families_render_and_snapshot() {
        let m = Metrics::new();
        m.record_batch(4);
        m.record_batch(1);
        m.record_batch_wait_us(150);
        for _ in 0..5 {
            m.record_batch_job_submitted();
            m.record_batch_job_completed();
        }
        m.record_batch_inline_fallback();
        m.record_batch_panic();
        let text = m.render();
        assert!(text.contains("bstc_batches_total 2"), "{text}");
        assert!(text.contains("bstc_batch_jobs_total{state=\"submitted\"} 5"), "{text}");
        assert!(text.contains("bstc_batch_jobs_total{state=\"completed\"} 5"), "{text}");
        assert!(text.contains("bstc_batch_jobs_total{state=\"inline_fallback\"} 1"), "{text}");
        assert!(text.contains("bstc_batch_panics_total 1"), "{text}");
        assert!(text.contains("bstc_batch_size_count 2"), "{text}");
        assert!(text.contains("bstc_batch_size_sum 5"), "{text}");
        assert!(text.contains("bstc_batch_wait_us_count 1"), "{text}");
        let snap = m.snapshot();
        assert_eq!(snap.batch_jobs_submitted, snap.batch_jobs_completed);
        assert_eq!(snap.batches_executed, 2);
        assert_eq!(snap.batch_inline_fallbacks, 1);
        assert_eq!(snap.batch_panics, 1);
    }

    #[test]
    fn registry_and_shadow_families_render_and_snapshot() {
        let m = Metrics::new();
        m.set_models_resident(2);
        m.record_compile_eviction();
        m.record_batch_model_switches(3);
        m.record_shadow_request(120);
        m.record_shadow_request(340);
        m.record_shadow_disagreement("tumor");
        m.record_shadow_disagreement("tumor");
        m.record_shadow_disagreement("leukemia");
        m.record_shadow_dropped();
        let text = m.render();
        assert!(text.contains("bstc_models_resident 2"), "{text}");
        assert!(text.contains("bstc_model_compile_evictions_total 1"), "{text}");
        assert!(text.contains("bstc_batch_model_switches_total 3"), "{text}");
        assert!(text.contains("bstc_shadow_requests_total 2"), "{text}");
        assert!(text.contains("bstc_shadow_dropped_total 1"), "{text}");
        assert!(text.contains("bstc_shadow_disagreements_total{model=\"tumor\"} 2"), "{text}");
        assert!(text.contains("bstc_shadow_disagreements_total{model=\"leukemia\"} 1"), "{text}");
        assert!(text.contains("bstc_shadow_latency_us_count 2"), "{text}");
        assert!(text.contains("bstc_shadow_latency_us_sum 460"), "{text}");
        // The TYPE line precedes the labeled samples (scrape hygiene).
        let type_at = text.find("# TYPE bstc_shadow_disagreements_total").unwrap();
        let sample_at = text.find("bstc_shadow_disagreements_total{").unwrap();
        assert!(type_at < sample_at, "{text}");
        let snap = m.snapshot();
        assert_eq!(snap.models_resident, 2);
        assert_eq!(snap.compile_evictions, 1);
        assert_eq!(snap.batch_model_switches, 3);
        assert_eq!(snap.shadow_requests, 2);
        assert_eq!(snap.shadow_disagreements, 3);
        assert_eq!(snap.shadow_dropped, 1);
    }

    #[test]
    fn samples_and_reloads_accumulate() {
        let m = Metrics::new();
        m.record_samples(3);
        m.record_samples(2);
        m.record_reload();
        let text = m.render();
        assert!(text.contains("bstc_samples_classified_total 5"), "{text}");
        assert!(text.contains("bstc_model_reloads_total 1"), "{text}");
    }
}
