//! Lock-free serving metrics, rendered in a Prometheus-style plaintext
//! format by `GET /metrics`. Everything is relaxed atomics: counters are
//! monotonically increasing and the scrape tolerates torn reads across
//! series.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (µs) of the latency histogram buckets; the implicit last
/// bucket is `+Inf`. Spans sub-100µs cache hits to multi-second stalls.
pub const LATENCY_BUCKETS_US: [u64; 10] =
    [100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// Counters for one endpoint family.
#[derive(Debug, Default)]
pub struct EndpointStats {
    hits: AtomicU64,
    errors: AtomicU64,
}

impl EndpointStats {
    fn record(&self, status: u16) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// All metrics of one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    classify: EndpointStats,
    health: EndpointStats,
    model: EndpointStats,
    metrics: EndpointStats,
    reload: EndpointStats,
    other: EndpointStats,
    /// Individual expression vectors classified (a batch counts each row).
    samples_classified: AtomicU64,
    /// Completed model hot-swaps.
    reloads: AtomicU64,
    /// Histogram of `/classify` handler latency; `[i]` counts requests
    /// with latency ≤ `LATENCY_BUCKETS_US[i]`, the extra slot is +Inf.
    latency_counts: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    latency_sum_us: AtomicU64,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one handled request by route and response status.
    pub fn record_request(&self, path: &str, status: u16) {
        let endpoint = match path {
            "/classify" => &self.classify,
            "/health" => &self.health,
            "/model" => &self.model,
            "/metrics" => &self.metrics,
            "/reload" => &self.reload,
            _ => &self.other,
        };
        endpoint.record(status);
    }

    /// Records a `/classify` handler latency observation.
    pub fn record_latency_us(&self, us: u64) {
        let slot =
            LATENCY_BUCKETS_US.iter().position(|&b| us <= b).unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency_counts[slot].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Adds to the classified-samples counter.
    pub fn record_samples(&self, n: u64) {
        self.samples_classified.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a completed hot-swap.
    pub fn record_reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the Prometheus-style plaintext exposition.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("# TYPE bstc_requests_total counter\n");
        for (route, stats) in [
            ("/classify", &self.classify),
            ("/health", &self.health),
            ("/model", &self.model),
            ("/metrics", &self.metrics),
            ("/reload", &self.reload),
            ("other", &self.other),
        ] {
            let _ = writeln!(
                out,
                "bstc_requests_total{{route=\"{route}\"}} {}",
                stats.hits.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                out,
                "bstc_request_errors_total{{route=\"{route}\"}} {}",
                stats.errors.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# TYPE bstc_samples_classified_total counter\nbstc_samples_classified_total {}",
            self.samples_classified.load(Ordering::Relaxed)
        );
        let _ = writeln!(
            out,
            "# TYPE bstc_model_reloads_total counter\nbstc_model_reloads_total {}",
            self.reloads.load(Ordering::Relaxed)
        );
        out.push_str("# TYPE bstc_classify_latency_us histogram\n");
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.latency_counts[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "bstc_classify_latency_us_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        cumulative += self.latency_counts[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "bstc_classify_latency_us_bucket{{le=\"+Inf\"}} {cumulative}");
        let _ = writeln!(out, "bstc_classify_latency_us_count {cumulative}");
        let _ = writeln!(
            out,
            "bstc_classify_latency_us_sum {}",
            self.latency_sum_us.load(Ordering::Relaxed)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_count_by_route_and_status() {
        let m = Metrics::new();
        m.record_request("/classify", 200);
        m.record_request("/classify", 400);
        m.record_request("/nope", 404);
        let text = m.render();
        assert!(text.contains("bstc_requests_total{route=\"/classify\"} 2"), "{text}");
        assert!(text.contains("bstc_request_errors_total{route=\"/classify\"} 1"), "{text}");
        assert!(text.contains("bstc_requests_total{route=\"other\"} 1"), "{text}");
    }

    #[test]
    fn latency_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record_latency_us(50); // ≤100
        m.record_latency_us(700); // ≤1000
        m.record_latency_us(10_000_000); // +Inf
        let text = m.render();
        assert!(text.contains("bucket{le=\"100\"} 1"), "{text}");
        assert!(text.contains("bucket{le=\"1000\"} 2"), "{text}");
        assert!(text.contains("bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("bstc_classify_latency_us_count 3"), "{text}");
        assert!(text.contains("bstc_classify_latency_us_sum 10000750"), "{text}");
    }

    #[test]
    fn samples_and_reloads_accumulate() {
        let m = Metrics::new();
        m.record_samples(3);
        m.record_samples(2);
        m.record_reload();
        let text = m.render();
        assert!(text.contains("bstc_samples_classified_total 5"), "{text}");
        assert!(text.contains("bstc_model_reloads_total 1"), "{text}");
    }
}
