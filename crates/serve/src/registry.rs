//! The multi-model registry: named, versioned [`ModelBundle`]s behind
//! atomic per-model swaps, with an LRU cap on *compiled* residency.
//!
//! ## Versioned models
//!
//! Every named model is a [`ModelState`] holding the current
//! [`ModelVersion`] behind `RwLock<Arc<...>>` — the same hot-swap shape
//! PR 2 used for the single served bundle, now one lock per model so a
//! `/v1/models/{a}/reload` never contends with traffic on model `b`.
//! Versions are monotone per name: the first load is `v1` and every
//! successful swap bumps it. A swap does *all* fallible work first —
//! read the file, verify the checksum, validate the payload (and pass
//! the `registry` chaos site) — and only then stores the new `Arc`, so
//! a failed or panicking swap leaves the old version serving: rollback
//! is the absence of the store, never a restore.
//!
//! ## LRU-capped compiled residency
//!
//! Bundle JSON stays resident for every registered model (it is the
//! source of truth for swaps and metadata), but the *compiled*
//! word-parallel form is derived state that costs real memory per
//! model. [`ModelRegistry::touch`] lowers it lazily on first use and
//! maintains an LRU over bundles whose compiled form is resident; past
//! [`ModelRegistry::max_resident`], the coldest bundle's cache is
//! evicted ([`ModelBundle::evict_compiled`]) — in-flight requests keep
//! the `Arc<CompiledModel>` they already cloned, and the next request
//! for the evicted model simply re-lowers. `bstc_models_resident` and
//! `bstc_model_compile_evictions_total` expose the cache behavior.

use crate::bundle::{BundleError, ModelBundle};
use crate::chaos;
use crate::metrics::Metrics;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError, RwLock, Weak};

/// One immutable served version of a named model. Swaps replace the
/// whole `Arc`, so a request that resolved a version keeps a consistent
/// (bundle, version, checksum) triple for its entire lifetime.
#[derive(Debug)]
pub struct ModelVersion {
    /// The model name this version serves under.
    pub name: String,
    /// Monotone per-name version number (`v1` on first load).
    pub version: u64,
    /// The envelope checksum of the bundle payload (`fnv1a64:<16hex>`),
    /// identifying exactly which artifact this version was loaded from.
    pub checksum: String,
    /// Where the artifact came from; per-model `/reload` re-reads it.
    pub source: Option<PathBuf>,
    /// The served bundle.
    pub bundle: Arc<ModelBundle>,
}

/// The mutable slot one model name points at.
#[derive(Debug)]
struct ModelState {
    current: RwLock<Arc<ModelVersion>>,
}

impl ModelState {
    fn current(&self) -> Arc<ModelVersion> {
        self.current.read().unwrap_or_else(PoisonError::into_inner).clone()
    }
}

/// Why a registry operation failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No model is registered under the requested name.
    UnknownModel(String),
    /// The model name is not servable (empty, too long, or containing
    /// characters that would be unsafe in a path segment or an
    /// unbounded-cardinality metric label).
    BadName(String),
    /// Loading or validating the new artifact failed; the old version
    /// (if any) keeps serving.
    Load(BundleError),
    /// The registry was asked to load a directory with no bundles.
    Empty(PathBuf),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownModel(name) => write!(f, "no model named '{name}'"),
            RegistryError::BadName(name) => write!(
                f,
                "'{name}' is not a servable model name (1-64 chars of [A-Za-z0-9._-], \
                 not starting with '.')"
            ),
            RegistryError::Load(e) => write!(f, "{e}"),
            RegistryError::Empty(dir) => {
                write!(f, "no .json bundles found in '{}'", dir.display())
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl RegistryError {
    /// The HTTP status a failed registry operation maps to.
    pub fn http_status(&self) -> u16 {
        match self {
            RegistryError::UnknownModel(_) => 404,
            RegistryError::BadName(_) => 400,
            RegistryError::Load(e) => e.http_status(),
            RegistryError::Empty(_) => 500,
        }
    }

    /// The machine-readable error code for the structured JSON body.
    pub fn code(&self) -> &'static str {
        match self {
            RegistryError::UnknownModel(_) => "unknown_model",
            RegistryError::BadName(_) => "bad_model_name",
            RegistryError::Load(_) => "reload_failed",
            RegistryError::Empty(_) => "no_models",
        }
    }
}

/// A model name that is safe as a path segment and a metric label:
/// 1–64 chars of `[A-Za-z0-9._-]`, not starting with `.`. Bounding the
/// alphabet and length here is what keeps `{model}`-labeled metric
/// families from growing unbounded cardinality.
pub fn valid_model_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// The LRU bookkeeping over compiled residency. Entries hold `Weak`
/// bundle references keyed by pointer identity, so a swapped-out
/// version's stale entry prunes itself instead of pinning the bundle.
#[derive(Debug, Default)]
struct ResidencyLru {
    /// Most-recently-used last.
    order: Vec<(usize, Weak<ModelBundle>)>,
}

/// The registry: a name → [`ModelState`] map plus the residency LRU.
#[derive(Debug)]
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Arc<ModelState>>>,
    /// Name the legacy single-model routes (`/classify`, `/model`,
    /// `/reload`) alias to.
    default_name: String,
    /// Most compiled models kept resident at once (0 = unlimited).
    max_resident: usize,
    lru: Mutex<ResidencyLru>,
    metrics: Arc<Metrics>,
}

impl ModelRegistry {
    /// An empty registry. `max_resident` caps how many *compiled*
    /// models stay cached (0 = no cap); `default_name` is what the
    /// legacy unnamed routes resolve to.
    pub fn new(
        default_name: impl Into<String>,
        max_resident: usize,
        metrics: Arc<Metrics>,
    ) -> ModelRegistry {
        ModelRegistry {
            models: RwLock::new(BTreeMap::new()),
            default_name: default_name.into(),
            max_resident,
            lru: Mutex::new(ResidencyLru::default()),
            metrics,
        }
    }

    /// Builds a registry from a directory of `*.json` bundle envelopes:
    /// each file registers under its stem (`tumor.json` → `tumor`) at
    /// version 1. The default model is `default_name` when given and
    /// present, otherwise the lexicographically first name.
    ///
    /// # Errors
    /// Fails when the directory is unreadable, holds no bundles, any
    /// bundle fails verification, or a stem is not a valid model name —
    /// a fleet that cannot load *completely* should not boot at all.
    pub fn load_dir(
        dir: &Path,
        default_name: Option<String>,
        max_resident: usize,
        metrics: Arc<Metrics>,
    ) -> Result<ModelRegistry, RegistryError> {
        let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| RegistryError::Load(BundleError::Io(e)))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "json"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(RegistryError::Empty(dir.to_path_buf()));
        }
        let mut names = Vec::with_capacity(paths.len());
        for path in &paths {
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default().to_string();
            if !valid_model_name(&stem) {
                return Err(RegistryError::BadName(stem));
            }
            names.push(stem);
        }
        let default_name = match default_name {
            Some(name) => {
                if !names.contains(&name) {
                    return Err(RegistryError::UnknownModel(name));
                }
                name
            }
            None => names[0].clone(),
        };
        let registry = ModelRegistry::new(default_name, max_resident, metrics);
        for (name, path) in names.into_iter().zip(paths) {
            let bundle = ModelBundle::load(&path).map_err(RegistryError::Load)?;
            registry.insert(&name, bundle, Some(path))?;
        }
        Ok(registry)
    }

    /// Registers `bundle` under `name` at version 1 (replacing any
    /// existing registration wholesale — use [`Self::swap`] for the
    /// version-bumping path).
    ///
    /// # Errors
    /// Rejects invalid names and bundles whose checksum cannot be
    /// computed.
    pub fn insert(
        &self,
        name: &str,
        bundle: ModelBundle,
        source: Option<PathBuf>,
    ) -> Result<Arc<ModelVersion>, RegistryError> {
        if !valid_model_name(name) {
            return Err(RegistryError::BadName(name.to_string()));
        }
        let checksum = bundle.content_checksum().map_err(RegistryError::Load)?;
        let version = Arc::new(ModelVersion {
            name: name.to_string(),
            version: 1,
            checksum,
            source,
            bundle: Arc::new(bundle),
        });
        self.models.write().unwrap_or_else(PoisonError::into_inner).insert(
            name.to_string(),
            Arc::new(ModelState { current: RwLock::new(Arc::clone(&version)) }),
        );
        Ok(version)
    }

    /// The name the legacy unnamed routes serve.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// Resolves a name to its current version.
    ///
    /// # Errors
    /// [`RegistryError::UnknownModel`] when nothing is registered under
    /// `name`.
    pub fn get(&self, name: &str) -> Result<Arc<ModelVersion>, RegistryError> {
        let state = self
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        Ok(state.current())
    }

    /// The current version of the default model.
    ///
    /// # Errors
    /// [`RegistryError::UnknownModel`] when the default was never
    /// registered (a construction bug; `serve` registers it up front).
    pub fn default_version(&self) -> Result<Arc<ModelVersion>, RegistryError> {
        self.get(&self.default_name)
    }

    /// Every registered model's current version, in name order.
    pub fn list(&self) -> Vec<Arc<ModelVersion>> {
        self.models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(|state| state.current())
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the registry holds no models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Atomically swaps `name` to the artifact at `path` (or its
    /// recorded source when `path` is `None`), bumping the version.
    ///
    /// All fallible work — the `registry` chaos site, reading the file,
    /// checksum verification, payload validation — happens on a local
    /// value *before* the store, so any failure (including an injected
    /// panic) leaves the old version serving untouched. The store
    /// itself is a single `Arc` assignment under the model's write
    /// lock: a concurrent request observes entirely the old version or
    /// entirely the new one, never a mix.
    ///
    /// # Errors
    /// [`RegistryError::UnknownModel`] for unregistered names, a
    /// [`RegistryError::Load`] when the artifact cannot be loaded or
    /// verified (the old version keeps serving either way).
    pub fn swap(
        &self,
        name: &str,
        path: Option<PathBuf>,
    ) -> Result<Arc<ModelVersion>, RegistryError> {
        let state = self
            .models
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
            .ok_or_else(|| RegistryError::UnknownModel(name.to_string()))?;
        // Chaos site: a panic, stall, or injected i/o error lands here,
        // strictly before the swap is committed.
        chaos::io_point("registry").map_err(|e| RegistryError::Load(BundleError::Io(e)))?;
        let current = state.current();
        let path = match path.or_else(|| current.source.clone()) {
            Some(p) => p,
            None => {
                return Err(RegistryError::Load(BundleError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("model '{name}' has no recorded source; pass {{\"path\": ...}}"),
                ))))
            }
        };
        let bundle = ModelBundle::load(&path).map_err(RegistryError::Load)?;
        let checksum = bundle.content_checksum().map_err(RegistryError::Load)?;
        let next = Arc::new(ModelVersion {
            name: name.to_string(),
            version: current.version + 1,
            checksum,
            source: Some(path),
            bundle: Arc::new(bundle),
        });
        *state.current.write().unwrap_or_else(PoisonError::into_inner) = Arc::clone(&next);
        Ok(next)
    }

    /// Marks `version`'s bundle as just-used and ensures its compiled
    /// form is resident, evicting the coldest bundles past the
    /// residency cap. Called once per routed request; the actual
    /// classification then reuses the bundle's cached slot for free.
    pub fn touch(&self, version: &ModelVersion) {
        // Chaos site shared with `swap`: a panic injected here fires
        // during lazy compilation, inside the handler's catch_unwind.
        chaos::point("registry");
        let bundle = &version.bundle;
        bundle.compiled();
        let key = Arc::as_ptr(bundle) as usize;
        let mut lru = self.lru.lock().unwrap_or_else(PoisonError::into_inner);
        // Prune entries whose bundle was dropped (swapped-out versions)
        // or evicted behind our back, then move `key` to the MRU end.
        lru.order
            .retain(|(k, weak)| *k != key && weak.upgrade().is_some_and(|b| b.compiled_resident()));
        lru.order.push((key, Arc::downgrade(bundle)));
        if self.max_resident > 0 {
            while lru.order.len() > self.max_resident {
                let (_, coldest) = lru.order.remove(0);
                if let Some(cold) = coldest.upgrade() {
                    if cold.evict_compiled() {
                        self.metrics.record_compile_eviction();
                    }
                }
            }
        }
        self.metrics.set_models_resident(lru.order.len() as u64);
    }

    /// How many compiled models the LRU currently tracks as resident.
    pub fn resident(&self) -> usize {
        let mut lru = self.lru.lock().unwrap_or_else(PoisonError::into_inner);
        lru.order.retain(|(_, weak)| weak.upgrade().is_some_and(|b| b.compiled_resident()));
        lru.order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::Provenance;
    use microarray::ContinuousDataset;

    fn toy(flip: bool) -> ContinuousDataset {
        let labels = if flip { vec![1, 1, 1, 1, 0, 0, 0, 0] } else { vec![0, 0, 0, 0, 1, 1, 1, 1] };
        ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 5.0],
                vec![1.2, 3.0],
                vec![0.8, 5.5],
                vec![1.1, 2.9],
                vec![9.0, 5.1],
                vec![9.2, 3.2],
                vec![8.9, 5.2],
                vec![9.1, 3.1],
            ],
            labels,
        )
        .unwrap()
    }

    fn bundle(name: &str, flip: bool) -> ModelBundle {
        ModelBundle::train(&toy(flip), Provenance::new(name, None)).unwrap()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bstc_registry_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn names_are_validated() {
        for good in ["a", "tumor", "all-aml_v2", "m.2024", "x".repeat(64).as_str()] {
            assert!(valid_model_name(good), "{good}");
        }
        for bad in ["", ".hidden", "a/b", "a b", "x".repeat(65).as_str(), "ümlaut"] {
            assert!(!valid_model_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn insert_get_list_and_default() {
        let r = ModelRegistry::new("beta", 0, Arc::new(Metrics::new()));
        r.insert("beta", bundle("ds-b", false), None).unwrap();
        r.insert("alpha", bundle("ds-a", false), None).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.default_name(), "beta");
        assert_eq!(r.default_version().unwrap().bundle.provenance.dataset, "ds-b");
        let listed: Vec<String> = r.list().iter().map(|v| v.name.clone()).collect();
        assert_eq!(listed, ["alpha", "beta"], "listing is name-ordered");
        assert!(matches!(r.get("gamma"), Err(RegistryError::UnknownModel(_))));
        assert!(matches!(
            r.insert("no/slash", bundle("x", false), None),
            Err(RegistryError::BadName(_))
        ));
        let v = r.get("alpha").unwrap();
        assert_eq!(v.version, 1);
        assert!(v.checksum.starts_with("fnv1a64:"));
    }

    #[test]
    fn load_dir_registers_by_stem_and_rejects_unknown_default() {
        let dir = tmp_dir("load_dir");
        bundle("ds-a", false).save(dir.join("alpha.json")).unwrap();
        bundle("ds-b", false).save(dir.join("beta.json")).unwrap();
        let r = ModelRegistry::load_dir(&dir, None, 0, Arc::new(Metrics::new())).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.default_name(), "alpha", "lexicographic default");
        assert_eq!(r.get("beta").unwrap().bundle.provenance.dataset, "ds-b");
        let r = ModelRegistry::load_dir(&dir, Some("beta".into()), 0, Arc::new(Metrics::new()))
            .unwrap();
        assert_eq!(r.default_name(), "beta");
        assert!(matches!(
            ModelRegistry::load_dir(&dir, Some("nope".into()), 0, Arc::new(Metrics::new())),
            Err(RegistryError::UnknownModel(_))
        ));
        let empty = tmp_dir("load_dir_empty");
        assert!(matches!(
            ModelRegistry::load_dir(&empty, None, 0, Arc::new(Metrics::new())),
            Err(RegistryError::Empty(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn swap_bumps_version_and_failure_rolls_back() {
        let dir = tmp_dir("swap");
        let path = dir.join("m.json");
        bundle("gen-1", false).save(&path).unwrap();
        let r = ModelRegistry::new("m", 0, Arc::new(Metrics::new()));
        r.insert("m", ModelBundle::load(&path).unwrap(), Some(path.clone())).unwrap();
        let v1 = r.get("m").unwrap();
        assert_eq!((v1.version, v1.bundle.provenance.dataset.as_str()), (1, "gen-1"));

        bundle("gen-2", false).save(&path).unwrap();
        let v2 = r.swap("m", None).unwrap();
        assert_eq!((v2.version, v2.bundle.provenance.dataset.as_str()), (2, "gen-2"));
        assert_ne!(v1.checksum, v2.checksum);

        // A corrupt artifact fails the swap and the old version serves on.
        std::fs::write(&path, "{ not a bundle").unwrap();
        assert!(matches!(r.swap("m", None), Err(RegistryError::Load(_))));
        let still = r.get("m").unwrap();
        assert_eq!((still.version, still.bundle.provenance.dataset.as_str()), (2, "gen-2"));

        assert!(matches!(r.swap("ghost", None), Err(RegistryError::UnknownModel(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_caps_compiled_residency_and_counts_evictions() {
        let metrics = Arc::new(Metrics::new());
        let r = ModelRegistry::new("m0", 2, Arc::clone(&metrics));
        for i in 0..3 {
            r.insert(format!("m{i}").as_str(), bundle(&format!("ds{i}"), false), None).unwrap();
        }
        let v0 = r.get("m0").unwrap();
        let v1 = r.get("m1").unwrap();
        let v2 = r.get("m2").unwrap();
        r.touch(&v0);
        r.touch(&v1);
        assert_eq!(r.resident(), 2);
        assert!(v0.bundle.compiled_resident() && v1.bundle.compiled_resident());
        // Third model compiles; m0 (coldest) is evicted.
        r.touch(&v2);
        assert_eq!(r.resident(), 2);
        assert!(!v0.bundle.compiled_resident(), "coldest bundle evicted");
        assert!(v1.bundle.compiled_resident() && v2.bundle.compiled_resident());
        // Touching m1 keeps it warm, so re-touching m0 evicts m2... no:
        // after the touch order m1, m0 the coldest is m2.
        r.touch(&v1);
        r.touch(&v0);
        assert!(!v2.bundle.compiled_resident(), "LRU order, not FIFO");
        assert!(v1.bundle.compiled_resident() && v0.bundle.compiled_resident());
        let snap = metrics.snapshot();
        assert_eq!(snap.compile_evictions, 2);
        assert_eq!(snap.models_resident, 2);
        // Evicted-and-retouched models still classify correctly.
        let p = v0.bundle.classify_row(&[1.0, 4.0]).unwrap();
        assert_eq!(p.label, "neg");
    }

    #[test]
    fn unlimited_residency_never_evicts() {
        let metrics = Arc::new(Metrics::new());
        let r = ModelRegistry::new("m0", 0, Arc::clone(&metrics));
        let versions: Vec<_> = (0..4)
            .map(|i| {
                r.insert(format!("m{i}").as_str(), bundle(&format!("ds{i}"), false), None).unwrap()
            })
            .collect();
        for v in &versions {
            r.touch(v);
        }
        assert_eq!(r.resident(), 4);
        assert_eq!(metrics.snapshot().compile_evictions, 0);
    }

    #[test]
    fn swapped_out_versions_fall_off_the_lru() {
        let dir = tmp_dir("lru_swap");
        let path = dir.join("m.json");
        bundle("gen-1", false).save(&path).unwrap();
        let r = ModelRegistry::new("m", 2, Arc::new(Metrics::new()));
        r.insert("m", ModelBundle::load(&path).unwrap(), Some(path.clone())).unwrap();
        let v1 = r.get("m").unwrap();
        r.touch(&v1);
        assert_eq!(r.resident(), 1);
        bundle("gen-2", false).save(&path).unwrap();
        let v2 = r.swap("m", None).unwrap();
        r.touch(&v2);
        drop(v1); // last strong ref to the old version's bundle
        assert_eq!(r.resident(), 1, "stale weak entries prune themselves");
        std::fs::remove_dir_all(&dir).ok();
    }
}
