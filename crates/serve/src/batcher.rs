//! Cross-connection adaptive micro-batching between the HTTP workers
//! and the compiled kernel.
//!
//! Without batching every `/classify` — even at thousands of requests
//! per second — streams the whole compiled mask table through cache once
//! per query: concurrent traffic pays model-traffic × concurrency. The
//! batcher collapses that to × 1: workers parse and binarize requests,
//! then submit a [`Job`] to a bounded submission queue; a single batcher
//! thread coalesces jobs and runs the batch-sweep kernel
//! ([`bstc::CompiledModel::class_values_batch_into`]) once per batch, so
//! each column's masks are loaded from memory once and serve every
//! member query while cache-hot.
//!
//! ## Adaptive drain policy
//!
//! Jobs coalesce up to `max_batch` or `batch_wait`, whichever comes
//! first — but the wait is *adaptive*: immediately available jobs are
//! drained without blocking, and only a **lone** job idle-waits for
//! company. The moment a batch holds two or more jobs, an empty queue
//! means "go", not "wait" — under load the queue refills while the
//! kernel runs, so coalescing emerges from execution backpressure
//! rather than added latency; at light load a single request pays at
//! most `batch_wait` extra.
//!
//! ## No job left behind
//!
//! Every submitted job gets exactly one completion:
//!
//! * completions travel over a rendezvous channel created per job —
//!   the consumed sender makes double-completion unrepresentable;
//! * jobs whose deadline expired while queued complete as
//!   [`Outcome::Expired`] (the worker answers 408) without costing
//!   kernel time;
//! * batch execution runs under `catch_unwind` (with the `batcher`
//!   chaos site inside): a panic drops the unfinished jobs' senders,
//!   which wakes their workers with a disconnect error (a structured
//!   500), and the batcher thread survives to serve the next batch;
//! * on shutdown the submission queue drains before closing
//!   ([`crate::queue::BoundedQueue::close`] semantics), so admitted
//!   jobs are still executed;
//! * when the submission queue is full, [`Batcher::submit`] hands the
//!   queries straight back and the worker classifies inline — graceful
//!   degradation to the unbatched path instead of queueing without
//!   bound.

use crate::bundle::{ModelBundle, Prediction};
use crate::chaos;
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, Pop};
use bstc::{pool, ParBatchScratch};
use microarray::BitSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the batcher is configured (`bstc-cli serve --max-batch /
/// --batch-wait-us`).
#[derive(Clone, Debug)]
pub struct BatcherConfig {
    /// Most jobs coalesced into one kernel execution.
    pub max_batch: usize,
    /// How long a lone job waits for company before executing anyway.
    pub batch_wait: Duration,
    /// Submission-queue depth; submissions beyond it fall back to
    /// inline classification on the worker.
    pub queue_depth: usize,
    /// Column-block budget for the batch-sweep kernel, in bytes of
    /// compiled mask data (`bstc-cli serve --kernel-block-bytes`);
    /// 0 selects [`bstc::compiled::DEFAULT_KERNEL_BLOCK_BYTES`].
    pub kernel_block_bytes: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 32,
            batch_wait: Duration::from_micros(200),
            queue_depth: 1024,
            kernel_block_bytes: 0,
        }
    }
}

/// One worker's classify request, parsed and binarized, awaiting batch
/// execution.
pub struct Job {
    /// The bundle snapshot the worker parsed against. Carried per job so
    /// a hot `/reload` mid-flight cannot desync query widths; the
    /// batcher groups jobs by bundle identity.
    bundle: Arc<ModelBundle>,
    /// Binarized queries (one per input row; possibly empty).
    queries: Vec<BitSet>,
    /// The request's `X-Request-Id`, logged per batch for span joins.
    request_id: String,
    /// Wall-clock point after which the worker no longer wants the
    /// answer.
    deadline: Option<Instant>,
    submitted: Instant,
    completion: SyncSender<Completion>,
}

/// What batch execution produced for one job.
pub enum Outcome {
    /// One prediction per submitted query, in order.
    Predictions(Vec<Prediction>),
    /// The job's deadline expired while it waited in the queue.
    Expired,
}

/// The answer a worker receives for one submitted [`Job`].
pub struct Completion {
    /// Id of the batch execution that served this job (joins the
    /// request's log line to its `classify_batch` span).
    pub batch_id: String,
    /// The job's result.
    pub outcome: Outcome,
}

/// Handle for submitting jobs to the batcher thread.
pub struct Batcher {
    queue: Arc<BoundedQueue<Job>>,
    max_batch: usize,
    batch_wait: Duration,
}

/// Cadence at which the idle batcher re-checks for work and shutdown.
const IDLE_POLL: Duration = Duration::from_millis(250);

impl Batcher {
    /// Spawns the batcher thread. Join the returned handle after
    /// [`Batcher::close`] during shutdown.
    pub fn start(config: BatcherConfig, metrics: Arc<Metrics>) -> (Batcher, JoinHandle<()>) {
        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let batcher = Batcher {
            queue: Arc::clone(&queue),
            max_batch: config.max_batch.max(1),
            batch_wait: config.batch_wait,
        };
        let max_batch = batcher.max_batch;
        let batch_wait = batcher.batch_wait;
        let block_bytes = config.kernel_block_bytes;
        let thread = std::thread::Builder::new()
            .name("bstc-serve-batcher".into())
            .spawn(move || run(&queue, &metrics, max_batch, batch_wait, block_bytes))
            .expect("spawn batcher");
        (batcher, thread)
    }

    /// Submits one job and returns the channel its [`Completion`] will
    /// arrive on. When the submission queue is full (or closing), the
    /// queries are handed back so the worker can classify inline.
    pub fn submit(
        &self,
        bundle: &Arc<ModelBundle>,
        queries: Vec<BitSet>,
        request_id: &str,
        deadline: Option<Instant>,
    ) -> Result<Receiver<Completion>, Vec<BitSet>> {
        // Rendezvous with room for one: the batcher's send never blocks,
        // and an abandoned receiver (worker timed out) never wedges it.
        let (tx, rx) = sync_channel(1);
        let job = Job {
            bundle: Arc::clone(bundle),
            queries,
            request_id: request_id.to_string(),
            deadline,
            submitted: Instant::now(),
            completion: tx,
        };
        self.queue.push(job).map(|()| rx).map_err(|job| job.queries)
    }

    /// Closes the submission queue: queued jobs still execute, further
    /// submissions fall back inline, and the batcher thread exits once
    /// drained.
    pub fn close(&self) {
        self.queue.close();
    }
}

/// The batcher thread: pick up work, coalesce, execute, repeat.
fn run(
    queue: &BoundedQueue<Job>,
    metrics: &Metrics,
    max_batch: usize,
    batch_wait: Duration,
    block_bytes: usize,
) {
    let mut scratch = ParBatchScratch::new();
    scratch.set_block_bytes(block_bytes);
    let mut batch: Vec<Job> = Vec::with_capacity(max_batch);
    let mut flat: Vec<BitSet> = Vec::new();
    // Rotates the per-model group order across executions so no model's
    // jobs systematically run first (fair scheduling under mixed load).
    let mut rotation = 0usize;
    loop {
        match queue.pop(IDLE_POLL) {
            Pop::Item(first) => {
                batch.clear();
                batch.push(first);
                collect_batch(queue, &mut batch, max_batch, batch_wait);
                execute_batch(&mut batch, &mut flat, &mut scratch, metrics, rotation);
                rotation = rotation.wrapping_add(1);
            }
            Pop::Empty => continue,
            // Close drains queued items first, so every admitted job was
            // executed by the time we get here.
            Pop::Closed => break,
        }
    }
}

/// The adaptive drain policy (see the module docs): drain what's there,
/// idle-wait only while the batch holds a single job.
fn collect_batch(
    queue: &BoundedQueue<Job>,
    batch: &mut Vec<Job>,
    max_batch: usize,
    batch_wait: Duration,
) {
    let wait_deadline = Instant::now() + batch_wait;
    while batch.len() < max_batch {
        if let Some(job) = queue.try_pop() {
            batch.push(job);
            continue;
        }
        // Queue momentarily empty. With company already on board,
        // execute now — waiting would trade latency for nothing, the
        // queue refills while the kernel runs.
        if batch.len() > 1 {
            return;
        }
        let now = Instant::now();
        if now >= wait_deadline {
            return;
        }
        match queue.pop(wait_deadline - now) {
            Pop::Item(job) => batch.push(job),
            Pop::Empty | Pop::Closed => return,
        }
    }
}

/// Executes one coalesced batch and completes every member job.
fn execute_batch(
    batch: &mut Vec<Job>,
    flat: &mut Vec<BitSet>,
    scratch: &mut ParBatchScratch,
    metrics: &Metrics,
    rotation: usize,
) {
    let batch_id = obs::log::request_id();
    metrics.record_batch(batch.len() as u64);
    let mut request_ids = String::new();
    let mut n_queries = 0usize;
    for job in batch.iter() {
        let waited = u64::try_from(job.submitted.elapsed().as_micros()).unwrap_or(u64::MAX);
        metrics.record_batch_wait_us(waited);
        if !request_ids.is_empty() {
            request_ids.push(',');
        }
        request_ids.push_str(&job.request_id);
        n_queries += job.queries.len();
    }
    // The batch → members join: one line per execution mapping batch_id
    // to every member request id, so a request's log line (which carries
    // batch_id) resolves to the classify_batch span that served it.
    obs::log::info(
        "classify_batch",
        &[
            ("batch_id", batch_id.as_str()),
            ("request_ids", request_ids.as_str()),
            ("jobs", &batch.len().to_string()),
            ("queries", &n_queries.to_string()),
        ],
    );
    // Panic isolation: an unwinding execution drops the unfinished jobs'
    // senders, which wakes their workers with a disconnect (-> 500), and
    // this thread lives on.
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _stage = obs::Stage::enter("classify_batch");
        chaos::point("batcher");
        // Partition the whole batch by bundle identity (a registry fleet
        // interleaves models; a hot /reload splits one model mid-stream
        // the same way), preserving arrival order within each group so
        // every job is evaluated against the exact model it was parsed
        // for. Groups then execute in rotated order: over many batches
        // each model's group goes first equally often, so one chatty
        // model cannot systematically add its kernel time ahead of
        // everyone else's completions.
        let mut groups: Vec<Vec<Job>> = Vec::new();
        for job in std::mem::take(batch) {
            match groups.iter_mut().find(|g| Arc::ptr_eq(&g[0].bundle, &job.bundle)) {
                Some(group) => group.push(job),
                None => groups.push(vec![job]),
            }
        }
        metrics.record_batch_model_switches(groups.len().saturating_sub(1) as u64);
        let start = if groups.is_empty() { 0 } else { rotation % groups.len() };
        groups.rotate_left(start);
        for group in groups {
            run_group(group, flat, scratch, &batch_id);
        }
    }));
    if outcome.is_err() {
        // A panic before the take left jobs in `batch`; one mid-stream
        // dropped the closure-local rest in the unwind. Either way, drop
        // every unanswered job now so its sender releases and the worker
        // observes the disconnect immediately.
        batch.clear();
        // The scratch may be mid-mutation; replace it wholesale
        // (preserving the configured block budget).
        let block_bytes = scratch.block_bytes();
        *scratch = ParBatchScratch::new();
        scratch.set_block_bytes(block_bytes);
        metrics.record_batch_panic();
        obs::log::warn("batch_panicked", &[("batch_id", batch_id.as_str())]);
    }
}

/// Runs the batch kernel over one same-bundle group and completes its
/// jobs.
fn run_group(
    group: Vec<Job>,
    flat: &mut Vec<BitSet>,
    scratch: &mut ParBatchScratch,
    batch_id: &str,
) {
    let now = Instant::now();
    let mut live = Vec::with_capacity(group.len());
    for job in group {
        if job.deadline.is_some_and(|d| now >= d) {
            let _ = job
                .completion
                .send(Completion { batch_id: batch_id.to_string(), outcome: Outcome::Expired });
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }
    let bundle = Arc::clone(&live[0].bundle);
    flat.clear();
    let mut ranges = Vec::with_capacity(live.len());
    for job in live.iter_mut() {
        let start = flat.len();
        flat.append(&mut job.queries);
        ranges.push(start..flat.len());
    }
    // One pass over the compiled masks serves every query of the group,
    // split across the process-wide worker pool when the batch carries
    // enough mask traffic to amortize the fan-out.
    bundle.compiled().class_values_batch_par_into(flat, pool::global(), scratch);
    for (job, range) in live.into_iter().zip(ranges) {
        let predictions: Vec<Prediction> =
            range.map(|qi| bundle.prediction_from_values(scratch.values_of(qi))).collect();
        // A send can only fail if the worker gave up (recv timeout);
        // the job is still accounted for on the worker side.
        let _ = job.completion.send(Completion {
            batch_id: batch_id.to_string(),
            outcome: Outcome::Predictions(predictions),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::Provenance;
    use crate::chaos::{Fault, Trigger};
    use microarray::ContinuousDataset;
    use std::sync::mpsc::RecvTimeoutError;

    fn toy_bundle() -> Arc<ModelBundle> {
        let data = ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 5.0],
                vec![1.2, 3.0],
                vec![0.8, 5.5],
                vec![1.1, 2.9],
                vec![9.0, 5.1],
                vec![9.2, 3.2],
                vec![8.9, 5.2],
                vec![9.1, 3.1],
            ],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
        .unwrap();
        Arc::new(ModelBundle::train(&data, Provenance::new("toy", None)).unwrap())
    }

    fn job(bundle: &Arc<ModelBundle>, rows: &[&[f64]]) -> (Job, Receiver<Completion>) {
        let (tx, rx) = sync_channel(1);
        let queries = rows.iter().map(|r| bundle.query_for_row(r).unwrap()).collect();
        (
            Job {
                bundle: Arc::clone(bundle),
                queries,
                request_id: obs::log::request_id(),
                deadline: None,
                submitted: Instant::now(),
                completion: tx,
            },
            rx,
        )
    }

    #[test]
    fn collect_stops_at_max_batch_and_leaves_the_rest() {
        let bundle = toy_bundle();
        let queue = BoundedQueue::new(16);
        let mut receivers = Vec::new();
        for _ in 0..6 {
            let (j, rx) = job(&bundle, &[&[1.0, 4.0]]);
            queue.push(j).ok().unwrap();
            receivers.push(rx);
        }
        let mut batch = vec![match queue.pop(Duration::from_millis(10)) {
            Pop::Item(j) => j,
            _ => panic!("expected a job"),
        }];
        collect_batch(&queue, &mut batch, 4, Duration::from_secs(10));
        assert_eq!(batch.len(), 4, "full batch caps at max_batch");
        assert_eq!(queue.len(), 2, "excess jobs stay queued for the next batch");
    }

    #[test]
    fn lone_job_flushes_after_the_wait_timeout() {
        let bundle = toy_bundle();
        let queue: BoundedQueue<Job> = BoundedQueue::new(16);
        let (j, _rx) = job(&bundle, &[&[1.0, 4.0]]);
        let mut batch = vec![j];
        let started = Instant::now();
        collect_batch(&queue, &mut batch, 8, Duration::from_millis(30));
        assert_eq!(batch.len(), 1);
        let waited = started.elapsed();
        assert!(waited >= Duration::from_millis(25), "lone job must wait, waited {waited:?}");
    }

    #[test]
    fn hot_queue_executes_without_idle_waiting() {
        let bundle = toy_bundle();
        let queue = BoundedQueue::new(16);
        let mut receivers = Vec::new();
        for _ in 0..3 {
            let (j, rx) = job(&bundle, &[&[1.0, 4.0]]);
            queue.push(j).ok().unwrap();
            receivers.push(rx);
        }
        let mut batch = vec![match queue.pop(Duration::from_millis(10)) {
            Pop::Item(j) => j,
            _ => panic!("expected a job"),
        }];
        let started = Instant::now();
        // A 10 s wait that is never taken: company on board means an
        // empty queue triggers execution, not idling.
        collect_batch(&queue, &mut batch, 8, Duration::from_secs(10));
        assert_eq!(batch.len(), 3, "drains what's there");
        assert!(started.elapsed() < Duration::from_secs(2), "must not idle-wait while hot");
    }

    #[test]
    fn batch_execution_completes_every_job_with_correct_predictions() {
        let bundle = toy_bundle();
        let metrics = Arc::new(Metrics::new());
        let (batcher, thread) = Batcher::start(
            BatcherConfig {
                max_batch: 8,
                batch_wait: Duration::from_millis(5),
                queue_depth: 64,
                ..BatcherConfig::default()
            },
            Arc::clone(&metrics),
        );
        let rx_neg = batcher
            .submit(&bundle, vec![bundle.query_for_row(&[1.0, 4.0]).unwrap()], "r1", None)
            .ok()
            .unwrap();
        let rx_pos = batcher
            .submit(&bundle, vec![bundle.query_for_row(&[9.0, 4.0]).unwrap()], "r2", None)
            .ok()
            .unwrap();
        let neg = rx_neg.recv_timeout(Duration::from_secs(5)).unwrap();
        let pos = rx_pos.recv_timeout(Duration::from_secs(5)).unwrap();
        let (Outcome::Predictions(neg), Outcome::Predictions(pos)) = (neg.outcome, pos.outcome)
        else {
            panic!("expected predictions");
        };
        assert_eq!(neg[0].label, "neg");
        assert_eq!(pos[0].label, "pos");
        // Batched predictions are bit-identical to the per-query path.
        let reference = bundle.classify_row(&[1.0, 4.0]).unwrap();
        assert_eq!(neg[0].values, reference.values);
        assert_eq!(neg[0].confidence, reference.confidence);
        batcher.close();
        thread.join().unwrap();
        let snap = metrics.snapshot();
        assert!(snap.batches_executed >= 1);
    }

    #[test]
    fn shutdown_drains_queued_jobs_no_job_stranded() {
        let bundle = toy_bundle();
        let metrics = Arc::new(Metrics::new());
        // A long wait so jobs pile up behind the first batch.
        let (batcher, thread) = Batcher::start(
            BatcherConfig {
                max_batch: 64,
                batch_wait: Duration::from_millis(1),
                queue_depth: 64,
                ..BatcherConfig::default()
            },
            metrics,
        );
        let receivers: Vec<_> = (0..16)
            .map(|i| {
                let row = if i % 2 == 0 { [1.0, 4.0] } else { [9.0, 4.0] };
                batcher
                    .submit(
                        &bundle,
                        vec![bundle.query_for_row(&row).unwrap()],
                        &format!("r{i}"),
                        None,
                    )
                    .ok()
                    .unwrap()
            })
            .collect();
        // Close immediately: everything admitted must still complete.
        batcher.close();
        for (i, rx) in receivers.into_iter().enumerate() {
            let completion = rx
                .recv_timeout(Duration::from_secs(5))
                .unwrap_or_else(|e| panic!("job {i} stranded: {e:?}"));
            let Outcome::Predictions(ps) = completion.outcome else {
                panic!("job {i}: expected predictions");
            };
            assert_eq!(ps.len(), 1);
        }
        thread.join().unwrap();
    }

    #[test]
    fn expired_jobs_complete_as_expired_not_stranded() {
        let bundle = toy_bundle();
        let metrics = Arc::new(Metrics::new());
        let (batcher, thread) = Batcher::start(BatcherConfig::default(), metrics);
        let expired = Instant::now() - Duration::from_millis(1);
        let rx = batcher
            .submit(
                &bundle,
                vec![bundle.query_for_row(&[1.0, 4.0]).unwrap()],
                "r-late",
                Some(expired),
            )
            .ok()
            .unwrap();
        let completion = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(completion.outcome, Outcome::Expired));
        batcher.close();
        thread.join().unwrap();
    }

    #[test]
    fn full_queue_hands_queries_back_for_inline_fallback() {
        let bundle = toy_bundle();
        let metrics = Arc::new(Metrics::new());
        // Depth 1 and a batcher kept busy by a closed-over first job is
        // racy; instead just close the queue so pushes fail immediately.
        let (batcher, thread) =
            Batcher::start(BatcherConfig { queue_depth: 1, ..BatcherConfig::default() }, metrics);
        batcher.close();
        let queries = vec![bundle.query_for_row(&[1.0, 4.0]).unwrap()];
        let returned = batcher.submit(&bundle, queries, "r", None).expect_err("must bounce");
        assert_eq!(returned.len(), 1, "queries come back for the inline path");
        thread.join().unwrap();
    }

    fn wide_bundle() -> Arc<ModelBundle> {
        // Three genes, so queries are a different width than toy_bundle's:
        // mixing them in one kernel pass would be memory-unsafe nonsense.
        let data = ContinuousDataset::new(
            vec!["gA".into(), "gB".into(), "gC".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 5.0, 2.0],
                vec![1.2, 3.0, 2.2],
                vec![0.8, 5.5, 1.8],
                vec![1.1, 2.9, 2.1],
                vec![9.0, 5.1, 7.0],
                vec![9.2, 3.2, 7.2],
                vec![8.9, 5.2, 6.8],
                vec![9.1, 3.1, 7.1],
            ],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
        .unwrap();
        Arc::new(ModelBundle::train(&data, Provenance::new("toy-wide", None)).unwrap())
    }

    #[test]
    fn mixed_model_batch_groups_per_bundle_and_counts_switches() {
        let narrow = toy_bundle();
        let wide = wide_bundle();
        let metrics = Metrics::new();
        let mut scratch = ParBatchScratch::new();
        let mut flat = Vec::new();
        // Jobs interleaved narrow/wide/narrow/wide: the partition must
        // run exactly two kernel groups, never a mixed-width one.
        let mut batch = Vec::new();
        let mut receivers = Vec::new();
        for i in 0..4 {
            let (j, rx) = if i % 2 == 0 {
                job(&narrow, &[&[1.0, 4.0]])
            } else {
                let (tx, rx) = sync_channel(1);
                (
                    Job {
                        bundle: Arc::clone(&wide),
                        queries: vec![wide.query_for_row(&[9.0, 4.0, 7.0]).unwrap()],
                        request_id: format!("w{i}"),
                        deadline: None,
                        submitted: Instant::now(),
                        completion: tx,
                    },
                    rx,
                )
            };
            batch.push(j);
            receivers.push(rx);
        }
        execute_batch(&mut batch, &mut flat, &mut scratch, &metrics, 1);
        for (i, rx) in receivers.into_iter().enumerate() {
            let completion = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            let Outcome::Predictions(ps) = completion.outcome else {
                panic!("job {i}: expected predictions");
            };
            let expected = if i % 2 == 0 {
                narrow.classify_row(&[1.0, 4.0]).unwrap()
            } else {
                wide.classify_row(&[9.0, 4.0, 7.0]).unwrap()
            };
            assert_eq!(ps[0].values, expected.values, "job {i} ran on its own bundle");
        }
        // Two groups in one execution = one model switch.
        assert_eq!(metrics.snapshot().batch_model_switches, 1);
    }

    #[test]
    fn injected_panic_fails_jobs_cleanly_and_batcher_survives() {
        let bundle = toy_bundle();
        let metrics = Arc::new(Metrics::new());
        let (batcher, thread) = Batcher::start(
            BatcherConfig {
                max_batch: 8,
                batch_wait: Duration::from_millis(50),
                queue_depth: 64,
                ..BatcherConfig::default()
            },
            Arc::clone(&metrics),
        );
        chaos::inject("batcher", Fault::Panic, Trigger::Times(1));
        let rx_a = batcher
            .submit(&bundle, vec![bundle.query_for_row(&[1.0, 4.0]).unwrap()], "a", None)
            .ok()
            .unwrap();
        // The doomed batch: its worker must observe a disconnect, not a
        // hang.
        match rx_a.recv_timeout(Duration::from_secs(5)) {
            Err(RecvTimeoutError::Disconnected) => {}
            Ok(_) => panic!("batch should have panicked"),
            Err(RecvTimeoutError::Timeout) => panic!("job stranded after batch panic"),
        }
        // The batcher thread survived and serves the next job normally.
        let rx_b = batcher
            .submit(&bundle, vec![bundle.query_for_row(&[9.0, 4.0]).unwrap()], "b", None)
            .ok()
            .unwrap();
        let completion = rx_b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(completion.outcome, Outcome::Predictions(_)));
        chaos::clear_site("batcher");
        assert_eq!(metrics.snapshot().batch_panics, 1);
        batcher.close();
        thread.join().unwrap();
    }
}
