//! A poison-free bounded hand-off queue between the acceptor and the
//! worker pool.
//!
//! The PR-1 server handed connections over an unbounded `mpsc` channel
//! behind a `Mutex<Receiver>`. That design had two reliability holes:
//! overload queued connections forever (unbounded tail latency), and a
//! worker panicking while holding the receiver lock poisoned it, taking
//! every *other* worker down with `expect("worker poisoned")`.
//!
//! [`BoundedQueue`] fixes both. Capacity is fixed at construction —
//! [`BoundedQueue::push`] never blocks and hands the item straight back
//! when full, so the acceptor can shed load with an immediate `503`
//! instead of growing a queue. Every lock acquisition recovers from
//! poisoning via [`PoisonError::into_inner`]: the protected state is a
//! plain `VecDeque` plus two flags, which no panicking thread can leave
//! half-updated in a way that matters, so a dead worker never disables
//! its peers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What a [`BoundedQueue::pop`] produced.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue open but empty — poll again.
    Empty,
    /// The queue is closed and fully drained — the consumer should exit.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

/// A fixed-capacity multi-producer/multi-consumer queue that never
/// poisons and never blocks producers.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                capacity,
                closed: false,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// Locks the state, recovering from poisoning: the invariants are
    /// simple enough that a panicked holder cannot corrupt them.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues without blocking. Returns the item when the queue is at
    /// capacity (or closed) so the caller can shed it.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= inner.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues, waiting at most `timeout` for an item. Items still
    /// queued when [`BoundedQueue::close`] is called are drained before
    /// any consumer sees [`Pop::Closed`].
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut inner = self.lock();
        if let Some(item) = inner.items.pop_front() {
            return Pop::Item(item);
        }
        if inner.closed {
            return Pop::Closed;
        }
        let (mut inner, _timed_out) =
            self.not_empty.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        match inner.items.pop_front() {
            Some(item) => Pop::Item(item),
            None if inner.closed => Pop::Closed,
            None => Pop::Empty,
        }
    }

    /// Dequeues an immediately available item without waiting (the
    /// batcher's drain-what's-there step). Returns `None` when the queue
    /// is momentarily empty, open or closed alike — use
    /// [`BoundedQueue::pop`] to distinguish.
    pub fn try_pop(&self) -> Option<T> {
        self.lock().items.pop_front()
    }

    /// Closes the queue: pushes start failing and consumers drain the
    /// remaining items, then observe [`Pop::Closed`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_sheds_at_capacity_and_pop_drains_in_order() {
        let q = BoundedQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(1)));
        assert!(q.push(3).is_ok());
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(2)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(3)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Empty));
    }

    #[test]
    fn close_drains_queued_items_before_reporting_closed() {
        let q = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(8));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(7)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Closed));
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop(Duration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert!(matches!(waiter.join().unwrap(), Pop::Closed));
    }

    #[test]
    fn survives_a_panicking_lock_holder() {
        let q = Arc::new(BoundedQueue::new(2));
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = q.lock();
                panic!("poison the mutex on purpose");
            })
        };
        assert!(poisoner.join().is_err());
        // A poisoned std Mutex would now fail every lock(); ours recovers.
        assert!(q.push(1).is_ok());
        assert!(matches!(q.pop(Duration::from_millis(1)), Pop::Item(1)));
    }
}
