//! Versioned, checksummed model artifacts.
//!
//! A [`ModelBundle`] packages everything needed to serve BSTC predictions
//! on **raw continuous expression vectors**: the trained [`BstcModel`],
//! the fitted [`Discretizer`] (cut points + item layout), the item/gene
//! vocabulary, the class labels, and provenance (dataset name, seed,
//! training accuracy, producing tool).
//!
//! On disk a bundle is a JSON envelope
//!
//! ```json
//! { "format_version": 2,
//!   "checksum": "fnv1a64:<16 hex digits>",
//!   "bundle": { ... } }
//! ```
//!
//! where `checksum` is FNV-1a (64-bit) over the *compact* serialization
//! of the `bundle` value. [`ModelBundle::from_json`] refuses unknown
//! format versions and corrupted payloads before deserializing, so a
//! serving process can never hot-swap in a half-written file.

use bstc::{BstcModel, CompiledModel, Scratch};
use discretize::Discretizer;
use microarray::ContinuousDataset;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// The bundle format this build writes and accepts. v2 switched the
/// model's exclusion-list items to the compact gap-hex string encoding;
/// v1 bundles are refused rather than silently misread.
pub const FORMAT_VERSION: u64 = 2;

/// Where a bundle came from — carried verbatim, surfaced by `GET /model`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Name of the training dataset (free-form, e.g. `"ALL/AML"`).
    pub dataset: String,
    /// RNG seed used to produce the training data, when synthetic.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Resubstitution accuracy on the training split, in `[0, 1]`.
    #[serde(default)]
    pub train_accuracy: Option<f64>,
    /// The producing tool and version.
    pub tool: String,
}

impl Provenance {
    /// Provenance for a locally trained bundle.
    pub fn new(dataset: impl Into<String>, seed: Option<u64>) -> Provenance {
        Provenance {
            dataset: dataset.into(),
            seed,
            train_accuracy: None,
            tool: concat!("bstc-repro ", env!("CARGO_PKG_VERSION")).to_string(),
        }
    }
}

/// A self-contained, servable BSTC model artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Provenance metadata.
    pub provenance: Provenance,
    /// Class labels, indexed by `ClassId`.
    pub class_names: Vec<String>,
    /// Boolean item vocabulary (`gene@[lo,hi)`), indexed by item id.
    pub item_names: Vec<String>,
    /// Fitted cut points: maps raw gene vectors to boolean items.
    pub discretizer: Discretizer,
    /// The trained classifier (the serialized reference form).
    pub model: BstcModel,
    /// The word-parallel evaluation form of `model`, lowered lazily on
    /// first use and never serialized (it is derived state).
    #[serde(skip)]
    compiled: CompiledSlot,
}

/// An evictable cache slot for the bundle's [`CompiledModel`].
///
/// PR 2 cached the compiled form in a `OnceLock`, which is
/// fill-once-forever — fine for a single served model, wrong for a
/// registry that caps how many *compiled* models stay resident. This
/// slot hands out `Arc<CompiledModel>` clones, so the registry's LRU can
/// [`ModelBundle::evict_compiled`] the cache while every in-flight
/// request keeps classifying against the handle it already holds; the
/// next request simply re-lowers the model.
#[derive(Debug, Default)]
pub struct CompiledSlot(Mutex<Option<Arc<CompiledModel>>>);

impl Clone for CompiledSlot {
    /// Cloning a bundle shares the already-compiled form (it is pure
    /// derived state; recompiling would produce an identical model).
    fn clone(&self) -> CompiledSlot {
        CompiledSlot(Mutex::new(self.0.lock().unwrap_or_else(PoisonError::into_inner).clone()))
    }
}

/// One classification result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted class index.
    pub class: usize,
    /// Predicted class label.
    pub label: String,
    /// BSTCE classification value per class, indexed by class id.
    pub values: Vec<f64>,
    /// Normalized gap between the two best class values (§8 heuristic).
    pub confidence: f64,
}

/// Everything that can go wrong while loading or saving a bundle.
#[derive(Debug)]
pub enum BundleError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid JSON, or the payload does not deserialize.
    Json(String),
    /// The envelope is JSON but not shaped like a bundle.
    Envelope(String),
    /// The file was written by an incompatible format version.
    FormatVersion {
        /// Version found in the file.
        found: u64,
        /// Version this build understands.
        expected: u64,
    },
    /// The payload does not hash to the declared checksum.
    ChecksumMismatch {
        /// Checksum declared in the envelope.
        declared: String,
        /// Checksum computed over the payload.
        computed: String,
    },
    /// The payload deserialized but is internally inconsistent.
    Invalid(String),
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "bundle i/o error: {e}"),
            BundleError::Json(e) => write!(f, "bundle is not valid JSON: {e}"),
            BundleError::Envelope(e) => write!(f, "bad bundle envelope: {e}"),
            BundleError::FormatVersion { found, expected } => write!(
                f,
                "unsupported bundle format version {found} (this build reads version {expected})"
            ),
            BundleError::ChecksumMismatch { declared, computed } => write!(
                f,
                "bundle checksum mismatch: file declares {declared} but payload hashes to \
                 {computed} — the file is corrupt or was edited by hand"
            ),
            BundleError::Invalid(e) => write!(f, "bundle is internally inconsistent: {e}"),
        }
    }
}

impl BundleError {
    /// The HTTP status a failed `POST /reload` should answer with: a
    /// filesystem failure is the server's problem (500), while a file
    /// that exists but cannot be accepted — bad JSON, wrong version,
    /// checksum mismatch, inconsistent payload — conflicts with the
    /// serving state the caller tried to replace (409). Either way the
    /// old model keeps serving.
    pub fn http_status(&self) -> u16 {
        match self {
            BundleError::Io(_) => 500,
            BundleError::Json(_)
            | BundleError::Envelope(_)
            | BundleError::FormatVersion { .. }
            | BundleError::ChecksumMismatch { .. }
            | BundleError::Invalid(_) => 409,
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        BundleError::Io(e)
    }
}

/// A classify request whose input does not fit the bundle's gene universe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WrongVectorLength {
    /// Length of the offending input vector.
    pub got: usize,
    /// Gene count the discretizer was fitted on.
    pub expected: usize,
}

impl fmt::Display for WrongVectorLength {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expression vector has {} values but the model expects {} genes",
            self.got, self.expected
        )
    }
}

impl std::error::Error for WrongVectorLength {}

impl ModelBundle {
    /// Fits a discretizer on `data`, trains BSTC on the binarized result,
    /// measures resubstitution accuracy, and packages it all up.
    ///
    /// # Errors
    /// Returns [`BundleError::Invalid`] when the dataset has an empty
    /// class or no gene survives MDL discretization.
    pub fn train(
        data: &ContinuousDataset,
        provenance: Provenance,
    ) -> Result<ModelBundle, BundleError> {
        if let Some(c) = data.first_empty_class() {
            return Err(BundleError::Invalid(format!(
                "class {c} ('{}') has no training samples",
                data.class_names()[c]
            )));
        }
        let (discretizer, boolean) =
            Discretizer::fit_transform(data).map_err(|e| BundleError::Invalid(e.to_string()))?;
        let model = BstcModel::train(&boolean);
        let correct = (0..boolean.n_samples())
            .filter(|&s| model.classify(boolean.sample(s)) == boolean.label(s))
            .count();
        let mut provenance = provenance;
        provenance.train_accuracy = Some(correct as f64 / boolean.n_samples() as f64);
        Ok(ModelBundle {
            provenance,
            class_names: data.class_names().to_vec(),
            item_names: discretizer.item_names(),
            discretizer,
            model,
            compiled: CompiledSlot::default(),
        })
    }

    /// The compiled (word-parallel, scratch-driven) form of the model,
    /// lowered on first call and cached until [`Self::evict_compiled`].
    ///
    /// Concurrent first calls for the *same* bundle serialize on the slot
    /// lock (they all need the same result anyway); callers of distinct
    /// bundles never contend.
    pub fn compiled(&self) -> Arc<CompiledModel> {
        let mut slot = self.compiled.0.lock().unwrap_or_else(PoisonError::into_inner);
        match &*slot {
            Some(compiled) => Arc::clone(compiled),
            None => {
                let compiled = Arc::new(self.model.compile());
                *slot = Some(Arc::clone(&compiled));
                compiled
            }
        }
    }

    /// Drops the cached compiled form (the registry's LRU calls this when
    /// the resident cap is exceeded). Returns whether a compiled form was
    /// actually resident. In-flight classifications keep the `Arc` they
    /// already cloned; the next [`Self::compiled`] call re-lowers.
    pub fn evict_compiled(&self) -> bool {
        self.compiled.0.lock().unwrap_or_else(PoisonError::into_inner).take().is_some()
    }

    /// Whether a compiled form is currently cached (resident) without
    /// forcing compilation.
    pub fn compiled_resident(&self) -> bool {
        self.compiled.0.lock().unwrap_or_else(PoisonError::into_inner).is_some()
    }

    /// Number of raw gene values a classify input must supply.
    pub fn n_genes(&self) -> usize {
        self.discretizer.n_genes()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Classifies one raw expression vector: applies the fitted cut
    /// points, binarizes, and runs the compiled BSTCE kernels over every
    /// class BST (bit-identical to the reference path).
    ///
    /// # Errors
    /// Returns [`WrongVectorLength`] when `row` does not match the fitted
    /// gene count.
    pub fn classify_row(&self, row: &[f64]) -> Result<Prediction, WrongVectorLength> {
        self.classify_row_with(row, &mut Scratch::new())
    }

    /// [`ModelBundle::classify_row`] with caller-owned scratch memory —
    /// the serve worker loop keeps one [`Scratch`] per thread so the
    /// BSTCE evaluation underneath each request allocates nothing.
    pub fn classify_row_with(
        &self,
        row: &[f64],
        scratch: &mut Scratch,
    ) -> Result<Prediction, WrongVectorLength> {
        let query = self.query_for_row(row)?;
        self.compiled().class_values_into(&query, scratch);
        Ok(self.prediction_from_values(scratch.values()))
    }

    /// Validates and binarizes one raw expression vector into its boolean
    /// item set — the parse half of [`ModelBundle::classify_row_with`],
    /// split out so the batching stage can binarize on worker threads and
    /// hand ready-made queries to the shared batch kernel.
    ///
    /// # Errors
    /// Returns [`WrongVectorLength`] when `row` does not match the fitted
    /// gene count.
    pub fn query_for_row(&self, row: &[f64]) -> Result<microarray::BitSet, WrongVectorLength> {
        if row.len() != self.n_genes() {
            return Err(WrongVectorLength { got: row.len(), expected: self.n_genes() });
        }
        Ok(self.discretizer.transform_row(row).expect("a validated bundle has at least one item"))
    }

    /// Builds a [`Prediction`] from already-computed BSTCE class values
    /// (argmax ties break to the smallest class index, matching the
    /// reference classifier).
    pub fn prediction_from_values(&self, values: &[f64]) -> Prediction {
        let mut class = 0;
        for (i, &v) in values.iter().enumerate().skip(1) {
            if v > values[class] {
                class = i;
            }
        }
        Prediction {
            class,
            label: self.class_names[class].clone(),
            // One BSTCE pass serves both outputs: the §8 confidence gap is
            // a single top-2 scan over the values just computed.
            confidence: bstc::confidence_gap_of(values),
            values: values.to_vec(),
        }
    }

    /// Streams this bundle's canonical payload JSON (the `bundle` value
    /// of the envelope) into `w`, byte-identical to
    /// `serde_json::to_string(&serde_json::to_value(self))`. The small
    /// leaves (provenance, names, discretizer) go through the ordinary
    /// tree serializer; the model — which dominates any bundle — streams
    /// via [`BstcModel::write_json_to`], so no model-sized intermediate
    /// tree or string ever exists.
    fn write_payload<W: std::io::Write>(&self, w: &mut W) -> Result<(), BundleError> {
        fn leaf<T: Serialize>(v: &T) -> Result<String, BundleError> {
            serde_json::to_string(v).map_err(|e| BundleError::Json(e.to_string()))
        }
        w.write_all(b"{\"provenance\":")?;
        w.write_all(leaf(&self.provenance)?.as_bytes())?;
        w.write_all(b",\"class_names\":")?;
        w.write_all(leaf(&self.class_names)?.as_bytes())?;
        w.write_all(b",\"item_names\":")?;
        w.write_all(leaf(&self.item_names)?.as_bytes())?;
        w.write_all(b",\"discretizer\":")?;
        w.write_all(leaf(&self.discretizer)?.as_bytes())?;
        w.write_all(b",\"model\":")?;
        self.model.write_json_to(w)?;
        w.write_all(b"}")?;
        Ok(())
    }

    /// Streams the versioned, checksummed envelope into `w`.
    ///
    /// Two payload passes: the first runs the byte stream through the
    /// FNV-1a hasher only (no buffering), the second writes the envelope
    /// around the payload. Peak memory is the largest *leaf*
    /// serialization, not the whole artifact — [`Self::save`] and
    /// [`Self::to_json`] both ride this.
    ///
    /// # Errors
    /// Propagates serialization failures and `w`'s I/O errors.
    pub fn save_to_writer<W: std::io::Write>(&self, w: &mut W) -> Result<(), BundleError> {
        let mut fnv = FnvWriter::new();
        self.write_payload(&mut fnv)?;
        write!(
            w,
            "{{\"format_version\":{FORMAT_VERSION},\"checksum\":\"{}\",\"bundle\":",
            fnv.finish()
        )?;
        self.write_payload(w)?;
        w.write_all(b"}")?;
        Ok(())
    }

    /// The checksum of this bundle's canonical payload serialization —
    /// bit-identical to the `checksum` field [`Self::save`] writes, so a
    /// registry can report which artifact a served version corresponds
    /// to. Computed on demand (one hashing pass, no payload text);
    /// the registry caches it per version.
    pub fn content_checksum(&self) -> Result<String, BundleError> {
        let mut fnv = FnvWriter::new();
        self.write_payload(&mut fnv)?;
        Ok(fnv.finish())
    }

    /// Serializes to the versioned, checksummed JSON envelope as one
    /// string ([`Self::save_to_writer`] into a buffer — callers that can
    /// write to a sink directly should prefer the writer form).
    pub fn to_json(&self) -> Result<String, BundleError> {
        let mut buf = Vec::new();
        self.save_to_writer(&mut buf)?;
        String::from_utf8(buf).map_err(|e| BundleError::Json(e.to_string()))
    }

    /// Parses and fully verifies a JSON envelope: format version first,
    /// then checksum, then payload shape, then internal consistency.
    ///
    /// # Errors
    /// See [`BundleError`] — each failure mode maps to one variant.
    pub fn from_json(text: &str) -> Result<ModelBundle, BundleError> {
        let root: Value =
            serde_json::from_str(text).map_err(|e| BundleError::Json(e.to_string()))?;
        let version = root
            .get("format_version")
            .and_then(Value::as_u64)
            .ok_or_else(|| BundleError::Envelope("missing integer 'format_version'".into()))?;
        if version != FORMAT_VERSION {
            return Err(BundleError::FormatVersion { found: version, expected: FORMAT_VERSION });
        }
        let declared = root
            .get("checksum")
            .and_then(Value::as_str)
            .ok_or_else(|| BundleError::Envelope("missing string 'checksum'".into()))?
            .to_string();
        let payload = root
            .get("bundle")
            .cloned()
            .ok_or_else(|| BundleError::Envelope("missing object 'bundle'".into()))?;
        // Hash the canonical re-serialization as a byte stream instead of
        // materializing a second payload-sized string next to the parse
        // tree.
        let mut fnv = FnvWriter::new();
        write_value_json(&payload, &mut fnv).expect("hashing is infallible");
        let computed = fnv.finish();
        if declared != computed {
            return Err(BundleError::ChecksumMismatch { declared, computed });
        }
        let bundle: ModelBundle =
            serde_json::from_value(payload).map_err(|e| BundleError::Json(e.to_string()))?;
        bundle.validate()?;
        Ok(bundle)
    }

    /// Writes the envelope to a file, streaming through a buffered
    /// writer — the artifact never exists as one in-memory string.
    ///
    /// # Errors
    /// Propagates serialization and filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), BundleError> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.save_to_writer(&mut w)?;
        std::io::Write::flush(&mut w)?;
        Ok(())
    }

    /// Reads and verifies an envelope from a file.
    ///
    /// # Errors
    /// See [`BundleError`].
    pub fn load(path: impl AsRef<Path>) -> Result<ModelBundle, BundleError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Cross-field consistency checks run after deserialization.
    fn validate(&self) -> Result<(), BundleError> {
        if self.class_names.is_empty() {
            return Err(BundleError::Invalid("bundle has zero classes".into()));
        }
        if self.model.n_classes() != self.class_names.len() {
            return Err(BundleError::Invalid(format!(
                "model has {} class BSTs but {} class names",
                self.model.n_classes(),
                self.class_names.len()
            )));
        }
        if self.discretizer.n_items() == 0 {
            return Err(BundleError::Invalid("discretizer has zero items".into()));
        }
        if self.discretizer.n_items() != self.item_names.len() {
            return Err(BundleError::Invalid(format!(
                "discretizer produces {} items but the vocabulary lists {}",
                self.discretizer.n_items(),
                self.item_names.len()
            )));
        }
        Ok(())
    }
}

/// Incremental FNV-1a 64-bit over a byte stream, usable as an
/// `io::Write` sink — the checksum pass of the streaming saver runs the
/// payload bytes through this without buffering them.
struct FnvWriter {
    hash: u64,
}

impl FnvWriter {
    fn new() -> FnvWriter {
        FnvWriter { hash: 0xcbf2_9ce4_8422_2325 }
    }

    /// The digest so far, rendered as `fnv1a64:<16 hex digits>`.
    fn finish(&self) -> String {
        format!("fnv1a64:{:016x}", self.hash)
    }
}

impl std::io::Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for &b in buf {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams `value`'s compact JSON — byte-identical to
/// `serde_json::to_string(value)` — into `w`. Used by
/// [`ModelBundle::from_json`] to checksum a parsed payload without
/// materializing its canonical text a second time.
fn write_value_json<W: std::io::Write>(value: &Value, w: &mut W) -> std::io::Result<()> {
    match value {
        Value::Null => w.write_all(b"null"),
        Value::Bool(true) => w.write_all(b"true"),
        Value::Bool(false) => w.write_all(b"false"),
        Value::I64(v) => write!(w, "{v}"),
        Value::U64(v) => write!(w, "{v}"),
        Value::F64(v) => {
            if v.is_finite() {
                // `{}` on f64 is the shortest round-trippable form, the
                // same bytes the tree writer emits.
                write!(w, "{v}")
            } else {
                w.write_all(b"null")
            }
        }
        Value::Str(s) => write_escaped_json(s, w),
        Value::Seq(items) => {
            w.write_all(b"[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write_value_json(item, w)?;
            }
            w.write_all(b"]")
        }
        Value::Map(entries) => {
            w.write_all(b"{")?;
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    w.write_all(b",")?;
                }
                write_escaped_json(k, w)?;
                w.write_all(b":")?;
                write_value_json(v, w)?;
            }
            w.write_all(b"}")
        }
    }
}

/// JSON string escaping, matching the tree writer's escape table exactly.
fn write_escaped_json<W: std::io::Write>(s: &str, w: &mut W) -> std::io::Result<()> {
    w.write_all(b"\"")?;
    let mut buf = [0u8; 4];
    for ch in s.chars() {
        match ch {
            '"' => w.write_all(b"\\\"")?,
            '\\' => w.write_all(b"\\\\")?,
            '\n' => w.write_all(b"\\n")?,
            '\r' => w.write_all(b"\\r")?,
            '\t' => w.write_all(b"\\t")?,
            '\u{08}' => w.write_all(b"\\b")?,
            '\u{0c}' => w.write_all(b"\\f")?,
            c if (c as u32) < 0x20 => write!(w, "\\u{:04x}", c as u32)?,
            c => w.write_all(c.encode_utf8(&mut buf).as_bytes())?,
        }
    }
    w.write_all(b"\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ContinuousDataset {
        ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 5.0],
                vec![1.2, 3.0],
                vec![0.8, 5.5],
                vec![1.1, 2.9],
                vec![9.0, 5.1],
                vec![9.2, 3.2],
                vec![8.9, 5.2],
                vec![9.1, 3.1],
            ],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn train_fills_provenance_and_classifies() {
        let b = ModelBundle::train(&toy(), Provenance::new("toy", Some(7))).unwrap();
        assert_eq!(b.n_classes(), 2);
        assert_eq!(b.n_genes(), 2);
        assert_eq!(b.provenance.train_accuracy, Some(1.0));
        assert_eq!(b.provenance.seed, Some(7));
        let p = b.classify_row(&[0.9, 4.0]).unwrap();
        assert_eq!((p.class, p.label.as_str()), (0, "neg"));
        let p = b.classify_row(&[9.0, 4.0]).unwrap();
        assert_eq!((p.class, p.label.as_str()), (1, "pos"));
        assert!(p.confidence > 0.0);
        assert_eq!(p.values.len(), 2);
    }

    #[test]
    fn classify_rejects_wrong_length() {
        let b = ModelBundle::train(&toy(), Provenance::new("toy", None)).unwrap();
        let e = b.classify_row(&[1.0]).unwrap_err();
        assert_eq!(e, WrongVectorLength { got: 1, expected: 2 });
        assert!(e.to_string().contains("expects 2 genes"));
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let b = ModelBundle::train(&toy(), Provenance::new("toy", Some(1))).unwrap();
        let back = ModelBundle::from_json(&b.to_json().unwrap()).unwrap();
        for row in [[1.0, 5.0], [9.0, 3.0], [5.0, 4.0]] {
            let x = b.classify_row(&row).unwrap();
            let y = back.classify_row(&row).unwrap();
            assert_eq!(x.class, y.class);
            assert_eq!(x.values, y.values);
        }
        assert_eq!(back.provenance, b.provenance);
    }

    #[test]
    fn wrong_format_version_is_refused() {
        let b = ModelBundle::train(&toy(), Provenance::new("toy", None)).unwrap();
        let text = b
            .to_json()
            .unwrap()
            .replace(&format!("\"format_version\":{FORMAT_VERSION}"), "\"format_version\":99");
        match ModelBundle::from_json(&text) {
            Err(BundleError::FormatVersion { found: 99, expected: FORMAT_VERSION }) => {}
            other => panic!("expected FormatVersion error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_is_refused() {
        let b = ModelBundle::train(&toy(), Provenance::new("toy", None)).unwrap();
        let text = b.to_json().unwrap().replace("\"dataset\":\"toy\"", "\"dataset\":\"tam\"");
        assert!(matches!(ModelBundle::from_json(&text), Err(BundleError::ChecksumMismatch { .. })));
    }

    #[test]
    fn garbage_and_bad_envelopes_are_refused() {
        assert!(matches!(ModelBundle::from_json("not json"), Err(BundleError::Json(_))));
        assert!(matches!(ModelBundle::from_json("{}"), Err(BundleError::Envelope(_))));
        assert!(matches!(
            ModelBundle::from_json(&format!("{{\"format_version\":{FORMAT_VERSION}}}")),
            Err(BundleError::Envelope(_))
        ));
    }

    #[test]
    fn reload_errors_map_to_conflict_or_server_fault() {
        let io = BundleError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert_eq!(io.http_status(), 500);
        assert_eq!(BundleError::Json("nope".into()).http_status(), 409);
        assert_eq!(BundleError::FormatVersion { found: 9, expected: 1 }.http_status(), 409);
        let mismatch = BundleError::ChecksumMismatch { declared: "a".into(), computed: "b".into() };
        assert_eq!(mismatch.http_status(), 409);
    }

    #[test]
    fn compiled_slot_evicts_and_relowers() {
        let b = ModelBundle::train(&toy(), Provenance::new("toy", None)).unwrap();
        assert!(!b.compiled_resident(), "fresh bundle holds no compiled form");
        let held = b.compiled();
        assert!(b.compiled_resident());
        assert!(b.evict_compiled(), "eviction drops a resident form");
        assert!(!b.compiled_resident());
        assert!(!b.evict_compiled(), "double eviction is a no-op");
        // The held handle still classifies after eviction, and a fresh
        // compile produces identical answers.
        let query = b.query_for_row(&[1.0, 4.0]).unwrap();
        let mut scratch = Scratch::new();
        held.class_values_into(&query, &mut scratch);
        let old_values = scratch.values().to_vec();
        b.compiled().class_values_into(&query, &mut scratch);
        assert_eq!(old_values, scratch.values());
        assert!(b.compiled_resident(), "re-lowered form is cached again");
    }

    #[test]
    fn streaming_envelope_is_byte_identical_to_the_tree_serializer() {
        // The streaming saver must emit exactly what the historical
        // to_value → to_string → json! path emitted, or existing
        // artifacts' checksums (and FORMAT_VERSION 2 compatibility)
        // break.
        let b = ModelBundle::train(&toy(), Provenance::new("toy", Some(11))).unwrap();
        let payload = serde_json::to_value(&b).unwrap();
        let canonical = serde_json::to_string(&payload).unwrap();
        let mut hashed = FnvWriter::new();
        std::io::Write::write_all(&mut hashed, canonical.as_bytes()).unwrap();
        let envelope = serde_json::json!({
            "format_version": FORMAT_VERSION,
            "checksum": hashed.finish(),
            "bundle": payload
        });
        let tree = serde_json::to_string(&envelope).unwrap();
        assert_eq!(b.to_json().unwrap(), tree);
        // And the streamed canonical-value hash matches the text hash.
        let mut via_value = FnvWriter::new();
        write_value_json(&serde_json::to_value(&b).unwrap(), &mut via_value).unwrap();
        assert_eq!(via_value.finish(), b.content_checksum().unwrap());
    }

    #[test]
    fn content_checksum_matches_saved_envelope() {
        let b = ModelBundle::train(&toy(), Provenance::new("toy", Some(3))).unwrap();
        let envelope = b.to_json().unwrap();
        let declared: serde_json::Value = serde_json::from_str(&envelope).unwrap();
        assert_eq!(
            declared.get("checksum").unwrap().as_str().unwrap(),
            b.content_checksum().unwrap()
        );
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let b = ModelBundle::train(&toy(), Provenance::new("toy", None)).unwrap();
        let path = std::env::temp_dir().join(format!("bstc_bundle_{}.json", std::process::id()));
        b.save(&path).unwrap();
        let back = ModelBundle::load(&path).unwrap();
        assert_eq!(back.class_names, b.class_names);
        assert_eq!(back.item_names, b.item_names);
        std::fs::remove_file(&path).ok();
    }
}
