//! The concurrent inference server: a `TcpListener` acceptor feeding a
//! fixed pool of worker threads over a channel, with the live
//! [`ModelBundle`] behind `RwLock<Arc<...>>` so `POST /reload` can
//! hot-swap models while classify traffic keeps flowing.
//!
//! Endpoints:
//!
//! | route            | purpose                                            |
//! |------------------|----------------------------------------------------|
//! | `GET /health`    | liveness probe                                     |
//! | `GET /model`     | metadata of the currently served bundle            |
//! | `GET /metrics`   | plaintext counters + latency histogram             |
//! | `POST /classify` | classify one vector (`values`) or many (`samples`) |
//! | `POST /reload`   | re-read the bundle file and swap it in             |
//!
//! Every client error is a structured JSON 4xx: `{"error": <machine
//! code>, "detail": <human text>}`.

use crate::bundle::{ModelBundle, FORMAT_VERSION};
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::metrics::Metrics;
use bstc::Scratch;
use serde_json::{json, Value};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server is started.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8642` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads handling connections (0 = number of CPUs).
    pub threads: usize,
    /// File `POST /reload` re-reads; `None` disables reloading.
    pub bundle_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { addr: "127.0.0.1:0".into(), threads: 0, bundle_path: None }
    }
}

/// State shared by every worker.
struct Shared {
    bundle: RwLock<Arc<ModelBundle>>,
    bundle_path: Option<PathBuf>,
    metrics: Metrics,
    shutting_down: AtomicBool,
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or [`ServerHandle::wait`] to serve
/// forever).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// Idle keep-alive connections are polled at this cadence so workers
/// notice shutdown promptly.
const IDLE_POLL: Duration = Duration::from_millis(250);

/// Binds and starts serving `bundle` in background threads.
///
/// # Errors
/// Propagates socket failures (bind, local_addr).
pub fn serve(config: ServerConfig, bundle: ModelBundle) -> io::Result<ServerHandle> {
    // Lower the model into its compiled evaluation form before the first
    // request arrives (it is cached inside the bundle).
    bundle.compiled();
    let listener =
        TcpListener::bind(
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?,
        )?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        bundle: RwLock::new(Arc::new(bundle)),
        bundle_path: config.bundle_path,
        metrics: Metrics::new(),
        shutting_down: AtomicBool::new(false),
    });

    let n_workers = if config.threads == 0 {
        std::thread::available_parallelism().map_or(2, |n| n.get())
    } else {
        config.threads
    };
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers = (0..n_workers)
        .map(|i| {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("bstc-serve-worker-{i}"))
                .spawn(move || {
                    // One scratch per worker: the BSTCE kernels under every
                    // /classify on this thread reuse it, so steady-state
                    // classification allocates nothing. It simply regrows
                    // if /reload swaps in a larger model.
                    let mut scratch = Scratch::new();
                    loop {
                        // Holding the lock only for the recv keeps hand-off
                        // fair.
                        let next = { rx.lock().expect("worker poisoned").recv() };
                        match next {
                            Ok(stream) => handle_connection(&shared, stream, &mut scratch),
                            Err(_) => break, // acceptor gone: shutdown
                        }
                    }
                })
                .expect("spawn worker")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("bstc-serve-acceptor".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutting_down.load(Ordering::SeqCst) {
                        break; // drops `tx`, draining the workers
                    }
                    if let Ok(stream) = stream {
                        // A send can only fail after shutdown started.
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle { addr, shared, acceptor, workers })
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, finishes in-flight requests, and joins every
    /// thread.
    pub fn shutdown(self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Blocks until the server stops (i.e. forever, absent a signal).
    pub fn wait(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Serves one TCP connection, looping while the client keeps it alive.
fn handle_connection(shared: &Shared, stream: TcpStream, scratch: &mut Scratch) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(request) => {
                let response = route(shared, &request, scratch);
                shared.metrics.record_request(&request.path, response.status);
                let keep_alive = request.keep_alive && !shared.shutting_down.load(Ordering::SeqCst);
                if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            Err(ReadError::Closed) => return,
            Err(ReadError::Io(e))
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                // Idle keep-alive connection: poll the shutdown flag.
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(detail)) => {
                let body = error_body("malformed_request", &detail);
                shared.metrics.record_request("malformed", 400);
                let _ = write_response(&mut writer, &Response::json(400, body), false);
                return;
            }
            Err(ReadError::TooLarge(detail)) => {
                let body = error_body("payload_too_large", &detail);
                shared.metrics.record_request("malformed", 413);
                let _ = write_response(&mut writer, &Response::json(413, body), false);
                return;
            }
        }
    }
}

/// `{"error": code, "detail": detail}` as bytes.
fn error_body(code: &str, detail: &str) -> Vec<u8> {
    serde_json::to_string(&json!({"error": code, "detail": detail}))
        .unwrap_or_else(|_| format!("{{\"error\":\"{code}\"}}"))
        .into_bytes()
}

/// Shorthand for a structured JSON error response.
fn error_response(status: u16, code: &str, detail: &str) -> Response {
    Response::json(status, error_body(code, detail))
}

/// Dispatches one parsed request.
fn route(shared: &Shared, request: &Request, scratch: &mut Scratch) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => handle_health(shared),
        ("GET", "/model") => handle_model(shared),
        ("GET", "/metrics") => Response::text(200, shared.metrics.render()),
        ("POST", "/classify") => handle_classify(shared, &request.body, scratch),
        ("POST", "/reload") => handle_reload(shared, &request.body),
        (_, "/health" | "/model" | "/metrics" | "/classify" | "/reload") => error_response(
            405,
            "method_not_allowed",
            &format!("{} is not supported on {}", request.method, request.path),
        ),
        (_, path) => error_response(404, "not_found", &format!("no route for '{path}'")),
    }
}

fn handle_health(shared: &Shared) -> Response {
    let bundle = shared.bundle.read().expect("bundle lock poisoned").clone();
    let body = json!({"status": "ok", "dataset": bundle.provenance.dataset.clone()});
    Response::json(200, serde_json::to_string(&body).expect("static shape"))
}

fn handle_model(shared: &Shared) -> Response {
    let bundle = shared.bundle.read().expect("bundle lock poisoned").clone();
    let provenance = match serde_json::to_value(&bundle.provenance) {
        Ok(v) => v,
        Err(e) => return error_response(500, "serialize_failed", &e.to_string()),
    };
    let body = json!({
        "format_version": FORMAT_VERSION,
        "provenance": provenance,
        "n_genes": bundle.n_genes(),
        "n_items": bundle.item_names.len(),
        "n_classes": bundle.n_classes(),
        "class_names": bundle.class_names.clone()
    });
    match serde_json::to_string(&body) {
        Ok(text) => Response::json(200, text),
        Err(e) => error_response(500, "serialize_failed", &e.to_string()),
    }
}

/// `POST /classify` body: either `{"values": [..]}` (one vector) or
/// `{"samples": [[..], ..]}` (a batch). Batches answer with one
/// prediction per row, in order.
fn handle_classify(shared: &Shared, body: &[u8], scratch: &mut Scratch) -> Response {
    let started = Instant::now();
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "bad_encoding", "body must be UTF-8 JSON"),
    };
    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return error_response(400, "bad_json", &e.to_string()),
    };
    let bundle = shared.bundle.read().expect("bundle lock poisoned").clone();

    let (rows, batched) = if let Some(values) = value.get("values") {
        match parse_vector(values) {
            Ok(row) => (vec![row], false),
            Err(detail) => return error_response(400, "bad_vector", &detail),
        }
    } else if let Some(samples) = value.get("samples") {
        let Some(elements) = samples.as_array() else {
            return error_response(400, "bad_vector", "'samples' must be an array of arrays");
        };
        let mut rows = Vec::with_capacity(elements.len());
        for (i, element) in elements.iter().enumerate() {
            match parse_vector(element) {
                Ok(row) => rows.push(row),
                Err(detail) => {
                    return error_response(400, "bad_vector", &format!("samples[{i}]: {detail}"))
                }
            }
        }
        (rows, true)
    } else {
        return error_response(400, "bad_request", "body must contain 'values' or 'samples'");
    };

    let mut predictions = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        match bundle.classify_row_with(row, scratch) {
            Ok(p) => predictions.push(p),
            Err(e) => {
                let at = if batched { format!("samples[{i}]: ") } else { String::new() };
                return error_response(400, "wrong_length", &format!("{at}{e}"));
            }
        }
    }
    shared.metrics.record_samples(predictions.len() as u64);

    let result = if batched {
        serde_json::to_value(&predictions).map(|ps| json!({"predictions": ps}))
    } else {
        serde_json::to_value(&predictions[0]).map(|p| json!({"prediction": p}))
    };
    let response = match result.and_then(|body| serde_json::to_string(&body)) {
        Ok(text) => Response::json(200, text),
        Err(e) => error_response(500, "serialize_failed", &e.to_string()),
    };
    shared.metrics.record_latency_us(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
    response
}

/// `POST /reload`: re-reads the configured bundle file (or, with a
/// `{"path": ...}` body, another file) and atomically swaps it in.
fn handle_reload(shared: &Shared, body: &[u8]) -> Response {
    let override_path = match std::str::from_utf8(body) {
        Ok(text) if !text.trim().is_empty() => match serde_json::from_str::<Value>(text) {
            Ok(v) => v.get("path").and_then(Value::as_str).map(PathBuf::from),
            Err(e) => return error_response(400, "bad_json", &e.to_string()),
        },
        _ => None,
    };
    let path = match override_path.or_else(|| shared.bundle_path.clone()) {
        Some(p) => p,
        None => {
            return error_response(
                400,
                "no_bundle_path",
                "server was started without --model file; pass {\"path\": ...}",
            )
        }
    };
    match ModelBundle::load(&path) {
        Ok(bundle) => {
            let dataset = bundle.provenance.dataset.clone();
            *shared.bundle.write().expect("bundle lock poisoned") = Arc::new(bundle);
            shared.metrics.record_reload();
            let body =
                json!({"reloaded": true, "path": path.display().to_string(), "dataset": dataset});
            Response::json(200, serde_json::to_string(&body).expect("static shape"))
        }
        // The old model keeps serving: a bad file must never take the
        // process down or leave it empty-handed.
        Err(e) => error_response(400, "reload_failed", &e.to_string()),
    }
}

/// Parses a JSON array of numbers into an `f64` vector.
fn parse_vector(value: &Value) -> Result<Vec<f64>, String> {
    let Some(elements) = value.as_array() else {
        return Err(format!("expected an array of numbers, got {}", value.kind()));
    };
    let mut row = Vec::with_capacity(elements.len());
    for (i, element) in elements.iter().enumerate() {
        match element.as_f64() {
            Some(v) => row.push(v),
            None => return Err(format!("element {i} is {}, not a number", element.kind())),
        }
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::Provenance;
    use microarray::ContinuousDataset;

    fn toy_bundle() -> ModelBundle {
        let data = ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 5.0],
                vec![1.2, 3.0],
                vec![0.8, 5.5],
                vec![1.1, 2.9],
                vec![9.0, 5.1],
                vec![9.2, 3.2],
                vec![8.9, 5.2],
                vec![9.1, 3.1],
            ],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
        .unwrap();
        ModelBundle::train(&data, Provenance::new("toy", None)).unwrap()
    }

    fn shared() -> Shared {
        Shared {
            bundle: RwLock::new(Arc::new(toy_bundle())),
            bundle_path: None,
            metrics: Metrics::new(),
            shutting_down: AtomicBool::new(false),
        }
    }

    fn post(shared: &Shared, path: &str, body: &str) -> Response {
        let mut scratch = Scratch::new();
        route(
            shared,
            &Request {
                method: "POST".into(),
                path: path.into(),
                headers: vec![],
                body: body.as_bytes().to_vec(),
                keep_alive: false,
            },
            &mut scratch,
        )
    }

    #[test]
    fn classify_single_and_batch() {
        let s = shared();
        let r = post(&s, "/classify", "{\"values\": [1.0, 4.0]}");
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("prediction").unwrap().get("label").unwrap().as_str(), Some("neg"));

        let r = post(&s, "/classify", "{\"samples\": [[1.0, 4.0], [9.0, 4.0]]}");
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        let ps = v.get("predictions").unwrap().as_array().unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[1].get("label").unwrap().as_str(), Some("pos"));
    }

    #[test]
    fn classify_errors_are_structured_4xx() {
        let s = shared();
        for (body, code) in [
            ("{", "bad_json"),
            ("{\"nope\": 1}", "bad_request"),
            ("{\"values\": \"x\"}", "bad_vector"),
            ("{\"values\": [1.0, \"x\"]}", "bad_vector"),
            ("{\"values\": [1.0]}", "wrong_length"),
            ("{\"samples\": [[1.0, 2.0], [1.0]]}", "wrong_length"),
        ] {
            let r = post(&s, "/classify", body);
            assert_eq!(r.status, 400, "{body}");
            let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
            assert_eq!(v.get("error").unwrap().as_str(), Some(code), "{body}");
            assert!(v.get("detail").is_some(), "{body}");
        }
    }

    #[test]
    fn unknown_routes_and_methods() {
        let s = shared();
        assert_eq!(post(&s, "/nope", "").status, 404);
        assert_eq!(post(&s, "/health", "").status, 405);
    }

    #[test]
    fn reload_without_path_is_a_structured_error() {
        let s = shared();
        let r = post(&s, "/reload", "");
        assert_eq!(r.status, 400);
        assert!(std::str::from_utf8(&r.body).unwrap().contains("no_bundle_path"));
    }
}
