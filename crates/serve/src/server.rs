//! The concurrent inference server: an event-driven connection core
//! (one thread owning every socket — the `eventloop` module) feeding
//! a fixed pool of compute workers over a bounded hand-off queue, with
//! the live [`ModelBundle`] behind `RwLock<Arc<...>>` so `POST /reload`
//! can hot-swap models while classify traffic keeps flowing.
//!
//! Endpoints:
//!
//! | route            | purpose                                            |
//! |------------------|----------------------------------------------------|
//! | `GET /health`    | liveness probe                                     |
//! | `GET /model`     | metadata of the currently served bundle            |
//! | `GET /metrics`   | plaintext counters + latency histogram             |
//! | `POST /classify` | classify one vector (`values`) or many (`samples`) |
//! | `POST /reload`   | re-read the bundle file and swap it in             |
//!
//! Every client error is a structured JSON 4xx: `{"error": <machine
//! code>, "detail": <human text>}`.
//!
//! ## Fault tolerance
//!
//! The serving stack is designed so no single request — however hostile
//! — can degrade the pool:
//!
//! * **Panic isolation**: each request handler runs under
//!   `catch_unwind`; a panic becomes a `500 {"error":"internal_error"}`
//!   and a `bstc_panics_caught_total` tick, never a dead worker.
//! * **Self-healing**: a supervisor thread reaps any worker that does
//!   die and spawns a replacement (`bstc_workers_respawned_total`), so
//!   the pool returns to full strength without intervention.
//! * **Bounded admission**: the loop→worker hand-off is a fixed-depth,
//!   poison-free queue, and concurrent connections are capped at
//!   [`ServerConfig::max_connections`]; past either limit the client is
//!   immediately answered `503 {"error":"overloaded"}` with
//!   `Retry-After`, keeping the latency of admitted requests bounded
//!   instead of growing a queue without limit.
//! * **Workers never block on clients**: sockets live exclusively with
//!   the event loop; a slow or idle client costs a parser state and an
//!   fd, not a worker thread. Ten thousand idle keep-alive connections
//!   leave the pool fully available.
//! * **Request deadlines**: a wall-clock budget
//!   ([`ServerConfig::request_timeout`]) runs from a request's first
//!   byte through its response; slow-loris clients and stalled reads
//!   become clean 408s via the loop's timer wheel. Graceful shutdown
//!   drains in-flight work under [`ServerConfig::drain_timeout`].

use crate::batcher::{Batcher, BatcherConfig, Completion, Outcome};
use crate::bundle::{ModelBundle, Prediction, FORMAT_VERSION};
use crate::chaos;
use crate::eventloop::{Completions, Done, EventLoop, LoopConfig, WorkItem};
use crate::http::{Request, Response};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, Pop};
use crate::registry::{ModelRegistry, ModelVersion, RegistryError};
use crate::router::{route_of, Route};
use crate::shadow::{ShadowExecutor, ShadowJob, ShadowRoute, ShadowSpec};
use crate::sys;
use bstc::Scratch;
use serde_json::{json, Value};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server is started.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8642` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Worker threads handling connections (0 = number of CPUs).
    pub threads: usize,
    /// File `POST /reload` re-reads; `None` disables reloading.
    pub bundle_path: Option<PathBuf>,
    /// Parsed requests that may wait for a worker; requests beyond this
    /// are shed with `503` + `Retry-After` instead of queued.
    pub queue_depth: usize,
    /// Concurrent-connection cap (`--max-connections`); arrivals beyond
    /// it are answered `503` + `Retry-After` immediately. Idle
    /// keep-alive connections count — each costs only an fd and a
    /// parser state, so the cap can sit in the tens of thousands.
    pub max_connections: usize,
    /// Response bodies larger than this many bytes stream to HTTP/1.1
    /// clients with `transfer-encoding: chunked` (`--chunk-threshold`);
    /// 0 disables chunked responses.
    pub chunk_threshold: usize,
    /// Wall-clock budget per request, from its first byte through
    /// classification; exceeding it answers `408`. `None` disables the
    /// deadline (not recommended outside tests).
    pub request_timeout: Option<Duration>,
    /// How long a graceful shutdown waits for in-flight connections
    /// before abandoning the remaining workers.
    pub drain_timeout: Duration,
    /// Most `/classify` jobs coalesced into one batch-kernel execution
    /// (`--max-batch`); 0 disables cross-connection batching entirely.
    pub max_batch: usize,
    /// How long a lone queued job waits for company before the batcher
    /// executes it anyway (`--batch-wait-us`).
    pub batch_wait: Duration,
    /// Column-block budget of the batch-sweep kernel, in bytes of
    /// compiled mask data (`--kernel-block-bytes`); 0 uses the built-in
    /// default (half a typical L2).
    pub kernel_block_bytes: usize,
    /// Directory of `*.json` bundles to serve as a fleet
    /// (`--models-dir`); each file registers under its stem. `None`
    /// serves the single bundle passed to [`serve`].
    pub models_dir: Option<PathBuf>,
    /// Which registered model the legacy unnamed routes alias to
    /// (`--default-model`); `None` picks the lexicographically first.
    pub default_model: Option<String>,
    /// Most *compiled* models kept resident at once (`--max-resident`);
    /// past it the registry LRU evicts the coldest compiled form. 0
    /// disables the cap.
    pub max_resident: usize,
    /// Shadow directives (`--shadow primary=candidate:percent`,
    /// repeatable): mirror that share of a primary's traffic onto a
    /// registered candidate and compare server-side.
    pub shadows: Vec<ShadowSpec>,
    /// Seed for the deterministic shadow-sampling stream
    /// (`--shadow-seed`).
    pub shadow_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            bundle_path: None,
            queue_depth: 256,
            max_connections: 10_000,
            chunk_threshold: 64 * 1024,
            request_timeout: Some(Duration::from_secs(10)),
            drain_timeout: Duration::from_secs(5),
            max_batch: 32,
            batch_wait: Duration::from_micros(200),
            kernel_block_bytes: 0,
            models_dir: None,
            default_model: None,
            max_resident: 0,
            shadows: Vec::new(),
            shadow_seed: 0x5eed_cafe,
        }
    }
}

/// State shared by the event loop and every worker.
pub(crate) struct Shared {
    /// The model fleet: every named version, swaps, compiled residency.
    pub(crate) registry: Arc<ModelRegistry>,
    /// Shared with the batcher thread, which records batch metrics.
    pub(crate) metrics: Arc<Metrics>,
    /// The cross-connection micro-batcher; `None` when `max_batch` is 0
    /// (workers then classify inline, the pre-batching behavior).
    pub(crate) batcher: Option<Batcher>,
    /// The asynchronous shadow replayer; `None` without `--shadow`.
    pub(crate) shadow: Option<ShadowExecutor>,
    /// Per-primary shadow sampling state, resolved against the registry
    /// at boot (name-ordered, tiny: linear lookup).
    pub(crate) shadow_routes: Vec<ShadowRoute>,
    pub(crate) shutting_down: AtomicBool,
    /// Loop → workers: fully parsed requests awaiting compute. Full
    /// means the loop sheds the request with an immediate `503`.
    pub(crate) queue: BoundedQueue<WorkItem>,
    /// Workers → loop: finished responses plus the wake pipe.
    pub(crate) completions: Completions,
    pub(crate) request_timeout: Option<Duration>,
    pub(crate) drain_timeout: Duration,
}

impl Shared {
    /// The shadow route configured for `model`, if any.
    fn shadow_route(&self, model: &str) -> Option<&ShadowRoute> {
        self.shadow_routes.iter().find(|r| r.spec().primary == model)
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] (or [`ServerHandle::wait`] to serve
/// forever).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    loop_thread: JoinHandle<()>,
    supervisor: JoinHandle<()>,
    batcher_thread: Option<JoinHandle<()>>,
    shadow_thread: Option<JoinHandle<()>>,
}

/// The worker queue is polled at this cadence so workers notice
/// shutdown promptly.
const IDLE_POLL: Duration = Duration::from_millis(250);

/// How often the supervisor checks the pool for dead workers.
const SUPERVISE_POLL: Duration = Duration::from_millis(20);

/// Binds and starts serving `bundle` in background threads as a
/// single-model fleet: the bundle registers under
/// [`ServerConfig::default_model`] (or `"default"`), and every legacy
/// route and `/v1/models/{name}` route serves it.
///
/// # Errors
/// Propagates socket failures (bind, local_addr) and registration
/// failures (invalid model name).
pub fn serve(config: ServerConfig, bundle: ModelBundle) -> io::Result<ServerHandle> {
    let metrics = Arc::new(Metrics::new());
    let name = config.default_model.clone().unwrap_or_else(|| "default".to_string());
    let registry = ModelRegistry::new(name.clone(), config.max_resident, Arc::clone(&metrics));
    registry
        .insert(&name, bundle, config.bundle_path.clone())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    serve_registry(config, Arc::new(registry), metrics)
}

/// Binds and starts serving the fleet found in
/// [`ServerConfig::models_dir`]: every `*.json` bundle in the directory
/// registers under its file stem and is routable at
/// `/v1/models/{stem}/...`.
///
/// # Errors
/// Propagates socket failures and any bundle that fails to load or
/// verify — a fleet that cannot boot completely does not boot at all.
pub fn serve_models(config: ServerConfig) -> io::Result<ServerHandle> {
    let dir = config.models_dir.clone().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "serve_models requires models_dir")
    })?;
    let metrics = Arc::new(Metrics::new());
    let registry = ModelRegistry::load_dir(
        &dir,
        config.default_model.clone(),
        config.max_resident,
        Arc::clone(&metrics),
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    serve_registry(config, Arc::new(registry), metrics)
}

/// The common boot path: bind, validate shadow directives, spawn the
/// worker pool, batcher, shadow executor, event loop, and supervisor
/// around an already-built registry.
fn serve_registry(
    config: ServerConfig,
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
) -> io::Result<ServerHandle> {
    // Lower the default model before the first request arrives; other
    // fleet members compile lazily on first use (the LRU governs them).
    if let Ok(version) = registry.default_version() {
        registry.touch(&version);
    }
    let mut shadow_routes = Vec::with_capacity(config.shadows.len());
    for spec in &config.shadows {
        for name in [&spec.primary, &spec.candidate] {
            registry.get(name).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("--shadow {}={}: {e}", spec.primary, spec.candidate),
                )
            })?;
        }
        shadow_routes.push(ShadowRoute::new(spec.clone(), config.shadow_seed));
    }
    let (shadow, shadow_thread) = if shadow_routes.is_empty() {
        (None, None)
    } else {
        let (executor, thread) =
            ShadowExecutor::start((config.queue_depth * 4).max(64), Arc::clone(&metrics));
        (Some(executor), Some(thread))
    };
    let listener =
        TcpListener::bind(
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address")
            })?,
        )?;
    let addr = listener.local_addr()?;
    let (batcher, batcher_thread) = if config.max_batch > 0 {
        let (batcher, thread) = Batcher::start(
            BatcherConfig {
                max_batch: config.max_batch,
                batch_wait: config.batch_wait,
                // Roomy enough that every admitted connection can have a
                // job in flight before submissions fall back inline.
                queue_depth: (config.queue_depth * 4).max(64),
                kernel_block_bytes: config.kernel_block_bytes,
            },
            Arc::clone(&metrics),
        );
        (Some(batcher), Some(thread))
    } else {
        (None, None)
    };
    let (wake_rx, waker) = sys::wake_pair()?;
    let shared = Arc::new(Shared {
        registry,
        metrics,
        batcher,
        shadow,
        shadow_routes,
        shutting_down: AtomicBool::new(false),
        queue: BoundedQueue::new(config.queue_depth),
        completions: Completions::new(waker),
        request_timeout: config.request_timeout,
        drain_timeout: config.drain_timeout,
    });

    // The loop is built on this thread so bind/registration failures
    // surface as boot errors, then moves onto its own thread.
    let mut event_loop = EventLoop::new(
        listener,
        wake_rx,
        Arc::clone(&shared),
        LoopConfig {
            max_connections: config.max_connections.max(1),
            request_timeout: config.request_timeout,
            drain_timeout: config.drain_timeout,
            chunk_threshold: config.chunk_threshold,
        },
    )?;
    let loop_thread = std::thread::Builder::new()
        .name("bstc-serve-eventloop".into())
        .spawn(move || event_loop.run())
        .expect("spawn event loop");

    let n_workers = if config.threads == 0 {
        std::thread::available_parallelism().map_or(2, |n| n.get())
    } else {
        config.threads
    };
    shared.metrics.set_workers_configured(n_workers as u64);
    shared.metrics.set_workers_alive(n_workers as u64);
    let workers: Vec<JoinHandle<()>> =
        (0..n_workers).map(|i| spawn_worker(i, Arc::clone(&shared))).collect();

    let supervisor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("bstc-serve-supervisor".into())
            .spawn(move || supervise(shared, workers))
            .expect("spawn supervisor")
    };

    Ok(ServerHandle { addr, shared, loop_thread, supervisor, batcher_thread, shadow_thread })
}

/// Spawns one pool worker. `generation` only names the thread.
fn spawn_worker(generation: usize, shared: Arc<Shared>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("bstc-serve-worker-{generation}"))
        .spawn(move || {
            // One scratch per worker: the BSTCE kernels under every
            // /classify on this thread reuse it, so steady-state
            // classification allocates nothing. It simply regrows if
            // /reload swaps in a larger model.
            let mut scratch = Scratch::new();
            loop {
                // Chaos site: hard worker death, *before* a request is
                // claimed, so an injected kill never orphans a client.
                chaos::point("worker");
                match shared.queue.pop(IDLE_POLL) {
                    Pop::Item(item) => process(&shared, item, &mut scratch),
                    Pop::Empty => continue,
                    Pop::Closed => break,
                }
            }
        })
        .expect("spawn worker")
}

/// Executes one parsed request and delivers the response back to the
/// event loop. Pure compute: no socket is touched here, so a hostile or
/// slow client can never pin a worker.
fn process(shared: &Shared, item: WorkItem, scratch: &mut Scratch) {
    let WorkItem { token, gen, request, started } = item;
    let request_id = accept_or_mint_request_id(&request);
    let deadline = shared.request_timeout.map(|budget| started + budget);
    // Panic isolation: whatever a handler does, the worker survives and
    // the client gets a structured 500.
    let response = match catch_unwind(AssertUnwindSafe(|| {
        route(shared, &request, scratch, deadline, &request_id)
    })) {
        Ok(response) => response,
        Err(_) => {
            // The unwound handler may have left the scratch
            // mid-mutation; replace it wholesale.
            *scratch = Scratch::new();
            shared.metrics.record_panic_caught();
            error_response(500, "internal_error", "request handler panicked; the worker recovered")
        }
    };
    let response = response.with_header("x-request-id", request_id.clone());
    let latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.metrics.record_request(&request.path, response.status);
    shared.metrics.record_route_latency(&request.path, latency_us);
    let status = response.status.to_string();
    let latency = latency_us.to_string();
    let mut fields: Vec<(&str, &str)> = vec![
        ("request_id", request_id.as_str()),
        ("method", request.method.as_str()),
        ("path", request.path.as_str()),
        ("status", status.as_str()),
        ("latency_us", latency.as_str()),
    ];
    // Joins this request to the classify_batch span that served it (the
    // batcher logged batch_id → request_ids).
    let batch_id = response.headers.iter().find(|(k, _)| *k == "x-batch-id").map(|(_, v)| v);
    if let Some(batch_id) = batch_id {
        fields.push(("batch_id", batch_id.as_str()));
    }
    obs::log::info("request", &fields);
    let keep_alive =
        request.keep_alive && response.status < 500 && !shared.shutting_down.load(Ordering::SeqCst);
    shared.completions.push(Done { token, gen, response, keep_alive });
}

/// Reaps dead workers, respawns them while the server is live, and
/// drains the pool (bounded by the drain deadline) during shutdown.
fn supervise(shared: Arc<Shared>, mut workers: Vec<JoinHandle<()>>) {
    let mut generation = workers.len();
    let mut drain_started: Option<Instant> = None;
    loop {
        let draining = shared.queue.is_closed();
        let mut i = 0;
        while i < workers.len() {
            if workers[i].is_finished() {
                let worker = workers.swap_remove(i);
                let died = worker.join().is_err();
                if died && !draining {
                    shared.metrics.record_worker_respawned();
                    workers.push(spawn_worker(generation, Arc::clone(&shared)));
                    generation += 1;
                }
            } else {
                i += 1;
            }
        }
        shared.metrics.set_workers_alive(workers.len() as u64);
        if draining {
            if workers.is_empty() {
                return;
            }
            let started = *drain_started.get_or_insert_with(Instant::now);
            if started.elapsed() >= shared.drain_timeout {
                // The remaining workers are pinned by connections that
                // refuse to finish; abandon them so shutdown completes.
                return;
            }
        }
        std::thread::sleep(SUPERVISE_POLL);
    }
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A point-in-time copy of the serving metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Stops accepting, drains queued and in-flight connections (up to
    /// the configured drain deadline), and joins every thread. Returns
    /// the final metrics snapshot so callers can audit the settled
    /// ledger after every thread is gone.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Nudge the poller so the loop observes the flag, begins its
        // drain (stop accepting, finish in-flight work), and exits.
        self.shared.completions.wake();
        let _ = self.loop_thread.join();
        // Closing the queue lets workers drain what was dispatched, then
        // exit; the supervisor stops respawning and joins the workers.
        self.shared.queue.close();
        let _ = self.supervisor.join();
        // Workers are gone, so no further submissions: close the batcher
        // last. Its queue drains admitted jobs before the thread exits,
        // so no job is stranded (their workers already resolved by now,
        // but the ledger still balances).
        if let Some(batcher) = &self.shared.batcher {
            batcher.close();
        }
        if let Some(thread) = self.batcher_thread {
            let _ = thread.join();
        }
        // Shadow replays are best-effort; drain what was enqueued so the
        // disagreement counters are complete, then let the thread exit.
        if let Some(shadow) = &self.shared.shadow {
            shadow.close();
        }
        if let Some(thread) = self.shadow_thread {
            let _ = thread.join();
        }
        self.shared.metrics.snapshot()
    }

    /// Blocks until the server stops (i.e. forever, absent a signal).
    pub fn wait(self) {
        let _ = self.loop_thread.join();
        let _ = self.supervisor.join();
    }
}

/// Echoes the client's `X-Request-Id` when it is sane (non-empty, ≤ 64
/// chars, alphanumeric/`-`/`_` — it gets reflected into a response
/// header and logs), otherwise mints a fresh 16-hex-char ID.
fn accept_or_mint_request_id(request: &Request) -> String {
    request
        .header("x-request-id")
        .filter(|id| {
            !id.is_empty()
                && id.len() <= 64
                && id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
        })
        .map(String::from)
        .unwrap_or_else(obs::log::request_id)
}

/// `{"error": code, "detail": detail}` as bytes.
pub(crate) fn error_body(code: &str, detail: &str) -> Vec<u8> {
    serde_json::to_string(&json!({"error": code, "detail": detail}))
        .unwrap_or_else(|_| format!("{{\"error\":\"{code}\"}}"))
        .into_bytes()
}

/// Shorthand for a structured JSON error response.
fn error_response(status: u16, code: &str, detail: &str) -> Response {
    Response::json(status, error_body(code, detail))
}

/// Dispatches one parsed request. `deadline` is the wall-clock point at
/// which the whole request's budget expires (None = no deadline);
/// `request_id` rides along so batched classifies can be joined to
/// their batch execution in the logs.
fn route(
    shared: &Shared,
    request: &Request,
    scratch: &mut Scratch,
    deadline: Option<Instant>,
    request_id: &str,
) -> Response {
    match route_of(request.method.as_str(), request.path.as_str()) {
        Route::Health => handle_health(shared),
        Route::Model => handle_model(shared, None),
        Route::ModelMeta(name) => handle_model(shared, Some(name)),
        Route::Models => handle_models(shared),
        Route::Metrics => {
            // Server metrics plus the process-global stage registry and
            // volume counters, so one scrape covers serving latency and
            // (when this process also trained) the per-stage pipeline
            // cost and the BST builder's work counters.
            let mut text = shared.metrics.render();
            text.push_str(&obs::global().render_prometheus("bstc_stage_duration_us", "stage"));
            text.push_str(&obs::counters().render_prometheus());
            Response::text(200, text)
        }
        Route::Classify(name) => {
            handle_classify(shared, name, &request.body, scratch, deadline, request_id)
        }
        Route::Reload(name) => handle_reload(shared, name, &request.body),
        Route::MethodNotAllowed => error_response(
            405,
            "method_not_allowed",
            &format!("{} is not supported on {}", request.method, request.path),
        ),
        Route::BadName(name) => error_response(
            400,
            "bad_model_name",
            &RegistryError::BadName(name.to_string()).to_string(),
        ),
        Route::NotFound => {
            error_response(404, "not_found", &format!("no route for '{}'", request.path))
        }
    }
}

/// Resolves a model-name segment (`None` = the default model) to its
/// current version, or the structured error response for the caller to
/// return directly.
fn resolve_model(shared: &Shared, name: Option<&str>) -> Result<Arc<ModelVersion>, Response> {
    let result = match name {
        Some(name) => shared.registry.get(name),
        None => shared.registry.default_version(),
    };
    result.map_err(|e| error_response(e.http_status(), e.code(), &e.to_string()))
}

fn handle_health(shared: &Shared) -> Response {
    let body = match shared.registry.default_version() {
        Ok(version) => {
            json!({"status": "ok", "dataset": version.bundle.provenance.dataset.clone()})
        }
        Err(_) => json!({"status": "ok"}),
    };
    Response::json(200, serde_json::to_string(&body).expect("static shape"))
}

/// `GET /model` and `GET /v1/models/{name}`: the served model's
/// metadata, including which registry version and artifact checksum is
/// actually answering — `/model` (the legacy route) reports the default
/// model, so its response now carries `name`/`version`/`checksum` on
/// top of the PR-2 shape.
fn handle_model(shared: &Shared, name: Option<&str>) -> Response {
    let version = match resolve_model(shared, name) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let bundle = &version.bundle;
    let provenance = match serde_json::to_value(&bundle.provenance) {
        Ok(v) => v,
        Err(e) => return error_response(500, "serialize_failed", &e.to_string()),
    };
    let body = json!({
        "format_version": FORMAT_VERSION,
        "name": version.name,
        "version": version.version,
        "checksum": version.checksum,
        "default": version.name == shared.registry.default_name(),
        "source": version.source.as_ref().map(|p| p.display().to_string()),
        "compiled_resident": bundle.compiled_resident(),
        "provenance": provenance,
        "n_genes": bundle.n_genes(),
        "n_items": bundle.item_names.len(),
        "n_classes": bundle.n_classes(),
        "class_names": bundle.class_names.clone()
    });
    match serde_json::to_string(&body) {
        Ok(text) => Response::json(200, text),
        Err(e) => error_response(500, "serialize_failed", &e.to_string()),
    }
}

/// `GET /v1/models`: every registered model's current version, plus
/// which name the legacy routes serve.
fn handle_models(shared: &Shared) -> Response {
    let models: Vec<Value> = shared
        .registry
        .list()
        .iter()
        .map(|v| {
            json!({
                "name": v.name,
                "version": v.version,
                "checksum": v.checksum,
                "dataset": v.bundle.provenance.dataset,
                "n_genes": v.bundle.n_genes(),
                "n_classes": v.bundle.n_classes(),
                "compiled_resident": v.bundle.compiled_resident(),
            })
        })
        .collect();
    let body = json!({"default": shared.registry.default_name(), "models": models});
    match serde_json::to_string(&body) {
        Ok(text) => Response::json(200, text),
        Err(e) => error_response(500, "serialize_failed", &e.to_string()),
    }
}

/// 408 if the request's wall-clock budget has already expired.
fn check_deadline(deadline: Option<Instant>, phase: &str) -> Option<Response> {
    let deadline = deadline?;
    if Instant::now() >= deadline {
        return Some(error_response(
            408,
            "request_timeout",
            &format!("request exceeded its wall-clock budget while {phase}"),
        ));
    }
    None
}

/// Upper bound on how long a worker waits for its batch completion when
/// the server runs without request deadlines (tests, mostly).
const BATCH_RECV_FALLBACK: Duration = Duration::from_secs(30);

/// `POST /classify` body: either `{"values": [..]}` (one vector) or
/// `{"samples": [[..], ..]}` (a batch). Batches answer with one
/// prediction per row, in order.
///
/// With batching enabled the worker binarizes the rows, submits them as
/// one job to the [`Batcher`], and blocks on the completion (bounded by
/// the request deadline); a full batcher queue degrades gracefully to
/// the inline per-query path on this worker.
fn handle_classify(
    shared: &Shared,
    name: Option<&str>,
    body: &[u8],
    scratch: &mut Scratch,
    deadline: Option<Instant>,
    request_id: &str,
) -> Response {
    let started = Instant::now();
    // Chaos site: an injected panic here exercises the catch_unwind
    // isolation exactly where real classify bugs would fire.
    chaos::point("classify");
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return error_response(400, "bad_encoding", "body must be UTF-8 JSON"),
    };
    let value: Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return error_response(400, "bad_json", &e.to_string()),
    };
    let version = match resolve_model(shared, name) {
        Ok(v) => v,
        Err(response) => return response,
    };
    // LRU touch: marks this model just-used and ensures its compiled
    // form is resident (evicting the coldest past the cap), so the
    // classification below reuses the cached slot for free.
    shared.registry.touch(&version);
    let bundle = Arc::clone(&version.bundle);
    // `name@vN` on every successful classify: the client can tell
    // exactly which registry version answered, across hot swaps.
    let model_tag = format!("{}@v{}", version.name, version.version);

    let (rows, batched) = if let Some(values) = value.get("values") {
        match parse_vector(values) {
            Ok(row) => (vec![row], false),
            Err(detail) => return error_response(400, "bad_vector", &detail),
        }
    } else if let Some(samples) = value.get("samples") {
        let Some(elements) = samples.as_array() else {
            return error_response(400, "bad_vector", "'samples' must be an array of arrays");
        };
        let mut rows = Vec::with_capacity(elements.len());
        for (i, element) in elements.iter().enumerate() {
            match parse_vector(element) {
                Ok(row) => rows.push(row),
                Err(detail) => {
                    return error_response(400, "bad_vector", &format!("samples[{i}]: {detail}"))
                }
            }
        }
        (rows, true)
    } else {
        return error_response(400, "bad_request", "body must contain 'values' or 'samples'");
    };

    if let Some(batcher) = shared.batcher.as_ref() {
        // Binarize on the worker (cheap, per-connection) so the batcher
        // thread spends its time exclusively inside the batch kernel.
        let mut queries = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if i % 64 == 0 {
                if let Some(timeout) = check_deadline(deadline, "binarizing the batch") {
                    return timeout;
                }
            }
            match bundle.query_for_row(row) {
                Ok(q) => queries.push(q),
                Err(e) => {
                    let at = if batched { format!("samples[{i}]: ") } else { String::new() };
                    return error_response(400, "wrong_length", &format!("{at}{e}"));
                }
            }
        }
        match batcher.submit(&bundle, queries, request_id, deadline) {
            Ok(receiver) => {
                shared.metrics.record_batch_job_submitted();
                let budget = deadline
                    .map(|d| d.saturating_duration_since(Instant::now()))
                    .unwrap_or(BATCH_RECV_FALLBACK);
                let completion = receiver.recv_timeout(budget);
                // Resolved one way or another: the submitted/completed
                // ledger balances, so a gap flags a stranded job.
                shared.metrics.record_batch_job_completed();
                let response = match completion {
                    Ok(Completion { batch_id, outcome: Outcome::Predictions(predictions) }) => {
                        shared.metrics.record_samples(predictions.len() as u64);
                        maybe_shadow(shared, &version, &rows, &predictions);
                        classification_response(&predictions, batched)
                            .with_header("x-batch-id", batch_id)
                            .with_header("x-model", model_tag.clone())
                    }
                    Ok(Completion { outcome: Outcome::Expired, .. })
                    | Err(RecvTimeoutError::Timeout) => error_response(
                        408,
                        "request_timeout",
                        "request exceeded its wall-clock budget awaiting batch execution",
                    ),
                    // The batch panicked: its jobs' senders were dropped
                    // in the unwind. The batcher itself recovered.
                    Err(RecvTimeoutError::Disconnected) => error_response(
                        500,
                        "internal_error",
                        "batch execution failed; the batcher recovered",
                    ),
                };
                shared.metrics.record_latency_us(
                    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                );
                return response;
            }
            // Submission queue full (or closing): degrade gracefully to
            // the inline path below rather than queue without bound.
            Err(_queries) => shared.metrics.record_batch_inline_fallback(),
        }
    }

    let mut predictions = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        // Large batches honour the same deadline as the reads: check
        // every few rows so a huge batch cannot smuggle in unbounded
        // compute past the admission controls.
        if i % 64 == 0 {
            if let Some(timeout) = check_deadline(deadline, "classifying the batch") {
                return timeout;
            }
        }
        match bundle.classify_row_with(row, scratch) {
            Ok(p) => predictions.push(p),
            Err(e) => {
                let at = if batched { format!("samples[{i}]: ") } else { String::new() };
                return error_response(400, "wrong_length", &format!("{at}{e}"));
            }
        }
    }
    shared.metrics.record_samples(predictions.len() as u64);
    maybe_shadow(shared, &version, &rows, &predictions);
    let response = classification_response(&predictions, batched).with_header("x-model", model_tag);
    shared.metrics.record_latency_us(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
    response
}

/// Mirrors a successfully classified request to its configured shadow
/// candidate, when sampling selects it. Enqueue-only: the candidate
/// replay happens on the shadow thread after this response is already
/// on its way out, so the primary path pays one queue push at most.
fn maybe_shadow(
    shared: &Shared,
    version: &ModelVersion,
    rows: &[Vec<f64>],
    predictions: &[Prediction],
) {
    let Some(executor) = shared.shadow.as_ref() else { return };
    let Some(route) = shared.shadow_route(&version.name) else { return };
    if !route.sample() {
        return;
    }
    // The candidate resolves at request time, so swapping the candidate
    // model mid-run redirects subsequent mirrors to its new version.
    let Ok(candidate) = shared.registry.get(&route.spec().candidate) else { return };
    executor.enqueue(ShadowJob {
        model: version.name.clone(),
        candidate: Arc::clone(&candidate.bundle),
        rows: rows.to_vec(),
        primary_classes: predictions.iter().map(|p| p.class).collect(),
    });
}

/// Serializes predictions into the `/classify` response shape (single
/// `prediction` or `predictions` array, matching the request shape).
fn classification_response(predictions: &[Prediction], batched: bool) -> Response {
    let result = if batched {
        serde_json::to_value(predictions).map(|ps| json!({"predictions": ps}))
    } else {
        serde_json::to_value(&predictions[0]).map(|p| json!({"prediction": p}))
    };
    match result.and_then(|body| serde_json::to_string(&body)) {
        Ok(text) => Response::json(200, text),
        Err(e) => error_response(500, "serialize_failed", &e.to_string()),
    }
}

/// `POST /reload` and `POST /v1/models/{name}/reload`: atomic per-model
/// version swap. Re-reads the model's recorded source artifact (or,
/// with a `{"path": ...}` body, another file), verifies it completely,
/// and swaps it in with a bumped version number. A file that cannot be
/// loaded or validated never interrupts serving: the old version stays
/// live and the failure is a structured 409/500 plus a
/// `bstc_model_reload_failures_total` tick — rollback is the swap never
/// having happened.
fn handle_reload(shared: &Shared, name: Option<&str>, body: &[u8]) -> Response {
    // Chaos site: a slow reload pins this worker, not the server.
    chaos::point("reload");
    let override_path = match std::str::from_utf8(body) {
        Ok(text) if !text.trim().is_empty() => match serde_json::from_str::<Value>(text) {
            Ok(v) => v.get("path").and_then(Value::as_str).map(PathBuf::from),
            Err(e) => return error_response(400, "bad_json", &e.to_string()),
        },
        _ => None,
    };
    let current = match resolve_model(shared, name) {
        Ok(v) => v,
        Err(response) => return response,
    };
    if override_path.is_none() && current.source.is_none() {
        return error_response(
            400,
            "no_bundle_path",
            "server was started without --model file; pass {\"path\": ...}",
        );
    }
    match shared.registry.swap(&current.name, override_path) {
        Ok(next) => {
            shared.metrics.record_reload();
            let body = json!({
                "reloaded": true,
                "model": next.name,
                "version": next.version,
                "checksum": next.checksum,
                "path": next.source.as_ref().map(|p| p.display().to_string()),
                "dataset": next.bundle.provenance.dataset
            });
            Response::json(200, serde_json::to_string(&body).expect("static shape"))
        }
        // The old version keeps serving: a bad file must never take the
        // process down or leave it empty-handed.
        Err(e) => {
            shared.metrics.record_reload_failure();
            error_response(e.http_status(), e.code(), &e.to_string())
        }
    }
}

/// Parses a JSON array of numbers into an `f64` vector.
fn parse_vector(value: &Value) -> Result<Vec<f64>, String> {
    let Some(elements) = value.as_array() else {
        return Err(format!("expected an array of numbers, got {}", value.kind()));
    };
    let mut row = Vec::with_capacity(elements.len());
    for (i, element) in elements.iter().enumerate() {
        match element.as_f64() {
            Some(v) => row.push(v),
            None => return Err(format!("element {i} is {}, not a number", element.kind())),
        }
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::Provenance;
    use microarray::ContinuousDataset;

    fn toy_bundle() -> ModelBundle {
        let data = ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 5.0],
                vec![1.2, 3.0],
                vec![0.8, 5.5],
                vec![1.1, 2.9],
                vec![9.0, 5.1],
                vec![9.2, 3.2],
                vec![8.9, 5.2],
                vec![9.1, 3.1],
            ],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
        .unwrap();
        ModelBundle::train(&data, Provenance::new("toy", None)).unwrap()
    }

    fn shared() -> Shared {
        let metrics = Arc::new(Metrics::new());
        let registry = ModelRegistry::new("default", 0, Arc::clone(&metrics));
        registry.insert("default", toy_bundle(), None).unwrap();
        let (_wake_rx, waker) = sys::wake_pair().unwrap();
        Shared {
            registry: Arc::new(registry),
            metrics,
            batcher: None,
            shadow: None,
            shadow_routes: Vec::new(),
            shutting_down: AtomicBool::new(false),
            queue: BoundedQueue::new(4),
            completions: Completions::new(waker),
            request_timeout: Some(Duration::from_secs(10)),
            drain_timeout: Duration::from_secs(1),
        }
    }

    fn post(shared: &Shared, path: &str, body: &str) -> Response {
        let mut scratch = Scratch::new();
        route(
            shared,
            &Request {
                method: "POST".into(),
                path: path.into(),
                headers: vec![],
                body: body.as_bytes().to_vec(),
                keep_alive: false,
                http11: true,
            },
            &mut scratch,
            None,
            "test-req",
        )
    }

    #[test]
    fn classify_single_and_batch() {
        let s = shared();
        let r = post(&s, "/classify", "{\"values\": [1.0, 4.0]}");
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("prediction").unwrap().get("label").unwrap().as_str(), Some("neg"));

        let r = post(&s, "/classify", "{\"samples\": [[1.0, 4.0], [9.0, 4.0]]}");
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        let ps = v.get("predictions").unwrap().as_array().unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[1].get("label").unwrap().as_str(), Some("pos"));
    }

    #[test]
    fn classify_errors_are_structured_4xx() {
        let s = shared();
        for (body, code) in [
            ("{", "bad_json"),
            ("{\"nope\": 1}", "bad_request"),
            ("{\"values\": \"x\"}", "bad_vector"),
            ("{\"values\": [1.0, \"x\"]}", "bad_vector"),
            ("{\"values\": [1.0]}", "wrong_length"),
            ("{\"samples\": [[1.0, 2.0], [1.0]]}", "wrong_length"),
        ] {
            let r = post(&s, "/classify", body);
            assert_eq!(r.status, 400, "{body}");
            let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
            assert_eq!(v.get("error").unwrap().as_str(), Some(code), "{body}");
            assert!(v.get("detail").is_some(), "{body}");
        }
    }

    #[test]
    fn unknown_routes_and_methods() {
        let s = shared();
        assert_eq!(post(&s, "/nope", "").status, 404);
        assert_eq!(post(&s, "/health", "").status, 405);
    }

    fn get(shared: &Shared, path: &str) -> Response {
        let mut scratch = Scratch::new();
        route(
            shared,
            &Request {
                method: "GET".into(),
                path: path.into(),
                headers: vec![],
                body: vec![],
                keep_alive: false,
                http11: true,
            },
            &mut scratch,
            None,
            "test-req",
        )
    }

    #[test]
    fn registry_routes_resolve_names_and_404_unknowns() {
        let s = shared();
        s.registry.insert("extra", toy_bundle(), None).unwrap();

        // Named classify answers with the model tag; legacy /classify
        // is an alias for the default model.
        let r = post(&s, "/v1/models/extra/classify", "{\"values\": [1.0, 4.0]}");
        assert_eq!(r.status, 200);
        let tag = r.headers.iter().find(|(k, _)| *k == "x-model").map(|(_, v)| v.as_str());
        assert_eq!(tag, Some("extra@v1"));
        let r = post(&s, "/classify", "{\"values\": [1.0, 4.0]}");
        let tag = r.headers.iter().find(|(k, _)| *k == "x-model").map(|(_, v)| v.as_str());
        assert_eq!(tag, Some("default@v1"));

        // Unknown names are structured 404s, bad names structured 400s.
        let r = post(&s, "/v1/models/ghost/classify", "{\"values\": [1.0, 4.0]}");
        assert_eq!(r.status, 404);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("unknown_model"));
        let r = post(&s, "/v1/models/.bad/classify", "{\"values\": [1.0, 4.0]}");
        assert_eq!(r.status, 400);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("bad_model_name"));

        // Listing and per-model metadata.
        let r = get(&s, "/v1/models");
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("default").unwrap().as_str(), Some("default"));
        assert_eq!(v.get("models").unwrap().as_array().unwrap().len(), 2);
        let r = get(&s, "/v1/models/extra");
        assert_eq!(r.status, 200);
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("extra"));
        assert_eq!(v.get("version").unwrap().as_u64(), Some(1));
        assert!(v.get("checksum").unwrap().as_str().unwrap().starts_with("fnv1a64:"));
        assert_eq!(v.get("default").unwrap().as_bool(), Some(false));
        assert_eq!(get(&s, "/v1/models/ghost").status, 404);

        // /model reports the default model's registry identity.
        let r = get(&s, "/model");
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("default"));
        assert_eq!(v.get("default").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn shadowed_classifies_enqueue_and_count_disagreements() {
        let mut s = shared();
        // A label-flipped candidate guarantees disagreement on every row.
        let data = ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 5.0],
                vec![1.2, 3.0],
                vec![0.8, 5.5],
                vec![1.1, 2.9],
                vec![9.0, 5.1],
                vec![9.2, 3.2],
                vec![8.9, 5.2],
                vec![9.1, 3.1],
            ],
            vec![1, 1, 1, 1, 0, 0, 0, 0],
        )
        .unwrap();
        let flipped = ModelBundle::train(&data, Provenance::new("flipped", None)).unwrap();
        s.registry.insert("candidate", flipped, None).unwrap();
        let (executor, thread) = ShadowExecutor::start(64, Arc::clone(&s.metrics));
        s.shadow = Some(executor);
        s.shadow_routes = vec![ShadowRoute::new(
            ShadowSpec { primary: "default".into(), candidate: "candidate".into(), percent: 100.0 },
            7,
        )];
        for _ in 0..3 {
            assert_eq!(post(&s, "/classify", "{\"values\": [1.0, 4.0]}").status, 200);
        }
        s.shadow.as_ref().unwrap().close();
        thread.join().unwrap();
        let snap = s.metrics.snapshot();
        assert_eq!(snap.shadow_requests, 3);
        assert_eq!(snap.shadow_disagreements, 3);
        let text = s.metrics.render();
        assert!(text.contains("bstc_shadow_disagreements_total{model=\"default\"} 3"), "{text}");
    }

    #[test]
    fn reload_without_path_is_a_structured_error() {
        let s = shared();
        let r = post(&s, "/reload", "");
        assert_eq!(r.status, 400);
        assert!(std::str::from_utf8(&r.body).unwrap().contains("no_bundle_path"));
    }

    #[test]
    fn classify_routes_through_batcher_when_enabled() {
        let mut s = shared();
        let (batcher, thread) = Batcher::start(BatcherConfig::default(), Arc::clone(&s.metrics));
        s.batcher = Some(batcher);
        let r = post(&s, "/classify", "{\"values\": [1.0, 4.0]}");
        assert_eq!(r.status, 200);
        assert!(
            r.headers.iter().any(|(k, _)| *k == "x-batch-id"),
            "batched responses carry the batch id for log joins"
        );
        let v: Value = serde_json::from_str(std::str::from_utf8(&r.body).unwrap()).unwrap();
        assert_eq!(v.get("prediction").unwrap().get("label").unwrap().as_str(), Some("neg"));
        // Multi-sample bodies ride the batcher as one job, too.
        let r = post(&s, "/classify", "{\"samples\": [[1.0, 4.0], [9.0, 4.0]]}");
        assert_eq!(r.status, 200);
        let snap = s.metrics.snapshot();
        assert_eq!(snap.batch_jobs_submitted, 2);
        assert_eq!(snap.batch_jobs_completed, 2);
        assert_eq!(snap.samples_classified, 3);
        s.batcher.as_ref().unwrap().close();
        thread.join().unwrap();
    }

    #[test]
    fn expired_deadline_answers_408_before_classifying() {
        let s = shared();
        let mut scratch = Scratch::new();
        let request = Request {
            method: "POST".into(),
            path: "/classify".into(),
            headers: vec![],
            body: b"{\"values\": [1.0, 4.0]}".to_vec(),
            keep_alive: false,
            http11: true,
        };
        let expired = Instant::now() - Duration::from_millis(1);
        let r = route(&s, &request, &mut scratch, Some(expired), "test-req");
        assert_eq!(r.status, 408);
        assert!(std::str::from_utf8(&r.body).unwrap().contains("request_timeout"));
    }
}
