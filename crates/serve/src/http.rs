//! A deliberately small HTTP/1.1 implementation on `std::io` — just
//! enough for a JSON inference API: request-line + headers +
//! `Content-Length` bodies in, fixed-status responses out, with
//! keep-alive. No TLS, no async — and no chunked encoding: any
//! `Transfer-Encoding` header is rejected up front with
//! [`ReadError::Unsupported`] (501). Silently ignoring it would leave
//! the chunked body unread on the socket, where keep-alive would parse
//! it as the *next* request — a request-smuggling / response-desync
//! vector.
//!
//! Reading is **deadline-aware**: [`read_request`] takes an optional
//! wall-clock budget that starts ticking at the *first byte* of a
//! request and covers the whole head and body. A socket-level read
//! timeout (the server's idle poll) surfaces as [`ReadError::Idle`]
//! while no request has started — the caller polls its shutdown flag —
//! but once bytes arrive, timeouts are retried internally until the
//! budget is exhausted, which turns a slow-loris client trickling one
//! header byte per poll interval into a clean [`ReadError::Timeout`]
//! (HTTP 408) instead of a permanently pinned worker.

use std::io::{self, BufRead, Write};
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target with any query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not a fault.
    Closed,
    /// The socket read timed out before the first byte of a request —
    /// an idle keep-alive connection; poll shutdown and call again.
    Idle,
    /// The wall-clock budget ran out mid-request (reply 408).
    Timeout(String),
    /// Transport failure mid-request.
    Io(io::Error),
    /// The bytes were not parseable HTTP (reply 400).
    Malformed(String),
    /// Head or body exceeded the hard limits (reply 413).
    TooLarge(String),
    /// Valid HTTP that this server refuses to implement, e.g.
    /// `Transfer-Encoding` (reply 501 and close: the unread body would
    /// desync the connection).
    Unsupported(String),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Tracks the per-request wall-clock budget. Armed by the first byte of
/// the request line; every subsequent read — header trickle, body
/// trickle, socket-timeout retry — is charged against the same budget.
struct Deadline {
    started: Option<Instant>,
    budget: Option<Duration>,
}

impl Deadline {
    fn new(budget: Option<Duration>) -> Deadline {
        Deadline { started: None, budget }
    }

    /// Called on the first byte; later calls are no-ops.
    fn arm(&mut self) {
        if self.started.is_none() {
            self.started = Some(Instant::now());
        }
    }

    fn armed(&self) -> bool {
        self.started.is_some()
    }

    /// Errors with [`ReadError::Timeout`] once the armed budget is spent.
    fn check(&self, phase: &str) -> Result<(), ReadError> {
        if let (Some(started), Some(budget)) = (self.started, self.budget) {
            if started.elapsed() >= budget {
                return Err(ReadError::Timeout(format!(
                    "request exceeded its {} ms budget while {phase}",
                    budget.as_millis()
                )));
            }
        }
        Ok(())
    }
}

/// Reads one request from a buffered stream, charging all bytes of one
/// request against `budget` (measured from its first byte). On success
/// returns the request and the instant its first byte arrived, so the
/// caller can hold the handler to the same deadline.
///
/// # Errors
/// See [`ReadError`]; [`ReadError::Closed`] is the clean-EOF case and
/// [`ReadError::Idle`] the no-request-yet socket timeout.
pub fn read_request(
    reader: &mut impl BufRead,
    budget: Option<Duration>,
) -> Result<(Request, Instant), ReadError> {
    let mut deadline = Deadline::new(budget);
    let mut head_bytes = 0usize;
    let request_line = match read_line(reader, &mut head_bytes, &mut deadline)? {
        None => return Err(ReadError::Closed),
        Some(line) if line.is_empty() => {
            return Err(ReadError::Malformed("empty request line".into()))
        }
        Some(line) => line,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target =
        parts.next().ok_or_else(|| ReadError::Malformed("missing request target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported protocol '{version}'")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut head_bytes, &mut deadline)? {
            None => return Err(ReadError::Malformed("connection closed mid-headers".into())),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("header without ':': '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Chunked (or any other) transfer coding is not implemented. It must
    // be *refused*, not ignored: ignoring it would leave the chunked
    // body on the socket to be reparsed as the next request under
    // keep-alive (request smuggling). The caller answers 501 and closes.
    if let Some((_, v)) = headers.iter().find(|(n, _)| n == "transfer-encoding") {
        return Err(ReadError::Unsupported(format!("transfer-encoding '{v}' not implemented")));
    }

    // The declared length is validated *before* any body allocation:
    // exactly one Content-Length header (duplicates are a smuggling
    // vector, conflicting or not), strictly decimal digits (usize::parse
    // would admit a leading '+'), and within the hard body cap.
    let content_length = {
        let mut declared = headers.iter().filter(|(n, _)| n == "content-length");
        match (declared.next(), declared.next()) {
            (None, _) => 0,
            (Some(_), Some(_)) => {
                return Err(ReadError::Malformed("multiple content-length headers".into()))
            }
            (Some((_, v)), None) => {
                if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(ReadError::Malformed(format!("bad content-length '{v}'")));
                }
                v.parse::<usize>()
                    .map_err(|_| ReadError::Malformed(format!("bad content-length '{v}'")))?
            }
        }
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let body = read_body(reader, content_length, &mut deadline)?;

    let keep_alive = match headers.iter().find(|(n, _)| n == "connection") {
        Some((_, v)) => !v.eq_ignore_ascii_case("close"),
        None => version != "HTTP/1.0",
    };
    // An armed deadline implies at least one byte arrived, so `started`
    // is always set by the time a full request has been parsed.
    let started = deadline.started.unwrap_or_else(Instant::now);
    Ok((Request { method, path, headers, body, keep_alive }, started))
}

/// Reads one CRLF- (or LF-) terminated line, charging `head_budget`
/// bytes and `deadline` time. `Ok(None)` means EOF before any byte of
/// this line.
fn read_line(
    reader: &mut impl BufRead,
    head_budget: &mut usize,
    deadline: &mut Deadline,
) -> Result<Option<String>, ReadError> {
    let mut raw = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) if raw.is_empty() => return Ok(None),
            Ok(0) => break,
            Ok(_) => {
                deadline.arm();
                deadline.check("reading the request head")?;
                *head_budget += 1;
                if *head_budget > MAX_HEAD_BYTES {
                    return Err(ReadError::TooLarge(format!(
                        "request head exceeds {MAX_HEAD_BYTES} bytes"
                    )));
                }
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                // Socket poll expired. Before the first byte that is just
                // an idle connection; mid-request it charges the deadline
                // and retries, so partial state is never thrown away.
                if !deadline.armed() {
                    return Err(ReadError::Idle);
                }
                deadline.check("waiting for the rest of the request head")?;
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| ReadError::Malformed("non-UTF-8 request head".into()))
}

/// Reads exactly `len` body bytes under the request deadline. EOF
/// mid-body is a malformed request (the declared length lied), not a
/// transport error, so the client gets a structured 400 when possible.
fn read_body(
    reader: &mut impl BufRead,
    len: usize,
    deadline: &mut Deadline,
) -> Result<Vec<u8>, ReadError> {
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match reader.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(ReadError::Malformed(format!(
                    "connection closed mid-body ({filled} of {len} bytes)"
                )))
            }
            Ok(n) => {
                deadline.arm();
                filled += n;
                deadline.check("reading the request body")?;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                deadline.check("waiting for the rest of the request body")?;
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    Ok(body)
}

/// One response about to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set (lower-case names).
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plaintext response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds one extra response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response (with `Connection: keep-alive`/`close` as asked).
///
/// # Errors
/// Propagates transport failures.
pub fn write_response(
    stream: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), None).map(|(r, _)| r)
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let r = parse("POST /classify?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/classify");
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.body, b"body");
        assert!(r.keep_alive);
    }

    #[test]
    fn respects_connection_close_and_http10() {
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().keep_alive);
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn malformed_heads_are_rejected() {
        assert!(matches!(parse("\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(parse("GET\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(parse("GET / SPDY/3\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: soup\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn content_length_must_be_unique_and_strictly_decimal() {
        // Conflicting duplicates: classic request-smuggling shape.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!"),
            Err(ReadError::Malformed(_))
        ));
        // Even agreeing duplicates are refused outright.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody"),
            Err(ReadError::Malformed(_))
        ));
        // usize::parse would accept "+4"; HTTP does not.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: +4\r\n\r\nbody"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\nbody"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length:\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn transfer_encoding_is_refused_not_ignored() {
        // The desync bug this guards against: a chunked body left unread
        // on the socket gets reparsed as the next request. Any
        // Transfer-Encoding value must be refused before body handling.
        match parse(
            "POST /classify HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nbody\r\n0\r\n\r\n",
        ) {
            Err(ReadError::Unsupported(d)) => assert!(d.contains("transfer-encoding"), "{d}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // TE + Content-Length together (the classic smuggling shape).
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\nbody"),
            Err(ReadError::Unsupported(_))
        ));
        // Exotic codings are equally unimplemented.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"),
            Err(ReadError::Unsupported(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_without_reading_them() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&raw), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn early_eof_mid_body_is_malformed() {
        match parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc") {
            Err(ReadError::Malformed(d)) => assert!(d.contains("mid-body"), "{d}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_budget_is_a_timeout() {
        // A zero budget expires on the very first byte.
        let raw = "GET / HTTP/1.1\r\n\r\n";
        let result =
            read_request(&mut BufReader::new(raw.as_bytes()), Some(Duration::from_secs(0)));
        assert!(matches!(result, Err(ReadError::Timeout(_))), "{result:?}");
    }

    #[test]
    fn response_writes_status_line_and_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(400, "{}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_are_written() {
        let mut out = Vec::new();
        let response = Response::json(503, "{}").with_header("retry-after", "1");
        write_response(&mut out, &response, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
    }
}
