//! A deliberately small HTTP/1.1 implementation — just enough for a JSON
//! inference API, built as an **incremental push parser** so the event
//! loop can feed it whatever bytes the socket has and never block.
//!
//! [`RequestParser::advance`] consumes bytes and yields at most one
//! complete [`Request`] per call (pipelined leftovers stay with the
//! caller). Bodies arrive either via `Content-Length` or via
//! `Transfer-Encoding: chunked`, which is decoded incrementally here —
//! smuggling-safe by construction, since the parser owns all framing:
//! chunk sizes are strictly hex, the decoded body is capped at
//! [`MAX_BODY_BYTES`], `Transfer-Encoding` combined with
//! `Content-Length` is refused outright (the classic desync shape), and
//! non-chunked codings stay 501. Timeouts are no longer this module's
//! business: the event loop's timer wheel owns deadlines and slow-loris
//! detection.

use std::io::{self, Write};

/// Upper bound on the request head (request line + headers), also
/// charged against chunked trailers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (declared or chunk-decoded).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Upper bound on one chunk-size line (hex size + extensions).
pub const MAX_CHUNK_LINE: usize = 256;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target with any query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes or the de-chunked payload).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// `true` for HTTP/1.1 (chunked responses allowed), `false` for 1.0.
    pub http11: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a byte stream could not be parsed into a request.
#[derive(Debug)]
pub enum ParseError {
    /// The bytes were not parseable HTTP (reply 400).
    Malformed(String),
    /// Head, body, or chunk framing exceeded the hard limits (reply 413).
    TooLarge(String),
    /// Valid HTTP this server refuses to implement — a non-chunked
    /// `Transfer-Encoding` coding (reply 501 and close).
    Unsupported(String),
}

impl ParseError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::Malformed(_) => 400,
            ParseError::TooLarge(_) => 413,
            ParseError::Unsupported(_) => 501,
        }
    }

    /// Human detail for the structured error body.
    pub fn detail(&self) -> &str {
        match self {
            ParseError::Malformed(d) | ParseError::TooLarge(d) | ParseError::Unsupported(d) => d,
        }
    }
}

/// Head fields carried between states while the body streams in.
#[derive(Clone, Debug)]
struct Head {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    keep_alive: bool,
    http11: bool,
}

enum State {
    /// Accumulating the request head into `line_buf`.
    ReadingHead,
    /// Reading a `Content-Length` body.
    FixedBody { remaining: usize },
    /// Accumulating one chunk-size line.
    ChunkLine,
    /// Reading chunk payload bytes.
    ChunkData { remaining: usize },
    /// Expecting the CRLF that terminates a chunk's payload.
    ChunkCrlf { seen_cr: bool },
    /// Accumulating trailer lines after the terminal `0` chunk.
    Trailers,
}

/// Incremental request parser: feed bytes with [`advance`], get back how
/// many were consumed and at most one completed request. After a request
/// completes the parser resets itself for the next one (keep-alive); the
/// caller re-feeds any unconsumed pipelined bytes.
///
/// [`advance`]: RequestParser::advance
pub struct RequestParser {
    state: State,
    /// Head bytes, chunk-size line, or current trailer line.
    line_buf: Vec<u8>,
    body: Vec<u8>,
    head: Option<Head>,
    /// Trailer bytes consumed so far (charged against [`MAX_HEAD_BYTES`]).
    trailer_bytes: usize,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    pub fn new() -> RequestParser {
        RequestParser {
            state: State::ReadingHead,
            line_buf: Vec::new(),
            body: Vec::new(),
            head: None,
            trailer_bytes: 0,
        }
    }

    /// `true` once any byte of the current request has been consumed —
    /// EOF while started means the peer quit mid-request (400 material),
    /// EOF while not started is the clean end of a keep-alive session.
    pub fn started(&self) -> bool {
        !matches!(self.state, State::ReadingHead) || !self.line_buf.is_empty()
    }

    fn reset(&mut self) {
        self.state = State::ReadingHead;
        self.line_buf.clear();
        self.body = Vec::new();
        self.head = None;
        self.trailer_bytes = 0;
    }

    fn finish(&mut self, consumed: usize) -> Result<(usize, Option<Request>), ParseError> {
        let head = self.head.take().expect("finish without parsed head");
        let body = std::mem::take(&mut self.body);
        self.reset();
        Ok((
            consumed,
            Some(Request {
                method: head.method,
                path: head.path,
                headers: head.headers,
                body,
                keep_alive: head.keep_alive,
                http11: head.http11,
            }),
        ))
    }

    /// Consume bytes from `input`. Returns how many bytes were consumed
    /// and a request if one completed; unconsumed bytes belong to the
    /// *next* request and must be re-fed later.
    ///
    /// # Errors
    /// [`ParseError`] poisons the connection: the caller answers with the
    /// mapped status and closes (framing can no longer be trusted).
    pub fn advance(&mut self, input: &[u8]) -> Result<(usize, Option<Request>), ParseError> {
        let mut pos = 0;
        while pos < input.len() {
            match self.state {
                State::ReadingHead => {
                    let b = input[pos];
                    pos += 1;
                    self.line_buf.push(b);
                    if self.line_buf.len() > MAX_HEAD_BYTES {
                        return Err(ParseError::TooLarge(format!(
                            "request head exceeds {MAX_HEAD_BYTES} bytes"
                        )));
                    }
                    let ends_head = b == b'\n'
                        && (self.line_buf.ends_with(b"\n\n")
                            || self.line_buf.ends_with(b"\n\r\n")
                            || self.line_buf == b"\n"
                            || self.line_buf == b"\r\n");
                    if !ends_head {
                        continue;
                    }
                    let head_text = std::mem::take(&mut self.line_buf);
                    let head = parse_head(&head_text)?;
                    let te = head
                        .headers
                        .iter()
                        .find(|(n, _)| n == "transfer-encoding")
                        .map(|(_, v)| v.clone());
                    let cl = content_length(&head.headers)?;
                    match te.as_deref() {
                        Some(v) if v.eq_ignore_ascii_case("chunked") => {
                            // TE + Content-Length together is the classic
                            // request-smuggling shape: refuse outright.
                            if cl.is_some() {
                                return Err(ParseError::Malformed(
                                    "both transfer-encoding and content-length present".into(),
                                ));
                            }
                            self.head = Some(head);
                            self.state = State::ChunkLine;
                        }
                        Some(v) => {
                            return Err(ParseError::Unsupported(format!(
                                "transfer-encoding '{v}' not implemented"
                            )));
                        }
                        None => {
                            let len = cl.unwrap_or(0);
                            if len > MAX_BODY_BYTES {
                                return Err(ParseError::TooLarge(format!(
                                    "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
                                )));
                            }
                            self.head = Some(head);
                            if len == 0 {
                                return self.finish(pos);
                            }
                            self.body.reserve(len.min(64 * 1024));
                            self.state = State::FixedBody { remaining: len };
                        }
                    }
                }
                State::FixedBody { ref mut remaining } => {
                    let take = (*remaining).min(input.len() - pos);
                    self.body.extend_from_slice(&input[pos..pos + take]);
                    pos += take;
                    *remaining -= take;
                    if *remaining == 0 {
                        return self.finish(pos);
                    }
                }
                State::ChunkLine => {
                    let b = input[pos];
                    pos += 1;
                    if b == b'\n' {
                        let line = std::mem::take(&mut self.line_buf);
                        let size = parse_chunk_size(&line)?;
                        if size == 0 {
                            self.state = State::Trailers;
                        } else {
                            if self.body.len() + size > MAX_BODY_BYTES {
                                return Err(ParseError::TooLarge(format!(
                                    "chunked body exceeds the {MAX_BODY_BYTES}-byte limit"
                                )));
                            }
                            self.state = State::ChunkData { remaining: size };
                        }
                    } else {
                        self.line_buf.push(b);
                        if self.line_buf.len() > MAX_CHUNK_LINE {
                            return Err(ParseError::Malformed(format!(
                                "chunk-size line exceeds {MAX_CHUNK_LINE} bytes"
                            )));
                        }
                    }
                }
                State::ChunkData { ref mut remaining } => {
                    let take = (*remaining).min(input.len() - pos);
                    self.body.extend_from_slice(&input[pos..pos + take]);
                    pos += take;
                    *remaining -= take;
                    if *remaining == 0 {
                        self.state = State::ChunkCrlf { seen_cr: false };
                    }
                }
                State::ChunkCrlf { ref mut seen_cr } => {
                    let b = input[pos];
                    pos += 1;
                    match b {
                        b'\r' if !*seen_cr => *seen_cr = true,
                        b'\n' => self.state = State::ChunkLine,
                        _ => {
                            return Err(ParseError::Malformed(
                                "chunk data not followed by CRLF".into(),
                            ));
                        }
                    }
                }
                State::Trailers => {
                    let b = input[pos];
                    pos += 1;
                    self.trailer_bytes += 1;
                    if self.trailer_bytes > MAX_HEAD_BYTES {
                        return Err(ParseError::TooLarge(format!(
                            "chunked trailers exceed {MAX_HEAD_BYTES} bytes"
                        )));
                    }
                    if b == b'\n' {
                        let line = std::mem::take(&mut self.line_buf);
                        // Empty line ends the trailers (and the request);
                        // trailer fields themselves are discarded.
                        if line.is_empty() || line == b"\r" {
                            return self.finish(pos);
                        }
                    } else {
                        self.line_buf.push(b);
                    }
                }
            }
        }
        Ok((pos, None))
    }
}

/// Parse an accumulated head (request line + headers + blank line).
fn parse_head(raw: &[u8]) -> Result<Head, ParseError> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| ParseError::Malformed("non-UTF-8 request head".into()))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line =
        lines.next().ok_or_else(|| ParseError::Malformed("empty request line".into()))?;
    if request_line.is_empty() {
        return Err(ParseError::Malformed("empty request line".into()));
    }
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target =
        parts.next().ok_or_else(|| ParseError::Malformed("missing request target".into()))?;
    let version =
        parts.next().ok_or_else(|| ParseError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!("unsupported protocol '{version}'")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("header without ':': '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let keep_alive = match headers.iter().find(|(n, _)| n == "connection") {
        Some((_, v)) => !v.eq_ignore_ascii_case("close"),
        None => version != "HTTP/1.0",
    };
    Ok(Head { method, path, headers, keep_alive, http11: version != "HTTP/1.0" })
}

/// The validated `Content-Length`, if present. Exactly one header
/// (duplicates are a smuggling vector, conflicting or not) of strictly
/// decimal digits (`usize::parse` would admit a leading `+`).
fn content_length(headers: &[(String, String)]) -> Result<Option<usize>, ParseError> {
    let mut declared = headers.iter().filter(|(n, _)| n == "content-length");
    match (declared.next(), declared.next()) {
        (None, _) => Ok(None),
        (Some(_), Some(_)) => Err(ParseError::Malformed("multiple content-length headers".into())),
        (Some((_, v)), None) => {
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseError::Malformed(format!("bad content-length '{v}'")));
            }
            v.parse::<usize>()
                .map(Some)
                .map_err(|_| ParseError::Malformed(format!("bad content-length '{v}'")))
        }
    }
}

/// Parse one chunk-size line: strictly hex digits, optional `;extensions`
/// (discarded), size bounded by [`MAX_BODY_BYTES`].
fn parse_chunk_size(line: &[u8]) -> Result<usize, ParseError> {
    let line = if line.last() == Some(&b'\r') { &line[..line.len() - 1] } else { line };
    let hex = match line.iter().position(|&b| b == b';') {
        Some(i) => &line[..i],
        None => line,
    };
    let hex = std::str::from_utf8(hex)
        .map_err(|_| ParseError::Malformed("non-UTF-8 chunk-size line".into()))?
        .trim();
    if hex.is_empty() || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(ParseError::Malformed(format!("bad chunk size '{hex}'")));
    }
    if hex.len() > 8 {
        // 8 hex digits already addresses 4 GiB — far past the body cap.
        return Err(ParseError::TooLarge(format!("chunk size '{hex}' is absurd")));
    }
    let size = usize::from_str_radix(hex, 16)
        .map_err(|_| ParseError::Malformed(format!("bad chunk size '{hex}'")))?;
    if size > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge(format!(
            "chunk of {size} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    Ok(size)
}

/// One response about to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers beyond the standard set (lower-case names).
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plaintext response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds one extra response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.headers.push((name, value.into()));
        self
    }
}

/// How a response body is framed on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Framing {
    /// `content-length: n` — the body is written as one run of bytes.
    Length(usize),
    /// `transfer-encoding: chunked` — the body streams in size-prefixed
    /// chunks (HTTP/1.1 clients only).
    Chunked,
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response head (status line through the blank line).
pub fn encode_head(response: &Response, keep_alive: bool, framing: Framing) -> Vec<u8> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
    );
    match framing {
        Framing::Length(n) => {
            let _ = write!(head, "content-length: {n}\r\n");
        }
        Framing::Chunked => head.push_str("transfer-encoding: chunked\r\n"),
    }
    let _ = write!(head, "connection: {}\r\n", if keep_alive { "keep-alive" } else { "close" });
    for (name, value) in &response.headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    head.into_bytes()
}

/// Serializes a whole response with `content-length` framing (blocking
/// helper for tests and one-shot writers; the event loop writes
/// incrementally via [`encode_head`]).
///
/// # Errors
/// Propagates transport failures.
pub fn write_response(
    stream: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let head = encode_head(response, keep_alive, Framing::Length(response.body.len()));
    stream.write_all(&head)?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        parse_bytes(raw.as_bytes())
    }

    fn parse_bytes(raw: &[u8]) -> Result<Request, ParseError> {
        let mut p = RequestParser::new();
        match p.advance(raw)? {
            (_, Some(r)) => Ok(r),
            (n, None) => {
                Err(ParseError::Malformed(format!("incomplete after {n} of {} bytes", raw.len())))
            }
        }
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let r = parse("POST /classify?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/classify");
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.body, b"body");
        assert!(r.keep_alive);
        assert!(r.http11);
    }

    #[test]
    fn respects_connection_close_and_http10() {
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().keep_alive);
        let r10 = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r10.keep_alive);
        assert!(!r10.http11);
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().keep_alive);
    }

    #[test]
    fn byte_at_a_time_feeding_yields_the_same_request() {
        let raw = b"POST /classify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut p = RequestParser::new();
        let mut got = None;
        for (i, b) in raw.iter().enumerate() {
            let (consumed, req) = p.advance(std::slice::from_ref(b)).unwrap();
            assert_eq!(consumed, 1, "byte {i} not consumed");
            if let Some(r) = req {
                assert_eq!(i, raw.len() - 1, "completed early at byte {i}");
                got = Some(r);
            }
        }
        let r = got.expect("request completed");
        assert_eq!(r.body, b"hello");
        assert!(!p.started(), "parser reset after completion");
    }

    #[test]
    fn pipelined_bytes_are_left_unconsumed() {
        let raw = b"GET /health HTTP/1.1\r\n\r\nGET /model HTTP/1.1\r\n\r\n";
        let mut p = RequestParser::new();
        let (consumed, first) = p.advance(raw).unwrap();
        assert_eq!(first.unwrap().path, "/health");
        assert!(consumed < raw.len());
        let (rest, second) = p.advance(&raw[consumed..]).unwrap();
        assert_eq!(consumed + rest, raw.len());
        assert_eq!(second.unwrap().path, "/model");
    }

    #[test]
    fn malformed_heads_are_rejected() {
        assert!(matches!(parse("\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(parse("GET\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(parse("GET / SPDY/3\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: soup\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn content_length_must_be_unique_and_strictly_decimal() {
        // Conflicting duplicates: classic request-smuggling shape.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\nbody!"),
            Err(ParseError::Malformed(_))
        ));
        // Even agreeing duplicates are refused outright.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody"),
            Err(ParseError::Malformed(_))
        ));
        // usize::parse would accept "+4"; HTTP does not.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: +4\r\n\r\nbody"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\nbody"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length:\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn chunked_bodies_are_decoded() {
        let r = parse(
            "POST /classify HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             4\r\nbody\r\n6;ext=1\r\n-more-\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.body, b"body-more-");
        assert!(r.keep_alive, "decoded chunked body leaves the stream in sync");
    }

    #[test]
    fn chunked_trailers_are_consumed_and_discarded() {
        let r = parse(
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
             3\r\nabc\r\n0\r\nx-trailer: ignored\r\n\r\n",
        )
        .unwrap();
        assert_eq!(r.body, b"abc");
    }

    #[test]
    fn chunked_plus_content_length_is_smuggling_and_refused() {
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\nContent-Length: 4\r\n\r\nbody"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn non_chunked_codings_stay_unimplemented() {
        match parse("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n") {
            Err(ParseError::Unsupported(d)) => assert!(d.contains("gzip"), "{d}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn bad_chunk_framing_is_malformed() {
        // Non-hex size.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        // Chunk data not followed by CRLF.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcX\r\n0\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        // Empty size line.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_chunked_bodies_are_rejected_incrementally() {
        // A single declared chunk past the cap dies on the size line,
        // before any payload is buffered.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nffffffff\r\n"),
            Err(ParseError::TooLarge(_))
        ));
        // Many small chunks crossing the cap die at the crossing.
        let mut p = RequestParser::new();
        p.advance(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap();
        let chunk = format!("{:x}\r\n{}\r\n", 1 << 20, "x".repeat(1 << 20));
        let mut result = Ok(());
        for _ in 0..=(MAX_BODY_BYTES >> 20) {
            if let Err(e) = p.advance(chunk.as_bytes()).map(|_| ()) {
                result = Err(e);
                break;
            }
        }
        assert!(matches!(result, Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn oversized_bodies_are_rejected_without_reading_them() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&raw), Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn huge_heads_are_rejected_mid_stream() {
        let mut p = RequestParser::new();
        let filler = format!("GET / HTTP/1.1\r\nx-pad: {}\r\n", "y".repeat(MAX_HEAD_BYTES));
        assert!(matches!(p.advance(filler.as_bytes()), Err(ParseError::TooLarge(_))));
    }

    #[test]
    fn incomplete_requests_report_started() {
        let mut p = RequestParser::new();
        assert!(!p.started());
        p.advance(b"GET /he").unwrap();
        assert!(p.started());
    }

    #[test]
    fn response_writes_status_line_and_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(400, "{}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_are_written() {
        let mut out = Vec::new();
        let response = Response::json(503, "{}").with_header("retry-after", "1");
        write_response(&mut out, &response, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
    }

    #[test]
    fn chunked_head_advertises_transfer_encoding() {
        let head = encode_head(&Response::json(200, ""), true, Framing::Chunked);
        let text = String::from_utf8(head).unwrap();
        assert!(text.contains("transfer-encoding: chunked\r\n"), "{text}");
        assert!(!text.contains("content-length"), "{text}");
    }
}
