//! A deliberately small HTTP/1.1 implementation on `std::io` — just
//! enough for a JSON inference API: request-line + headers +
//! `Content-Length` bodies in, fixed-status responses out, with
//! keep-alive. No chunked encoding, no TLS, no async.

use std::io::{self, BufRead, Write};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target with any query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty when there is no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not a fault.
    Closed,
    /// Transport failure mid-request.
    Io(io::Error),
    /// The bytes were not parseable HTTP (reply 400).
    Malformed(String),
    /// Head or body exceeded the hard limits (reply 413).
    TooLarge(String),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from a buffered stream.
///
/// # Errors
/// See [`ReadError`]; [`ReadError::Closed`] is the clean-EOF case.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line(reader, &mut head_bytes)? {
        None => return Err(ReadError::Closed),
        Some(line) if line.is_empty() => {
            return Err(ReadError::Malformed("empty request line".into()))
        }
        Some(line) => line,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target =
        parts.next().ok_or_else(|| ReadError::Malformed("missing request target".into()))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported protocol '{version}'")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader, &mut head_bytes)? {
            None => return Err(ReadError::Malformed("connection closed mid-headers".into())),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("header without ':': '{line}'")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad content-length '{v}'")))?,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let keep_alive = match headers.iter().find(|(n, _)| n == "connection") {
        Some((_, v)) => !v.eq_ignore_ascii_case("close"),
        None => version != "HTTP/1.0",
    };
    Ok(Request { method, path, headers, body, keep_alive })
}

/// Reads one CRLF- (or LF-) terminated line, charging `budget`.
/// `Ok(None)` means clean EOF before any byte.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, ReadError> {
    let mut raw = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) if raw.is_empty() => return Ok(None),
            Ok(0) => break,
            Ok(_) => {
                *budget += 1;
                if *budget > MAX_HEAD_BYTES {
                    return Err(ReadError::TooLarge(format!(
                        "request head exceeds {MAX_HEAD_BYTES} bytes"
                    )));
                }
                if byte[0] == b'\n' {
                    break;
                }
                raw.push(byte[0]);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| ReadError::Malformed("non-UTF-8 request head".into()))
}

/// One response about to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response { status, content_type: "application/json", body: body.into() }
    }

    /// A plaintext response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response { status, content_type: "text/plain; charset=utf-8", body: body.into() }
    }
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes a response (with `Connection: keep-alive`/`close` as asked).
///
/// # Errors
/// Propagates transport failures.
pub fn write_response(
    stream: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let r = parse("POST /classify?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody")
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/classify");
        assert_eq!(r.header("host"), Some("h"));
        assert_eq!(r.body, b"body");
        assert!(r.keep_alive);
    }

    #[test]
    fn respects_connection_close_and_http10() {
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        assert!(parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().keep_alive);
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse(""), Err(ReadError::Closed)));
    }

    #[test]
    fn malformed_heads_are_rejected() {
        assert!(matches!(parse("\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(parse("GET\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(parse("GET / SPDY/3\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: soup\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_without_reading_them() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&raw), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn response_writes_status_line_and_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(400, "{}"), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
