//! Coarse hashed timer wheel for per-connection deadlines.
//!
//! The event loop arms one deadline per connection (request deadline,
//! write stall, or close-linger) and cancels lazily: each entry carries a
//! generation number, and the connection bumps its generation whenever
//! the deadline is disarmed or re-armed, so stale entries fall out on
//! expiry instead of requiring O(n) removal. Entries further out than one
//! wheel revolution re-hash when their slot comes around.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    gen: u64,
    deadline: Instant,
}

pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    granularity: Duration,
    /// Wall time of the cursor's slot boundary.
    base: Instant,
    cursor: usize,
    len: usize,
}

impl TimerWheel {
    pub fn new(granularity: Duration, slots: usize) -> TimerWheel {
        assert!(slots >= 2 && granularity > Duration::ZERO);
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            base: Instant::now(),
            cursor: 0,
            len: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Arm a deadline for `(token, gen)`. Multiple entries for one token
    /// may coexist; only the one matching the connection's current
    /// generation is honored by the caller.
    pub fn insert(&mut self, token: u64, gen: u64, deadline: Instant) {
        // Round up so an entry never lands in a slot that expires before
        // its deadline; cap at one revolution — far-out entries re-hash
        // when their slot comes around.
        let ticks = if deadline <= self.base {
            1
        } else {
            let d = deadline - self.base;
            (d.as_nanos() / self.granularity.as_nanos()) as usize + 1
        };
        let capped = ticks.clamp(1, self.slots.len() - 1);
        let slot = (self.cursor + capped) % self.slots.len();
        self.slots[slot].push(Entry { token, gen, deadline });
        self.len += 1;
    }

    /// Advance the wheel to `now` and collect every `(token, gen)` whose
    /// deadline has passed. Entries that hashed early (deadline beyond one
    /// revolution) are re-inserted rather than reported.
    pub fn expired(&mut self, now: Instant) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if self.len == 0 {
            // Keep the cursor from lagging arbitrarily far behind.
            self.catch_up(now);
            return out;
        }
        let mut pending: Vec<Entry> = Vec::new();
        while self.base + self.granularity <= now {
            self.base += self.granularity;
            self.cursor = (self.cursor + 1) % self.slots.len();
            let drained = std::mem::take(&mut self.slots[self.cursor]);
            for e in drained {
                self.len -= 1;
                if e.deadline <= now {
                    out.push((e.token, e.gen));
                } else {
                    pending.push(e);
                }
            }
        }
        for e in pending {
            self.insert(e.token, e.gen, e.deadline);
        }
        out
    }

    fn catch_up(&mut self, now: Instant) {
        while self.base + self.granularity <= now {
            self.base += self.granularity;
            self.cursor = (self.cursor + 1) % self.slots.len();
        }
    }

    /// How long the loop may sleep before the next tick matters.
    pub fn next_wakeup(&self) -> Option<Duration> {
        if self.is_empty() {
            None
        } else {
            Some(self.granularity)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn expires_in_order_and_only_once() {
        let mut w = TimerWheel::new(Duration::from_millis(5), 32);
        let now = Instant::now();
        w.insert(1, 0, now + Duration::from_millis(10));
        w.insert(2, 0, now + Duration::from_millis(40));
        assert_eq!(w.len(), 2);

        sleep(Duration::from_millis(20));
        let fired = w.expired(Instant::now());
        assert_eq!(fired, vec![(1, 0)]);
        assert_eq!(w.len(), 1);

        sleep(Duration::from_millis(35));
        let fired = w.expired(Instant::now());
        assert_eq!(fired, vec![(2, 0)]);
        assert!(w.is_empty());

        sleep(Duration::from_millis(10));
        assert!(w.expired(Instant::now()).is_empty());
    }

    #[test]
    fn far_deadlines_survive_multiple_revolutions() {
        // 4-slot wheel at 1ms: a 30ms deadline needs ~8 revolutions.
        let mut w = TimerWheel::new(Duration::from_millis(1), 4);
        let now = Instant::now();
        w.insert(9, 3, now + Duration::from_millis(30));
        sleep(Duration::from_millis(10));
        assert!(w.expired(Instant::now()).is_empty());
        assert_eq!(w.len(), 1, "early entry re-hashed, not dropped");
        sleep(Duration::from_millis(25));
        assert_eq!(w.expired(Instant::now()), vec![(9, 3)]);
    }

    #[test]
    fn generations_ride_along_untouched() {
        let mut w = TimerWheel::new(Duration::from_millis(2), 8);
        let now = Instant::now();
        w.insert(5, 7, now);
        sleep(Duration::from_millis(6));
        assert_eq!(w.expired(Instant::now()), vec![(5, 7)]);
    }

    #[test]
    fn past_deadline_fires_on_next_tick() {
        let mut w = TimerWheel::new(Duration::from_millis(2), 8);
        let now = Instant::now();
        w.insert(1, 0, now - Duration::from_millis(50));
        sleep(Duration::from_millis(5));
        assert_eq!(w.expired(Instant::now()), vec![(1, 0)]);
    }
}
