//! Deterministic fault injection for robustness testing.
//!
//! The server calls [`point`] / [`io_point`] / [`io_shape`] at named
//! **sites** on its hot paths (`"classify"`, `"reload"`, `"write"`,
//! `"worker"`, `"event_loop"`). In a
//! normal build those calls compile to nothing; under `cfg(test)` or the
//! `chaos` cargo feature a test can arm a site with [`inject`] and the
//! next hits fire the configured [`Fault`]:
//!
//! ```ignore
//! chaos::inject("classify", Fault::Panic, Trigger::Probability { p: 0.05, seed: 42 });
//! chaos::inject("write", Fault::IoError, Trigger::EveryNth(50));
//! ```
//!
//! Probability triggers draw from a per-site seeded xorshift stream, so
//! a chaos run is reproducible byte-for-byte: same seed, same faults, in
//! the same order (per site — thread interleaving still varies which
//! *request* each fault lands on, which is the point of the exercise).
//!
//! This is the measurement half of the robustness story: the serve layer
//! claims to survive panics, slow I/O, and write failures, and the chaos
//! integration test injects exactly those and checks the metrics balance
//! afterwards instead of assuming it.

/// Shape of one event-loop I/O operation as decided by [`io_shape`]
/// (always `Normal` when chaos is compiled out).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoShape {
    /// Perform the syscall as-is.
    Normal,
    /// Pretend the fd is not ready: skip the syscall, stay registered.
    Eagain,
    /// Cap the transfer at one byte (partial read / short write).
    Short,
    /// Replace the syscall with an injected failure.
    Error,
}

#[cfg(any(test, feature = "chaos"))]
mod imp {
    use super::IoShape;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::Duration;

    /// What an armed site does when it fires.
    #[derive(Clone, Debug)]
    pub enum Fault {
        /// `panic!` at the site (exercises `catch_unwind` / the supervisor).
        Panic,
        /// Sleep for the given duration (stalled I/O, slow reload).
        Delay(Duration),
        /// Surface an injected `io::Error` (only at [`io_point`] sites).
        IoError,
        /// Pretend the socket is not ready (`EAGAIN`) at an [`io_shape`]
        /// site: the event loop must back off to the poller and retry,
        /// never spin or drop the connection.
        Eagain,
        /// Truncate one readiness-loop read/write to a single byte at an
        /// [`io_shape`] site: exercises partial-progress resumption in
        /// the parser and the response writer.
        ShortIo,
    }

    /// When an armed site fires.
    #[derive(Clone, Debug)]
    pub enum Trigger {
        /// Fire each hit independently with probability `p`, drawn from a
        /// xorshift stream seeded with `seed` (deterministic per site).
        Probability {
            /// Chance in `[0, 1]` that one hit fires.
            p: f64,
            /// Stream seed; equal seeds give equal fire patterns.
            seed: u64,
        },
        /// Fire every `n`-th hit (1-based; `EveryNth(1)` fires always).
        EveryNth(u64),
        /// Fire the first `n` hits, then go quiet.
        Times(u64),
    }

    struct Site {
        fault: Fault,
        trigger: Trigger,
        hits: u64,
        fires: u64,
        rng: u64,
    }

    impl Site {
        fn should_fire(&mut self) -> bool {
            self.hits += 1;
            let fire = match self.trigger {
                Trigger::Probability { p, .. } => {
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    ((self.rng >> 11) as f64 / (1u64 << 53) as f64) < p
                }
                Trigger::EveryNth(n) => self.hits.is_multiple_of(n.max(1)),
                Trigger::Times(n) => self.hits <= n,
            };
            if fire {
                self.fires += 1;
            }
            fire
        }
    }

    /// `true` as soon as any site is armed — the fast path for unarmed
    /// production-shaped runs is one relaxed load.
    static ARMED: AtomicBool = AtomicBool::new(false);
    static SITES: OnceLock<Mutex<HashMap<&'static str, Site>>> = OnceLock::new();

    fn sites() -> MutexGuard<'static, HashMap<&'static str, Site>> {
        SITES
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms `site` with a fault and a firing rule (replacing any previous
    /// arming of the same site).
    pub fn inject(site: &'static str, fault: Fault, trigger: Trigger) {
        let rng = match trigger {
            // Seed 0 would make xorshift emit zeros forever.
            Trigger::Probability { seed, .. } => seed | 1,
            _ => 1,
        };
        sites().insert(site, Site { fault, trigger, hits: 0, fires: 0, rng });
        ARMED.store(true, Ordering::SeqCst);
    }

    /// Disarms one site (its hit/fire counts are discarded).
    pub fn clear_site(site: &str) {
        let mut map = sites();
        map.remove(site);
        if map.is_empty() {
            ARMED.store(false, Ordering::SeqCst);
        }
    }

    /// Disarms everything. Prefer [`clear_site`] inside test binaries
    /// whose tests run concurrently.
    pub fn clear() {
        sites().clear();
        ARMED.store(false, Ordering::SeqCst);
    }

    /// How many times `site` has fired (for test assertions).
    pub fn fired(site: &str) -> u64 {
        sites().get(site).map_or(0, |s| s.fires)
    }

    /// How many times `site` was hit, fired or not.
    pub fn hits(site: &str) -> u64 {
        sites().get(site).map_or(0, |s| s.hits)
    }

    fn draw(site: &str) -> Option<Fault> {
        if !ARMED.load(Ordering::Relaxed) {
            return None;
        }
        let mut map = sites();
        let entry = map.get_mut(site)?;
        entry.should_fire().then(|| entry.fault.clone())
    }

    /// A fault site that can panic or stall. Injected `IoError`s are
    /// meaningless here and ignored.
    pub fn point(site: &'static str) {
        match draw(site) {
            Some(Fault::Panic) => panic!("chaos: injected panic at '{site}'"),
            Some(Fault::Delay(d)) => std::thread::sleep(d),
            Some(Fault::IoError) | Some(Fault::Eagain) | Some(Fault::ShortIo) | None => {}
        }
    }

    /// A fault site on an I/O path: returns the injected error (panics
    /// and delays also apply).
    pub fn io_point(site: &'static str) -> std::io::Result<()> {
        match draw(site) {
            Some(Fault::Panic) => panic!("chaos: injected panic at '{site}'"),
            Some(Fault::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(Fault::IoError) => {
                Err(std::io::Error::other(format!("chaos: injected i/o error at '{site}'")))
            }
            Some(Fault::Eagain) | Some(Fault::ShortIo) | None => Ok(()),
        }
    }

    /// How an event-loop read/write at `site` should behave this hit.
    /// Unlike [`io_point`], the caller applies the shape *before* the
    /// syscall: `Eagain` skips it (fake not-ready), `Short` caps the
    /// transfer at one byte, `Error` replaces it with a failure.
    pub fn io_shape(site: &'static str) -> IoShape {
        match draw(site) {
            Some(Fault::Panic) => panic!("chaos: injected panic at '{site}'"),
            Some(Fault::Delay(d)) => {
                std::thread::sleep(d);
                IoShape::Normal
            }
            Some(Fault::Eagain) => IoShape::Eagain,
            Some(Fault::ShortIo) => IoShape::Short,
            Some(Fault::IoError) => IoShape::Error,
            None => IoShape::Normal,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn every_nth_fires_on_schedule() {
            inject("chaos_self_nth", Fault::Panic, Trigger::EveryNth(3));
            let fired_pattern: Vec<bool> = (0..9)
                .map(|_| std::panic::catch_unwind(|| point("chaos_self_nth")).is_err())
                .collect();
            assert_eq!(fired_pattern, [false, false, true, false, false, true, false, false, true]);
            assert_eq!(fired("chaos_self_nth"), 3);
            clear_site("chaos_self_nth");
        }

        #[test]
        fn times_fires_then_goes_quiet() {
            inject("chaos_self_times", Fault::IoError, Trigger::Times(2));
            assert!(io_point("chaos_self_times").is_err());
            assert!(io_point("chaos_self_times").is_err());
            for _ in 0..20 {
                assert!(io_point("chaos_self_times").is_ok());
            }
            assert_eq!(fired("chaos_self_times"), 2);
            clear_site("chaos_self_times");
        }

        #[test]
        fn probability_stream_is_deterministic_and_near_rate() {
            let run = |site: &'static str| -> (u64, Vec<bool>) {
                inject(site, Fault::IoError, Trigger::Probability { p: 0.25, seed: 99 });
                let pattern: Vec<bool> = (0..4000).map(|_| io_point(site).is_err()).collect();
                let n = fired(site);
                clear_site(site);
                (n, pattern)
            };
            let (fires_a, pattern_a) = run("chaos_self_prob_a");
            let (fires_b, pattern_b) = run("chaos_self_prob_b");
            assert_eq!(pattern_a, pattern_b, "same seed must fire identically");
            assert_eq!(fires_a, fires_b);
            let rate = fires_a as f64 / 4000.0;
            assert!((0.18..0.32).contains(&rate), "rate {rate} far from p=0.25");
        }

        #[test]
        fn unarmed_sites_are_inert() {
            point("chaos_self_unarmed");
            assert!(io_point("chaos_self_unarmed").is_ok());
            assert_eq!(fired("chaos_self_unarmed"), 0);
        }
    }
}

#[cfg(any(test, feature = "chaos"))]
pub use imp::*;

// Production builds (no `chaos` feature): every site is a no-op the
// optimizer removes entirely.
#[cfg(not(any(test, feature = "chaos")))]
mod stub {
    /// No-op fault site (chaos disabled at compile time).
    #[inline(always)]
    pub fn point(_site: &'static str) {}

    /// No-op I/O fault site (chaos disabled at compile time).
    #[inline(always)]
    pub fn io_point(_site: &'static str) -> std::io::Result<()> {
        Ok(())
    }

    /// No-op I/O shape site (chaos disabled at compile time).
    #[inline(always)]
    pub fn io_shape(_site: &'static str) -> super::IoShape {
        super::IoShape::Normal
    }
}

#[cfg(not(any(test, feature = "chaos")))]
pub use stub::*;
