//! Raw-syscall shim for the event loop: readiness polling (epoll on
//! Linux, kqueue on macOS), a self-pipe waker, and an fd-limit helper.
//!
//! The serve crate is std-only — no `libc` crate — so the handful of
//! syscalls the event loop needs are declared here as `extern "C"`
//! bindings against the platform libc that std already links. The shim
//! exposes a tiny level-triggered `Poller` (register / modify /
//! deregister / wait) keyed by opaque `u64` tokens, plus a `Waker`
//! (nonblocking pipe) that worker threads use to nudge the loop when a
//! completed response is ready to write.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

use std::os::raw::{c_int, c_void};

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0x800;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x4;

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

#[repr(C)]
struct Rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on an owned fd with valid F_GETFL/F_SETFL arguments.
    unsafe {
        let flags = fcntl(fd, F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// Raise the process fd limit to at least `want` descriptors (soft limit,
/// capped by the hard limit). Used by the idle-connection soak bench,
/// which holds thousands of sockets in one process. Returns the resulting
/// soft limit.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit { rlim_cur: 0, rlim_max: 0 };
    // SAFETY: plain struct out-parameter; RLIMIT_NOFILE is valid.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    let target = want.min(lim.rlim_max);
    let new = Rlimit { rlim_cur: target, rlim_max: lim.rlim_max };
    // SAFETY: raising the soft limit within the hard limit is always legal.
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(target)
}

/// One readiness notification from `Poller::wait`.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Peer closed its write half (or the connection errored). The loop
    /// still drains any buffered input before closing.
    pub hangup: bool,
}

/// What a registered fd should be watched for. Hangup/error conditions
/// are always reported regardless of interest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Interest = Interest { readable: true, writable: false };
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

// ---------------------------------------------------------------------------
// Linux: epoll
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod imp {
    use super::*;

    // On x86 and x86_64 the kernel ABI packs epoll_event to 12 bytes;
    // other architectures use natural alignment.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 with a valid flag; fd ownership is ours.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd, buf: vec![EpollEvent { events: 0, data: 0 }; 1024] })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = EPOLLRDHUP;
            if interest.readable {
                m |= EPOLLIN;
            }
            if interest.writable {
                m |= EPOLLOUT;
            }
            m
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent { events: Self::mask(interest), data: token };
            // SAFETY: epfd and fd are live descriptors; ev outlives the call.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // SAFETY: DEL ignores the event argument on modern kernels but a
            // valid pointer keeps pre-2.6.9 semantics happy too.
            let mut ev = EpollEvent { events: 0, data: 0 };
            if unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let ms: c_int = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as c_int,
            };
            // SAFETY: buf is a live, correctly-sized array of EpollEvent.
            let n = unsafe {
                epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as c_int, ms)
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: we own epfd.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// macOS: kqueue
// ---------------------------------------------------------------------------

#[cfg(target_os = "macos")]
mod imp {
    use super::*;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[repr(C)]
    struct Kevent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
    }

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const Kevent,
            nchanges: c_int,
            eventlist: *mut Kevent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
    }

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x1;
    const EV_DELETE: u16 = 0x2;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    pub struct Poller {
        kq: RawFd,
        buf: Vec<Kevent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: kqueue() allocates a descriptor we then own.
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            let mut buf = Vec::with_capacity(1024);
            buf.resize_with(1024, || Kevent {
                ident: 0,
                filter: 0,
                flags: 0,
                fflags: 0,
                data: 0,
                udata: std::ptr::null_mut(),
            });
            Ok(Poller { kq, buf })
        }

        fn change(&self, fd: RawFd, filter: i16, flags: u16, token: u64) -> io::Result<()> {
            let ev = Kevent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token as *mut c_void,
            };
            // SAFETY: single well-formed changelist entry, no eventlist.
            if unsafe { kevent(self.kq, &ev, 1, std::ptr::null_mut(), 0, std::ptr::null()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn apply(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if interest.readable {
                self.change(fd, EVFILT_READ, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_READ, EV_DELETE, token);
            }
            if interest.writable {
                self.change(fd, EVFILT_WRITE, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, token);
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let _ = self.change(fd, EVFILT_READ, EV_DELETE, 0);
            let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, 0);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            out.clear();
            let ts;
            let ts_ptr = match timeout {
                None => std::ptr::null(),
                Some(d) => {
                    ts = Timespec { tv_sec: d.as_secs() as i64, tv_nsec: d.subsec_nanos() as i64 };
                    &ts as *const Timespec
                }
            };
            // SAFETY: buf is a live, correctly-sized eventlist.
            let n = unsafe {
                kevent(
                    self.kq,
                    std::ptr::null(),
                    0,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    ts_ptr,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in &self.buf[..n as usize] {
                out.push(Event {
                    token: ev.udata as u64,
                    readable: ev.filter == EVFILT_READ,
                    writable: ev.filter == EVFILT_WRITE,
                    hangup: ev.flags & (EV_EOF | EV_ERROR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: we own kq.
            unsafe {
                close(self.kq);
            }
        }
    }
}

#[cfg(not(any(target_os = "linux", target_os = "macos")))]
compile_error!("the serve event loop supports Linux (epoll) and macOS (kqueue) only");

pub use imp::Poller;

// ---------------------------------------------------------------------------
// Self-pipe waker
// ---------------------------------------------------------------------------

/// The read half of a nonblocking self-pipe, owned by the event loop and
/// registered with the poller. `drain` empties pending wake bytes.
pub struct WakeReceiver {
    fd: RawFd,
}

impl WakeReceiver {
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Consume all pending wake bytes.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a stack buffer from an fd we own.
            let n = unsafe { read(self.fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakeReceiver {
    fn drop(&mut self) {
        // SAFETY: we own the read end.
        unsafe {
            close(self.fd);
        }
    }
}

/// The write half of the self-pipe. Cloneable across worker threads; a
/// single byte per `wake` is enough (the loop drains in bulk), and a full
/// pipe already guarantees a pending wakeup, so EAGAIN is ignored.
pub struct Waker {
    fd: RawFd,
}

// SAFETY: write(2) on a shared fd is atomic per call; the fd stays valid
// for the lifetime of the Waker (closed only on drop of the last owner —
// we never clone the owning struct, workers share it behind an Arc).
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    pub fn wake(&self) {
        let byte = [1u8];
        // SAFETY: writing one byte from a stack buffer to an fd we own.
        unsafe {
            write(self.fd, byte.as_ptr() as *const c_void, 1);
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: we own the write end.
        unsafe {
            close(self.fd);
        }
    }
}

/// Create the wake pipe: (loop-side receiver, worker-side sender).
pub fn wake_pair() -> io::Result<(WakeReceiver, Waker)> {
    let mut fds = [0 as c_int; 2];
    // SAFETY: pipe() fills a 2-element array.
    if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
        return Err(io::Error::last_os_error());
    }
    let (r, w) = (fds[0], fds[1]);
    for fd in [r, w] {
        if let Err(e) = set_nonblocking(fd) {
            // SAFETY: cleaning up fds we just created.
            unsafe {
                close(r);
                close(w);
            }
            return Err(e);
        }
    }
    Ok((WakeReceiver { fd: r }, Waker { fd: w }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_reports_readability_and_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(listener.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "no connection yet → timeout, no events");

        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"x").unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn wake_pair_round_trips_through_poller() {
        let (rx, tx) = wake_pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(rx.fd(), 42, Interest::READ).unwrap();

        tx.wake();
        tx.wake();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        rx.drain();

        // Drained: next wait times out.
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.iter().all(|e| e.token != 42));
    }

    #[test]
    fn interest_modify_switches_direction() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        // A fresh connected socket is writable but not readable.
        poller.register(server.as_raw_fd(), 1, Interest::WRITE).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(1000))).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        // Drop write interest: nothing fires even though still writable.
        poller.modify(server.as_raw_fd(), 1, Interest::NONE).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.iter().all(|e| !e.writable));
        drop(client);
    }

    #[test]
    fn raise_nofile_limit_is_monotone() {
        let before = raise_nofile_limit(64).unwrap();
        assert!(before >= 64);
    }
}
