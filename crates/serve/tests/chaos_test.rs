//! Chaos harness: hammers a live server with a mixed hostile workload
//! (valid one-shot, valid keep-alive, malformed, oversized, half-open,
//! slow-writer clients, concurrent reloads) while deterministic faults
//! are injected at the named chaos sites — panics in classify, hard
//! worker kills, I/O errors on the write path, stalls in reload — and
//! then *measures* that the fault-tolerance story holds:
//!
//! * every connection reached a terminal outcome (response or clean
//!   close) — nothing hung, nothing was silently dropped;
//! * `/health` still answers 200;
//! * the worker pool is back at full strength, with every injected
//!   worker death matched by a supervisor respawn;
//! * the admission ledger balances: accepted = handled + shed.
//!
//! Build with `--features chaos` (CI does); without the feature this
//! file compiles to nothing and `cargo test` is unaffected.
#![cfg(feature = "chaos")]

use serve::chaos::{self, Fault, Trigger};
use serve::{serve, serve_models, ModelBundle, Provenance, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

const WORKERS: usize = 4;

/// Chaos state is process-global and both tests in this binary arm and
/// clear sites, so they must not overlap: each takes this gate first.
static CHAOS_GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    CHAOS_GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn dataset(seed: u64) -> microarray::ContinuousDataset {
    microarray::synth::presets::all_aml(seed).scaled_down(40).generate()
}

fn boot() -> (ServerHandle, PathBuf, Vec<f64>) {
    let data = dataset(23);
    let bundle = ModelBundle::train(&data, Provenance::new("chaos", Some(23))).unwrap();
    let row = data.row(0).to_vec();
    let path = std::env::temp_dir().join(format!("bstc_chaos_bundle_{}.json", std::process::id()));
    bundle.save(&path).unwrap();
    let handle = serve(
        ServerConfig {
            threads: WORKERS,
            queue_depth: 64,
            request_timeout: Some(Duration::from_millis(1000)),
            drain_timeout: Duration::from_secs(5),
            bundle_path: Some(path.clone()),
            ..ServerConfig::default()
        },
        bundle,
    )
    .unwrap();
    (handle, path, row)
}

/// Terminal outcome of one client connection. There is deliberately no
/// "hung" variant: a read timeout panics the client thread and fails
/// the test, because a hang is exactly what the server must not do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Outcome {
    Status(u16),
    /// The server closed without a response (legal only under injected
    /// write faults or mid-write kills).
    ClosedByServer,
}

/// One-shot request: fresh connection, `connection: close`, full write,
/// then read the outcome. Panics (= test failure) on a client-side read
/// timeout, i.e. a server hang.
fn one_shot(addr: SocketAddr, method: &str, path: &str, body: &str) -> Outcome {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: chaos\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    read_outcome(stream)
}

fn read_outcome(stream: TcpStream) -> Outcome {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    match reader.read_line(&mut status_line) {
        Ok(0) => Outcome::ClosedByServer,
        Ok(_) => {
            let status: u16 = status_line
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("garbled status line '{status_line}'"));
            // Drain the rest so the server never sees us as a slow reader.
            let mut rest = Vec::new();
            let _ = reader.read_to_end(&mut rest);
            Outcome::Status(status)
        }
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            panic!("client read timed out: the server hung a connection")
        }
        Err(_) => Outcome::ClosedByServer,
    }
}

fn assert_allowed(outcome: Outcome, allowed: &[u16], who: &str) {
    match outcome {
        Outcome::ClosedByServer => {} // injected write fault / worker kill
        Outcome::Status(s) => {
            assert!(allowed.contains(&s), "{who}: unexpected status {s} (allowed {allowed:?})")
        }
    }
}

#[test]
fn mixed_workload_with_injected_faults_leaves_the_server_healthy() {
    let _gate = gate();
    let (handle, bundle_path, row) = boot();
    let addr = handle.addr();
    let classify_body = {
        let values: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        format!("{{\"values\":[{}]}}", values.join(","))
    };

    // Deterministic fault plan (fixed seeds → reproducible fire streams).
    chaos::inject("classify", Fault::Panic, Trigger::Probability { p: 0.05, seed: 1234 });
    chaos::inject("write", Fault::IoError, Trigger::Probability { p: 0.05, seed: 5678 });
    chaos::inject("reload", Fault::Delay(Duration::from_millis(100)), Trigger::EveryNth(2));
    chaos::inject("worker", Fault::Panic, Trigger::EveryNth(120));
    // Batch executions panic too: member jobs must resolve as 500s (via
    // the dropped completion senders), never hang their workers.
    chaos::inject("batcher", Fault::Panic, Trigger::EveryNth(25));

    std::thread::scope(|scope| {
        // 1. Valid one-shot clients.
        for t in 0..4 {
            let classify_body = &classify_body;
            scope.spawn(move || {
                for _ in 0..60 {
                    let outcome = one_shot(addr, "POST", "/classify", classify_body);
                    assert_allowed(outcome, &[200, 500, 503, 408], &format!("one-shot-{t}"));
                }
            });
        }
        // 2. Valid keep-alive clients (reconnect when a fault closes them).
        for t in 0..2 {
            let classify_body = &classify_body;
            scope.spawn(move || {
                let mut conn: Option<BufReader<TcpStream>> = None;
                for _ in 0..30 {
                    let mut reader = conn.take().unwrap_or_else(|| {
                        let s = TcpStream::connect(addr).expect("connect");
                        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                        BufReader::new(s)
                    });
                    let head = format!(
                        "POST /classify HTTP/1.1\r\nhost: chaos\r\ncontent-length: {}\r\n\r\n",
                        classify_body.len()
                    );
                    let sent = reader
                        .get_mut()
                        .write_all(head.as_bytes())
                        .and_then(|()| reader.get_mut().write_all(classify_body.as_bytes()));
                    if sent.is_err() {
                        continue; // stale conn: retry on a fresh one
                    }
                    let mut status_line = String::new();
                    match reader.read_line(&mut status_line) {
                        Ok(0) | Err(_) => continue, // injected fault closed us
                        Ok(_) => {}
                    }
                    let status: u16 = status_line
                        .split_whitespace()
                        .nth(1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(0);
                    assert!(
                        [200, 500, 503, 408].contains(&status),
                        "keep-alive-{t}: unexpected status {status}"
                    );
                    // Consume headers + body to stay a well-behaved peer.
                    let mut content_length = 0usize;
                    loop {
                        let mut line = String::new();
                        if reader.read_line(&mut line).unwrap_or(0) == 0 {
                            break;
                        }
                        let line = line.trim_end().to_ascii_lowercase();
                        if line.is_empty() {
                            break;
                        }
                        if let Some(v) = line.strip_prefix("content-length:") {
                            content_length = v.trim().parse().unwrap_or(0);
                        }
                    }
                    let mut body = vec![0u8; content_length];
                    if reader.read_exact(&mut body).is_ok() && status == 200 {
                        conn = Some(reader); // server kept it open
                    }
                }
            });
        }
        // 3. Malformed clients.
        for t in 0..2 {
            scope.spawn(move || {
                for i in 0..30 {
                    let garbage: &[u8] = match i % 3 {
                        0 => b"THIS IS NOT HTTP AT ALL\r\n\r\n",
                        1 => b"POST /classify HTTP/1.1\r\nno colon\r\n\r\n",
                        _ => b"POST /classify HTTP/1.1\r\ncontent-length: 9\r\n\r\n{\"va", // lies
                    };
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    let _ = stream.write_all(garbage);
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    assert_allowed(
                        read_outcome(stream),
                        &[400, 503, 408],
                        &format!("malformed-{t}"),
                    );
                }
            });
        }
        // 4. Oversized clients: a declared 17 MiB body is refused before
        // a byte of it is read.
        scope.spawn(move || {
            for _ in 0..10 {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                let head = format!(
                    "POST /classify HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                    17 * 1024 * 1024
                );
                let _ = stream.write_all(head.as_bytes());
                assert_allowed(read_outcome(stream), &[413, 503], "oversized");
            }
        });
        // 5. Slow writers: trickle a head slower than the budget allows.
        for t in 0..2 {
            scope.spawn(move || {
                for _ in 0..2 {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    for &byte in b"GET /health HTTP/1.1\r\nx-drip: aaaaaaaaaaaaaaaaaaaaaaaa" {
                        if stream.write_all(&[byte]).is_err() {
                            break; // server already timed us out
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    assert_allowed(read_outcome(stream), &[408, 503], &format!("slow-{t}"));
                }
            });
        }
        // 6. Half-open clients: connect, send nothing, hold, then leave.
        for _ in 0..2 {
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                std::thread::sleep(Duration::from_millis(1500));
                drop(stream);
            });
        }
        // 7. Reload hammer (every 2nd reload stalled by injection).
        {
            let bundle_path = &bundle_path;
            scope.spawn(move || {
                for _ in 0..10 {
                    let body = format!("{{\"path\": \"{}\"}}", bundle_path.display());
                    let outcome = one_shot(addr, "POST", "/reload", &body);
                    assert_allowed(outcome, &[200, 500, 503, 408], "reloader");
                    std::thread::sleep(Duration::from_millis(100));
                }
            });
        }
    });

    // Capture fire counts, then disarm so the assertion phase is quiet.
    let classify_fires = chaos::fired("classify");
    let write_fires = chaos::fired("write");
    let reload_fires = chaos::fired("reload");
    let worker_fires = chaos::fired("worker");
    let batcher_fires = chaos::fired("batcher");
    chaos::clear();

    // The fault plan actually exercised every site.
    assert!(classify_fires >= 1, "no classify panics fired");
    assert!(write_fires >= 1, "no write faults fired");
    assert!(reload_fires >= 1, "no reload stalls fired");
    assert!(worker_fires >= 1, "no worker kills fired");
    assert!(batcher_fires >= 1, "no batch-execution panics fired");

    // The pool self-heals: every injected worker death is matched by a
    // respawn and the pool returns to full strength.
    let deadline = Instant::now() + Duration::from_secs(10);
    let healed = loop {
        let snap = handle.metrics_snapshot();
        if snap.workers_alive == WORKERS as u64 && snap.workers_respawned == worker_fires {
            break snap;
        }
        assert!(Instant::now() < deadline, "pool never healed: {snap:?}, {worker_fires} kills");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(healed.workers_configured, WORKERS as u64);
    assert_eq!(healed.panics_caught, classify_fires, "every classify panic must be isolated");
    // Batch executions actually ran (classify traffic rides the batcher)
    // and every injected batch panic was isolated by its catch_unwind.
    assert!(healed.batches_executed >= 1, "no batches executed: {healed:?}");
    assert_eq!(healed.batch_panics, batcher_fires, "every batch panic must be isolated");

    // Liveness after the storm.
    assert_eq!(one_shot(addr, "GET", "/health", ""), Outcome::Status(200));

    // The ledgers balance once the queues drain: accepted = handled +
    // shed (no connection silently dropped), and every batch job a
    // worker submitted was resolved exactly once (answer, expiry, or
    // disconnect after an injected batch panic — no strands, no
    // double-completions).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = handle.metrics_snapshot();
        if snap.conns_accepted == snap.conns_handled + snap.conns_shed
            && snap.batch_jobs_submitted == snap.batch_jobs_completed
        {
            break;
        }
        assert!(Instant::now() < deadline, "ledger never balanced: {snap:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
    std::fs::remove_file(&bundle_path).ok();
}

/// Faults injected at the `event_loop` site — forced EAGAIN (the loop
/// pretends the socket is not ready), short reads/writes (1 byte per
/// syscall), and hard I/O errors — while a storm of valid, keep-alive,
/// malformed, and vanishing clients runs. Level-triggered readiness
/// must absorb the fake EAGAINs (the event re-fires), short I/O must
/// only slow things down, and errors must close exactly that one
/// connection. Afterwards nothing may be leaked (the open-connection
/// gauge returns to zero), the ledger must balance, and no client may
/// ever observe two responses to one request.
#[test]
fn event_loop_io_faults_never_leak_or_double_answer() {
    let _gate = gate();
    let (handle, bundle_path, row) = boot();
    let addr = handle.addr();
    let classify_body = {
        let values: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        format!("{{\"values\":[{}]}}", values.join(","))
    };

    // One phase per I/O shape the site supports; each must actually fire.
    for (phase, (fault, trigger)) in [
        (Fault::Eagain, Trigger::Probability { p: 0.2, seed: 42 }),
        (Fault::ShortIo, Trigger::Probability { p: 0.2, seed: 43 }),
        (Fault::IoError, Trigger::Probability { p: 0.03, seed: 44 }),
    ]
    .into_iter()
    .enumerate()
    {
        chaos::inject("event_loop", fault, trigger);
        std::thread::scope(|scope| {
            // Valid one-shot clients, each auditing for a double answer:
            // the full byte stream of a `connection: close` exchange may
            // contain at most one status line.
            for t in 0..3 {
                let classify_body = &classify_body;
                scope.spawn(move || {
                    for _ in 0..20 {
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                        let head = format!(
                            "POST /classify HTTP/1.1\r\nhost: chaos\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
                            classify_body.len()
                        );
                        let _ = stream.write_all(head.as_bytes());
                        let _ = stream.write_all(classify_body.as_bytes());
                        let mut text = String::new();
                        let mut reader = BufReader::new(stream);
                        match reader.read_to_string(&mut text) {
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock
                                        | std::io::ErrorKind::TimedOut
                                ) =>
                            {
                                panic!("oneshot-{t}: server hung a connection")
                            }
                            _ => {}
                        }
                        let answers = text.matches("HTTP/1.1 ").count();
                        assert!(answers <= 1, "oneshot-{t}: double answer:\n{text}");
                        if answers == 1 {
                            let status: u16 = text
                                .split_whitespace()
                                .nth(1)
                                .and_then(|s| s.parse().ok())
                                .unwrap_or(0);
                            assert!(
                                [200, 500, 503, 408].contains(&status),
                                "oneshot-{t}: unexpected status {status}"
                            );
                        }
                    }
                });
            }
            // Keep-alive clients: reconnect whenever a fault closes them.
            for t in 0..2 {
                let classify_body = &classify_body;
                scope.spawn(move || {
                    let mut conn: Option<BufReader<TcpStream>> = None;
                    for _ in 0..15 {
                        let mut reader = conn.take().unwrap_or_else(|| {
                            let s = TcpStream::connect(addr).expect("connect");
                            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                            BufReader::new(s)
                        });
                        let head = format!(
                            "POST /classify HTTP/1.1\r\nhost: chaos\r\ncontent-length: {}\r\n\r\n",
                            classify_body.len()
                        );
                        let sent = reader
                            .get_mut()
                            .write_all(head.as_bytes())
                            .and_then(|()| reader.get_mut().write_all(classify_body.as_bytes()));
                        if sent.is_err() {
                            continue;
                        }
                        let mut status_line = String::new();
                        match reader.read_line(&mut status_line) {
                            Ok(0) | Err(_) => continue,
                            Ok(_) => {}
                        }
                        let status: u16 = status_line
                            .split_whitespace()
                            .nth(1)
                            .and_then(|s| s.parse().ok())
                            .unwrap_or(0);
                        assert!(
                            [200, 500, 503, 408].contains(&status),
                            "keepalive-{t}: unexpected status {status}"
                        );
                        let mut content_length = 0usize;
                        loop {
                            let mut line = String::new();
                            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                                break;
                            }
                            let line = line.trim_end().to_ascii_lowercase();
                            if line.is_empty() {
                                break;
                            }
                            if let Some(v) = line.strip_prefix("content-length:") {
                                content_length = v.trim().parse().unwrap_or(0);
                            }
                        }
                        let mut body = vec![0u8; content_length];
                        if reader.read_exact(&mut body).is_ok() && status == 200 {
                            conn = Some(reader);
                        }
                    }
                });
            }
            // Malformed clients under I/O faults.
            scope.spawn(move || {
                for i in 0..15 {
                    let garbage: &[u8] = match i % 2 {
                        0 => b"NOT HTTP\r\n\r\n",
                        _ => b"POST /classify HTTP/1.1\r\nno colon\r\n\r\n",
                    };
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    let _ = stream.write_all(garbage);
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    assert_allowed(read_outcome(stream), &[400, 503, 408], "malformed");
                }
            });
            // Vanishing clients: write half a head and disappear — the
            // loop must reap these, not leak them.
            scope.spawn(move || {
                for _ in 0..8 {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let _ = stream.write_all(b"GET /health HTTP/1.1\r\nx-gone");
                    drop(stream);
                    std::thread::sleep(Duration::from_millis(20));
                }
            });
        });
        // `inject` resets the site's counters, so each phase is measured
        // on its own.
        assert!(chaos::fired("event_loop") >= 1, "phase {phase} never fired its event_loop fault");
    }
    chaos::clear_site("event_loop");

    // Liveness after the storm.
    assert_eq!(one_shot(addr, "GET", "/health", ""), Outcome::Status(200));

    // Nothing leaked: every connection reaches a terminal state (the
    // open gauge returns to the one-shot health check having closed),
    // and the admission ledger balances.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = handle.metrics_snapshot();
        if snap.conns_open == 0 && snap.conns_accepted == snap.conns_handled + snap.conns_shed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connections leaked or ledger unbalanced: open={} accepted={} handled={} shed={}",
            snap.conns_open,
            snap.conns_accepted,
            snap.conns_handled,
            snap.conns_shed
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
    std::fs::remove_file(&bundle_path).ok();
}

/// One generation of a tiny two-gene model whose class names carry a
/// generation tag, so any served label identifies exactly which version
/// produced it.
fn generation_bundle(tag: &str) -> ModelBundle {
    let data = microarray::ContinuousDataset::new(
        vec!["gA".into(), "gB".into()],
        vec![format!("{tag}-neg"), format!("{tag}-pos")],
        vec![
            vec![1.0, 5.0],
            vec![1.2, 3.0],
            vec![0.8, 5.5],
            vec![1.1, 2.9],
            vec![9.0, 5.1],
            vec![9.2, 3.2],
            vec![8.9, 5.2],
            vec![9.1, 3.1],
        ],
        vec![0, 0, 0, 0, 1, 1, 1, 1],
    )
    .unwrap();
    ModelBundle::train(&data, Provenance::new(tag, None)).unwrap()
}

/// Parses the `"label"` fields out of a batch-classify response body
/// without a full JSON parser (the bodies are machine-generated and the
/// labels match `[A-Za-z0-9-]+`).
fn labels_of(body: &str) -> Vec<String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while let Some(at) = rest.find("\"label\":") {
        rest = &rest[at + 8..];
        let Some(open) = rest.find('"') else { break };
        rest = &rest[open + 1..];
        let Some(close) = rest.find('"') else { break };
        labels.push(rest[..close].to_string());
        rest = &rest[close + 1..];
    }
    labels
}

/// Faults injected at the `registry` site — i/o errors and stalls in
/// the version-swap path, panics during lazy compilation — while
/// traffic interleaves with per-model reload hammers that flip each
/// model's artifact between two generations with *disjoint* label
/// sets. The atomicity claim is measured directly: every successful
/// batch response's labels must all belong to exactly one generation,
/// i.e. no request is ever answered by a half-swapped model; and the
/// admission ledger must still balance afterwards.
#[test]
fn registry_faults_never_expose_a_half_swapped_model() {
    let _gate = gate();
    let models_dir =
        std::env::temp_dir().join(format!("bstc_chaos_registry_{}", std::process::id()));
    let gens_dir = models_dir.join("generations");
    std::fs::create_dir_all(&gens_dir).unwrap();

    // Model "a" flips between generations a1/a2, "b" between b1/b2.
    let mut gen_paths = std::collections::HashMap::new();
    for (model, gens) in [("a", ["a1", "a2"]), ("b", ["b1", "b2"])] {
        for tag in gens {
            let path = gens_dir.join(format!("{tag}.bundle"));
            generation_bundle(tag).save(&path).unwrap();
            gen_paths.insert(tag, path);
        }
        std::fs::copy(&gen_paths[gens[0]], models_dir.join(format!("{model}.json"))).unwrap();
    }

    let handle = serve_models(ServerConfig {
        threads: WORKERS,
        queue_depth: 64,
        request_timeout: Some(Duration::from_millis(1000)),
        drain_timeout: Duration::from_secs(5),
        models_dir: Some(models_dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let batch_body = "{\"samples\":[[1.0,5.0],[9.0,5.1],[1.2,3.0]]}";

    // Three storm phases, one per fault kind the site supports. The
    // i/o error surfaces in `swap` (failed reloads, old version keeps
    // serving); the delay stalls both swap and lazy compile; the panic
    // fires inside the handler's catch_unwind at either site.
    let mut phase_fires = Vec::new();
    for (fault, trigger) in [
        (Fault::IoError, Trigger::EveryNth(3)),
        (Fault::Delay(Duration::from_millis(50)), Trigger::EveryNth(2)),
        (Fault::Panic, Trigger::EveryNth(7)),
    ] {
        chaos::inject("registry", fault, trigger);
        std::thread::scope(|scope| {
            // Traffic: batch classifies against both models; every 200
            // must answer from exactly one generation's label set.
            for t in 0..3 {
                scope.spawn(move || {
                    for i in 0..16 {
                        let model = ["a", "b"][(t + i) % 2];
                        let path = format!("/v1/models/{model}/classify");
                        let outcome = one_shot(addr, "POST", &path, batch_body);
                        match outcome {
                            Outcome::Status(200) => {}
                            other => {
                                assert_allowed(
                                    other,
                                    &[500, 503, 408],
                                    &format!("registry-traffic-{t}"),
                                );
                                continue;
                            }
                        }
                    }
                });
            }
            // Label auditors: same traffic but keeping the body, so the
            // generation-set invariant is actually checked.
            for t in 0..2 {
                scope.spawn(move || {
                    for i in 0..10 {
                        let model = ["a", "b"][(t + i) % 2];
                        let path = format!("/v1/models/{model}/classify");
                        let (status, body) = one_shot_with_body(addr, "POST", &path, batch_body);
                        if status != 200 {
                            assert!(
                                [500, 503, 408].contains(&status),
                                "auditor-{t}: unexpected status {status}"
                            );
                            continue;
                        }
                        let labels = labels_of(&body);
                        assert_eq!(labels.len(), 3, "auditor-{t}: {body}");
                        let gen_of = |l: &str| l.split('-').next().unwrap().to_string();
                        let first = gen_of(&labels[0]);
                        assert!(
                            first.starts_with(model),
                            "auditor-{t}: model {model} answered with {labels:?}"
                        );
                        assert!(
                            labels.iter().all(|l| gen_of(l) == first),
                            "half-swapped answer: labels {labels:?} mix generations"
                        );
                    }
                });
            }
            // Reload hammers: flip each model's artifact between its two
            // generations and swap, concurrently with the traffic.
            for (model, gens) in [("a", ["a1", "a2"]), ("b", ["b1", "b2"])] {
                let gen_paths = &gen_paths;
                let models_dir = &models_dir;
                scope.spawn(move || {
                    for k in 0..8 {
                        let live = models_dir.join(format!("{model}.json"));
                        std::fs::copy(&gen_paths[gens[k % 2]], &live).unwrap();
                        let path = format!("/v1/models/{model}/reload");
                        let outcome = one_shot(addr, "POST", &path, "{}");
                        assert_allowed(
                            outcome,
                            &[200, 409, 500, 503, 408],
                            &format!("reloader-{model}"),
                        );
                        std::thread::sleep(Duration::from_millis(30));
                    }
                });
            }
        });
        phase_fires.push(chaos::fired("registry"));
    }
    chaos::clear_site("registry");
    for (i, fires) in phase_fires.iter().enumerate() {
        assert!(*fires >= 1, "phase {i} never fired its registry fault");
    }

    // Liveness, then the ledgers balance once the queues drain.
    assert_eq!(one_shot(addr, "GET", "/health", ""), Outcome::Status(200));
    for model in ["a", "b"] {
        let (status, body) =
            one_shot_with_body(addr, "POST", &format!("/v1/models/{model}/classify"), batch_body);
        assert_eq!(status, 200, "{model} dead after the storm: {body}");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = handle.metrics_snapshot();
        if snap.conns_accepted == snap.conns_handled + snap.conns_shed
            && snap.batch_jobs_submitted == snap.batch_jobs_completed
        {
            break;
        }
        assert!(Instant::now() < deadline, "ledger never balanced: {snap:?}");
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
    std::fs::remove_dir_all(&models_dir).ok();
}

/// Like [`one_shot`] but returns the response body too (0 status means
/// the server closed without responding).
fn one_shot_with_body(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: chaos\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    match reader.read_line(&mut status_line) {
        Ok(0) | Err(_) => return (0, String::new()),
        Ok(_) => {}
    }
    let status: u16 =
        status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut buf = vec![0u8; content_length];
    let _ = std::io::Read::read_exact(&mut reader, &mut buf);
    (status, String::from_utf8_lossy(&buf).into_owned())
}
