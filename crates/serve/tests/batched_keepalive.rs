//! Response routing under cross-connection batching: several keep-alive
//! clients pipeline distinct rows concurrently while a generous
//! `batch_wait` forces their jobs to coalesce into shared batch
//! executions, and every response must come back on the *right*
//! connection — correct echoed `x-request-id`, correct prediction for
//! that connection's row — with the `x-batch-id` header proving the
//! answers really were served out of shared batches.

use serde_json::Value;
use serve::{serve, ModelBundle, Provenance, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn dataset(seed: u64) -> microarray::ContinuousDataset {
    microarray::synth::presets::all_aml(seed).scaled_down(40).generate()
}

fn fmt_row(row: &[f64]) -> String {
    let inner: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", inner.join(","))
}

/// One keep-alive response: status, echoed request id, batch id, body.
struct KeepAliveResponse {
    status: u16,
    request_id: Option<String>,
    batch_id: Option<String>,
    body: String,
}

fn read_keepalive_response(reader: &mut BufReader<TcpStream>) -> KeepAliveResponse {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).expect("status").parse().unwrap();
    let mut request_id = None;
    let mut batch_id = None;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("x-request-id:") {
            request_id = Some(v.trim().to_string());
        } else if let Some(v) = lower.strip_prefix("x-batch-id:") {
            batch_id = Some(v.trim().to_string());
        } else if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).expect("body");
    KeepAliveResponse { status, request_id, batch_id, body: String::from_utf8(body).unwrap() }
}

#[test]
fn keepalive_clients_get_their_own_answers_under_concurrent_batching() {
    const CLIENTS: usize = 6;
    const REQUESTS: usize = 25;
    let data = dataset(29);
    let bundle = ModelBundle::train(&data, Provenance::new("batched", Some(29))).unwrap();
    let handle = serve(
        ServerConfig {
            threads: CLIENTS,
            // A wait long enough that the clients' concurrent requests
            // reliably coalesce into shared batches.
            max_batch: 16,
            batch_wait: Duration::from_millis(20),
            ..ServerConfig::default()
        },
        bundle.clone(),
    )
    .unwrap();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let data = &data;
            let bundle = &bundle;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut reader = BufReader::new(stream);
                for i in 0..REQUESTS {
                    let s = (t * 31 + i * 7) % data.n_samples();
                    let body = format!("{{\"values\":{}}}", fmt_row(data.row(s)));
                    let id = format!("client{t}-req{i}");
                    let head = format!(
                        "POST /classify HTTP/1.1\r\nhost: test\r\nx-request-id: {id}\r\n\
                         content-length: {}\r\n\r\n",
                        body.len()
                    );
                    reader.get_mut().write_all(head.as_bytes()).unwrap();
                    reader.get_mut().write_all(body.as_bytes()).unwrap();
                    let response = read_keepalive_response(&mut reader);
                    assert_eq!(response.status, 200, "{}", response.body);
                    // The response on this connection is for *this*
                    // request of *this* client...
                    assert_eq!(response.request_id.as_deref(), Some(id.as_str()));
                    // ...was served out of a batch execution...
                    assert!(response.batch_id.is_some(), "missing x-batch-id");
                    // ...and carries this row's prediction, not a
                    // batchmate's.
                    let served: Value = serde_json::from_str(&response.body).unwrap();
                    let p = served.get("prediction").unwrap();
                    let local = bundle.classify_row(data.row(s)).unwrap();
                    assert_eq!(
                        p.get("class").unwrap().as_u64(),
                        Some(local.class as u64),
                        "client {t} request {i} got a batchmate's answer"
                    );
                    assert_eq!(p.get("confidence").unwrap().as_f64(), Some(local.confidence));
                }
            });
        }
    });

    // The jobs really coalesced: more jobs than batch executions, and
    // every submitted job was resolved exactly once.
    let snap = handle.metrics_snapshot();
    assert_eq!(
        snap.batch_jobs_submitted + snap.batch_inline_fallbacks,
        (CLIENTS * REQUESTS) as u64
    );
    assert_eq!(snap.batch_jobs_submitted, snap.batch_jobs_completed);
    assert!(
        snap.batches_executed < snap.batch_jobs_submitted,
        "no coalescing happened: {} batches for {} jobs",
        snap.batches_executed,
        snap.batch_jobs_submitted
    );
    handle.shutdown();
}
