//! Malformed-HTTP corpus: every hostile byte stream a real network
//! delivers — truncated heads, colon-less headers, oversized heads,
//! lying or duplicated Content-Length, early EOF mid-body, broken or
//! absurd chunked framing, trickled slow-loris heads — must produce the
//! *exact* expected status code, and the (single!) worker must survive
//! to serve the next request.
//!
//! The server runs with `threads: 1`, so the follow-up `/health` after
//! each case is handled by the very worker that just absorbed the
//! malformed input: a crash or a wedged read would fail the next case.

use serve::{serve, ModelBundle, Provenance, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

fn boot() -> ServerHandle {
    let data = microarray::synth::presets::all_aml(5).scaled_down(40).generate();
    let bundle = ModelBundle::train(&data, Provenance::new("corpus", Some(5))).unwrap();
    serve(
        ServerConfig {
            threads: 1,
            request_timeout: Some(Duration::from_millis(900)),
            ..ServerConfig::default()
        },
        bundle,
    )
    .unwrap()
}

/// Writes raw bytes, half-closes, and reads back the status line (0 when
/// the server closed without answering).
fn send_raw(addr: SocketAddr, raw: &[u8]) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Writes may fail once the server has already rejected and closed
    // (e.g. the oversized head) — the response is still readable.
    let _ = stream.write_all(raw);
    let _ = stream.shutdown(Shutdown::Write);
    read_status(&mut stream)
}

fn read_status(stream: &mut TcpStream) -> u16 {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).unwrap_or(0) == 0 {
        return 0;
    }
    status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0)
}

fn health_ok(addr: SocketAddr) -> bool {
    send_raw(addr, b"GET /health HTTP/1.1\r\nconnection: close\r\n\r\n") == 200
}

#[test]
fn corpus_gets_exact_statuses_and_the_worker_survives_each_case() {
    let handle = boot();
    let addr = handle.addr();

    let huge_head = {
        let mut head = b"GET /health HTTP/1.1\r\n".to_vec();
        for i in 0..2000 {
            head.extend_from_slice(format!("x-pad-{i}: {}\r\n", "y".repeat(64)).as_bytes());
        }
        head.extend_from_slice(b"\r\n");
        head
    };
    let oversized_body =
        format!("POST /classify HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 17 * 1024 * 1024);

    let corpus: Vec<(&str, Vec<u8>, u16)> = vec![
        ("truncated request line", b"GET /he".to_vec(), 400),
        ("empty request line", b"\r\n".to_vec(), 400),
        ("header without colon", b"GET /health HTTP/1.1\r\nno colon here\r\n\r\n".to_vec(), 400),
        ("unsupported protocol", b"GET / SPDY/3\r\n\r\n".to_vec(), 400),
        ("huge head", huge_head, 413),
        (
            "non-numeric content-length",
            b"POST /classify HTTP/1.1\r\ncontent-length: soup\r\n\r\n".to_vec(),
            400,
        ),
        (
            "signed content-length",
            b"POST /classify HTTP/1.1\r\ncontent-length: +5\r\n\r\nhello".to_vec(),
            400,
        ),
        (
            "conflicting content-lengths",
            b"POST /classify HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 6\r\n\r\nbody!!"
                .to_vec(),
            400,
        ),
        (
            "duplicate agreeing content-lengths",
            b"POST /classify HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 4\r\n\r\nbody"
                .to_vec(),
            400,
        ),
        (
            "early EOF mid-body",
            b"POST /classify HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"values\"".to_vec(),
            400,
        ),
        ("declared body too large", oversized_body.into_bytes(), 413),
        (
            "transfer-encoding with content-length (smuggling shape)",
            b"POST /classify HTTP/1.1\r\ntransfer-encoding: chunked\r\ncontent-length: 4\r\n\r\nbody"
                .to_vec(),
            400,
        ),
        (
            "non-chunked transfer-encoding",
            b"POST /classify HTTP/1.1\r\ntransfer-encoding: gzip\r\n\r\n".to_vec(),
            501,
        ),
        (
            "non-hex chunk size",
            b"POST /classify HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nzz\r\nbody\r\n0\r\n\r\n"
                .to_vec(),
            400,
        ),
        (
            "chunk data without terminating CRLF",
            b"POST /classify HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n4\r\nbodyX0\r\n\r\n"
                .to_vec(),
            400,
        ),
        (
            "absurd chunk size",
            b"POST /classify HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nffffffff\r\n".to_vec(),
            413,
        ),
        (
            "truncated chunked body (EOF mid-chunk)",
            b"POST /classify HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n10\r\nonly-som".to_vec(),
            400,
        ),
    ];

    for (name, raw, expected) in corpus {
        let status = send_raw(addr, &raw);
        assert_eq!(status, expected, "case '{name}'");
        assert!(health_ok(addr), "worker died after case '{name}'");
    }

    let snapshot = handle.metrics_snapshot();
    assert_eq!(snapshot.workers_alive, 1, "the single worker must still be alive");
    assert_eq!(snapshot.workers_respawned, 0, "no case should have killed the worker");
    assert_eq!(snapshot.conns_accepted, snapshot.conns_handled + snapshot.conns_shed);
    handle.shutdown();
}

#[test]
fn chunked_body_is_never_reparsed_as_a_second_request() {
    // The desync shape: a chunked POST whose decoded body is itself a
    // well-formed GET. The parser owns the chunk framing end to end, so
    // those bytes are *body* — handed to /classify (where they fail as
    // JSON) — and never replayed as a second request. Exactly one
    // response must come back.
    let handle = boot();
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Keep-alive connection; the chunked "body" is a smuggled request.
    let smuggled = b"POST /classify HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n\
                     2a\r\nGET /model HTTP/1.1\r\nconnection: close\r\n\r\n\r\n0\r\n\r\n";
    stream.write_all(smuggled).expect("write");
    let _ = stream.shutdown(Shutdown::Write);

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("read status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    assert_eq!(status, 400, "decoded chunk body is not JSON: {status_line:?}");

    // Drain the rest of the 400; the connection must then close without
    // ever answering the smuggled GET (a second status line would be the
    // desync).
    let mut rest = String::new();
    while reader.read_line(&mut rest).unwrap_or(0) > 0 {}
    assert!(!rest.contains("HTTP/1.1 200"), "smuggled GET was answered — response desync:\n{rest}");

    assert!(health_ok(addr), "worker died on the chunked request");
    handle.shutdown();
}

#[test]
fn chunked_request_bodies_round_trip() {
    // The positive half of the chunked story: a well-formed chunked
    // POST decodes into exactly the declared payload and classifies
    // like its content-length twin, with the connection still usable.
    let handle = boot();
    let addr = handle.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // `{"nope": 1}` split across two chunks with an extension and a
    // trailer: every chunked-framing feature in one request. The body
    // reaches /classify intact, which answers its structured 400
    // (bad_request: no 'values'/'samples') — proof the payload was
    // decoded and dispatched, not refused at the framing layer.
    let chunked = b"POST /classify HTTP/1.1\r\ntransfer-encoding: chunked\r\n\
                    connection: close\r\n\r\n\
                    6;ext=1\r\n{\"nope\r\n5\r\n\": 1}\r\n0\r\nx-trailer: ignored\r\n\r\n";
    stream.write_all(chunked).expect("write");
    let _ = stream.shutdown(Shutdown::Write);

    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    use std::io::Read as _;
    let _ = reader.read_to_string(&mut response);
    assert!(response.starts_with("HTTP/1.1 400"), "unexpected response:\n{response}");
    assert!(response.contains("bad_request"), "body must have reached the handler:\n{response}");

    assert!(health_ok(addr), "server unusable after the chunked request");
    handle.shutdown();
}

#[test]
fn slow_loris_head_times_out_with_408_and_frees_the_worker() {
    let handle = boot();
    let addr = handle.addr();

    // Trickle a syntactically fine head one byte at a time, slower than
    // the budget allows but faster than any single socket poll — the old
    // server would sit on this worker forever.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(15))).unwrap();
    let head = b"GET /health HTTP/1.1\r\nx-slow: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    let started = std::time::Instant::now();
    let mut wrote_all = true;
    for &byte in head {
        if stream.write_all(&[byte]).is_err() {
            // The server already gave up on us mid-trickle: also a pass.
            wrote_all = false;
            break;
        }
        std::thread::sleep(Duration::from_millis(60));
        if started.elapsed() > Duration::from_secs(5) {
            break;
        }
    }
    if wrote_all {
        let status = read_status(&mut stream);
        // 408 when the response still got through; 0 when the server
        // closed the socket while bytes were in flight. Either way the
        // hold was bounded.
        assert!(status == 408 || status == 0, "unexpected status {status}");
    }
    drop(stream);

    // The single worker is free again and answers promptly.
    assert!(health_ok(addr), "worker still pinned after the slow-loris client");
    let snapshot = handle.metrics_snapshot();
    assert_eq!(snapshot.workers_alive, 1);
    assert!(snapshot.request_timeouts >= 1, "the trickled request must have timed out");
    handle.shutdown();
}
