//! End-to-end tests of the multi-model registry over real sockets: a
//! `--models-dir` server routing `/v1/models/{name}/classify` must be
//! *bit-identical* to a dedicated single-model server per bundle, the
//! LRU residency cap must evict compiled models under mixed traffic
//! without a single serving error, and shadow traffic must surface
//! disagreements on `/metrics`.

use serde_json::Value;
use serve::shadow::ShadowSpec;
use serve::{serve, serve_models, ModelBundle, Provenance, ServerConfig, ServerHandle};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn narrow_dataset(seed: u64) -> microarray::ContinuousDataset {
    microarray::synth::presets::all_aml(seed).scaled_down(40).generate()
}

fn wide_dataset(seed: u64) -> microarray::ContinuousDataset {
    microarray::synth::presets::lung(seed).scaled_down(40).generate()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bstc_registry_http_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fmt_row(row: &[f64]) -> String {
    let inner: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", inner.join(","))
}

/// One-shot HTTP client returning `(status, headers, body)`.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, BTreeMap<String, String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split_whitespace().nth(1).expect("status").parse().unwrap();
    let mut headers = BTreeMap::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((k, v)) = line.split_once(':') {
            headers.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    (status, headers, body)
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON '{body}': {e}"))
}

fn single_model_server(bundle: ModelBundle) -> ServerHandle {
    serve(ServerConfig { threads: 2, ..ServerConfig::default() }, bundle).unwrap()
}

#[test]
fn registry_routes_are_bit_identical_to_single_model_servers() {
    let narrow = narrow_dataset(41);
    let wide = wide_dataset(43);
    let alpha = ModelBundle::train(&narrow, Provenance::new("ds-alpha", Some(41))).unwrap();
    let beta = ModelBundle::train(&wide, Provenance::new("ds-beta", Some(43))).unwrap();
    assert_ne!(alpha.n_genes(), beta.n_genes(), "widths must differ for the test to bite");

    let dir = tmp_dir("bitident");
    alpha.save(dir.join("alpha.json")).unwrap();
    beta.save(dir.join("beta.json")).unwrap();

    let fleet = serve_models(ServerConfig {
        threads: 3,
        models_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let solo_alpha = single_model_server(alpha.clone());
    let solo_beta = single_model_server(beta.clone());

    // Every routed response — single and batch — is byte-for-byte the
    // response the dedicated single-model server gives for that bundle.
    for (name, data, solo) in [("alpha", &narrow, &solo_alpha), ("beta", &wide, &solo_beta)] {
        let path = format!("/v1/models/{name}/classify");
        for s in 0..data.n_samples().min(12) {
            let body = format!("{{\"values\":{}}}", fmt_row(data.row(s)));
            let (st_f, hd_f, body_f) = request(fleet.addr(), "POST", &path, &body);
            let (st_s, _, body_s) = request(solo.addr(), "POST", "/classify", &body);
            assert_eq!((st_f, &body_f), (st_s, &body_s), "{name} sample {s} diverged");
            assert_eq!(st_f, 200, "{body_f}");
            assert_eq!(
                hd_f.get("x-model").map(String::as_str),
                Some(format!("{name}@v1").as_str())
            );
        }
        let rows: Vec<String> = (0..4).map(|s| fmt_row(data.row(s))).collect();
        let body = format!("{{\"samples\":[{}]}}", rows.join(","));
        let (st_f, _, body_f) = request(fleet.addr(), "POST", &path, &body);
        let (st_s, _, body_s) = request(solo.addr(), "POST", "/classify", &body);
        assert_eq!((st_f, &body_f), (st_s, &body_s), "{name} batch diverged");
    }

    // The legacy unnamed route is an alias for the default model
    // (lexicographically first stem: alpha).
    let body = format!("{{\"values\":{}}}", fmt_row(narrow.row(0)));
    let (_, _, via_legacy) = request(fleet.addr(), "POST", "/classify", &body);
    let (_, _, via_named) = request(fleet.addr(), "POST", "/v1/models/alpha/classify", &body);
    assert_eq!(via_legacy, via_named, "legacy route must alias the default model");

    // Listing and metadata reflect the fleet.
    let (status, _, body) = request(fleet.addr(), "GET", "/v1/models", "");
    assert_eq!(status, 200);
    let listing = json(&body);
    assert_eq!(listing.get("default").unwrap().as_str(), Some("alpha"));
    assert_eq!(listing.get("models").unwrap().as_array().unwrap().len(), 2);
    let (status, _, body) = request(fleet.addr(), "GET", "/v1/models/beta", "");
    assert_eq!(status, 200);
    let meta = json(&body);
    assert_eq!(meta.get("name").unwrap().as_str(), Some("beta"));
    assert_eq!(meta.get("n_genes").unwrap().as_u64(), Some(beta.n_genes() as u64));

    // Unknown names are structured 404s; bad names structured 400s.
    let (status, _, body) = request(fleet.addr(), "POST", "/v1/models/ghost/classify", "{}");
    assert_eq!(status, 404, "{body}");
    assert_eq!(json(&body).get("error").unwrap().as_str(), Some("unknown_model"));
    let (status, _, body) = request(fleet.addr(), "GET", "/v1/models/.hidden", "");
    assert_eq!(status, 400, "{body}");
    assert_eq!(json(&body).get("error").unwrap().as_str(), Some("bad_model_name"));

    fleet.shutdown();
    solo_alpha.shutdown();
    solo_beta.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lru_cap_evicts_compiled_models_without_serving_errors() {
    let dir = tmp_dir("lru");
    let mut datasets = Vec::new();
    for i in 0..3u64 {
        let data = narrow_dataset(50 + i);
        let bundle =
            ModelBundle::train(&data, Provenance::new(format!("ds-{i}"), Some(50 + i))).unwrap();
        bundle.save(dir.join(format!("m{i}.json"))).unwrap();
        datasets.push((format!("m{i}"), data, bundle));
    }

    let fleet = serve_models(ServerConfig {
        threads: 3,
        models_dir: Some(dir.clone()),
        max_resident: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = fleet.addr();

    // Round-robin traffic across all three models thrashes the single
    // residency slot: every request must still be a correct 200.
    for round in 0..8 {
        for (name, data, bundle) in &datasets {
            let s = round % data.n_samples();
            let body = format!("{{\"values\":{}}}", fmt_row(data.row(s)));
            let (status, _, body) =
                request(addr, "POST", &format!("/v1/models/{name}/classify"), &body);
            assert_eq!(status, 200, "{name} round {round}: {body}");
            let local = bundle.classify_row(data.row(s)).unwrap();
            let p = json(&body);
            let p = p.get("prediction").unwrap();
            assert_eq!(p.get("class").unwrap().as_u64(), Some(local.class as u64));
            assert_eq!(p.get("confidence").unwrap().as_f64(), Some(local.confidence));
        }
    }

    let snap = fleet.metrics_snapshot();
    assert!(snap.compile_evictions >= 2, "no evictions under thrash: {snap:?}");
    assert!(snap.models_resident <= 1, "cap exceeded: {snap:?}");
    let (_, _, metrics) = request(addr, "GET", "/metrics", "");
    assert!(metrics.contains("bstc_models_resident 1"), "gauge missing:\n{metrics}");
    assert!(
        metrics.contains("bstc_model_compile_evictions_total"),
        "eviction counter missing:\n{metrics}"
    );
    fleet.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Two models trained on the same rows with flipped labels: every
/// shadowed request must disagree, and the disagreement counter must
/// surface on `/metrics` with the primary's `{model=...}` label.
#[test]
fn shadow_traffic_reports_disagreements_on_metrics() {
    let labels_a = vec![0, 0, 0, 0, 1, 1, 1, 1];
    let labels_b = vec![1, 1, 1, 1, 0, 0, 0, 0];
    let rows = vec![
        vec![1.0, 5.0],
        vec![1.2, 3.0],
        vec![0.8, 5.5],
        vec![1.1, 2.9],
        vec![9.0, 5.1],
        vec![9.2, 3.2],
        vec![8.9, 5.2],
        vec![9.1, 3.1],
    ];
    let mk = |labels: Vec<usize>| {
        microarray::ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            rows.clone(),
            labels,
        )
        .unwrap()
    };
    let dir = tmp_dir("shadow");
    ModelBundle::train(&mk(labels_a), Provenance::new("straight", None))
        .unwrap()
        .save(dir.join("primary.json"))
        .unwrap();
    ModelBundle::train(&mk(labels_b), Provenance::new("flipped", None))
        .unwrap()
        .save(dir.join("candidate.json"))
        .unwrap();

    let fleet = serve_models(ServerConfig {
        threads: 2,
        models_dir: Some(dir.clone()),
        default_model: Some("primary".into()),
        shadows: vec![ShadowSpec::parse("primary=candidate:100").unwrap()],
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = fleet.addr();

    const SENT: u64 = 5;
    for row in rows.iter().take(SENT as usize) {
        let body = format!("{{\"values\":{}}}", fmt_row(row));
        let (status, _, body) = request(addr, "POST", "/classify", &body);
        assert_eq!(status, 200, "{body}");
    }

    // The shadow executor replays asynchronously; wait for the ledger.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = fleet.metrics_snapshot();
        if snap.shadow_requests >= SENT {
            // Every replay compares a label-flipped candidate: all disagree.
            assert_eq!(snap.shadow_disagreements, snap.shadow_requests, "{snap:?}");
            assert_eq!(snap.shadow_dropped, 0, "{snap:?}");
            break;
        }
        assert!(Instant::now() < deadline, "shadow jobs never replayed: {snap:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    let (_, _, metrics) = request(addr, "GET", "/metrics", "");
    let line = metrics
        .lines()
        .find(|l| l.starts_with("bstc_shadow_disagreements_total{model=\"primary\"}"))
        .unwrap_or_else(|| panic!("no per-model disagreement sample:\n{metrics}"));
    let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 1, "disagreement counter is zero: {line}");
    assert!(metrics.contains("# TYPE bstc_shadow_disagreements_total counter"));
    assert!(metrics.contains("bstc_shadow_requests_total"));
    assert!(metrics.contains("bstc_shadow_latency_us_count"));

    fleet.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
