//! Proves the streaming bundle serializer's memory claim: writing an
//! artifact through [`ModelBundle::save_to_writer`] peaks at a small
//! fraction of what the historical tree path (`to_value` → `to_string` →
//! envelope) allocates, because no model-sized `Value` tree or payload
//! string ever exists. A live-bytes/high-water tracking global allocator
//! wraps the system one; this file holds exactly one test so no
//! concurrent test can pollute the counters.

use microarray::synth::SynthConfig;
use serve::{ModelBundle, Provenance, FORMAT_VERSION};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tracks currently-live heap bytes and their high-water mark.
struct PeakAlloc;

static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as u64, Ordering::SeqCst) + size as u64;
    PEAK.fetch_max(live, Ordering::SeqCst);
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size() as u64, Ordering::SeqCst);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= layout.size() {
            on_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub((layout.size() - new_size) as u64, Ordering::SeqCst);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: PeakAlloc = PeakAlloc;

/// Heap bytes the closure's execution adds above its starting live set,
/// at the worst moment.
fn peak_extra_during(f: impl FnOnce()) -> u64 {
    let live = LIVE.load(Ordering::SeqCst);
    PEAK.store(live, Ordering::SeqCst);
    f();
    PEAK.load(Ordering::SeqCst).saturating_sub(live)
}

#[test]
fn streaming_save_peaks_far_below_the_tree_path() {
    // Big enough that the model dwarfs the other bundle leaves.
    let data = SynthConfig {
        name: "stream-alloc".into(),
        n_genes: 200,
        class_sizes: vec![40, 40],
        class_names: vec!["a".into(), "b".into()],
        markers_per_class: 30,
        marker_shift: 2.5,
        marker_dropout: 0.15,
        marker_modules: 4,
        wobble_rate: 0.3,
        marker_flip: 0.2,
        atypical_rate: 0.0,
        atypical_strength: 0.3,
        seed: 17,
    }
    .generate();
    let bundle = ModelBundle::train(&data, Provenance::new("stream-alloc", Some(17))).unwrap();

    // The historical path, reproduced: full Value tree + canonical payload
    // string + envelope tree + envelope string, all live at once.
    let mut tree_len = 0usize;
    let tree_peak = peak_extra_during(|| {
        let payload = serde_json::to_value(&bundle).unwrap();
        let canonical = serde_json::to_string(&payload).unwrap();
        let envelope = serde_json::json!({
            "format_version": FORMAT_VERSION,
            "checksum": format!("fnv1a64:{:016x}", canonical.len() as u64), // stand-in
            "bundle": payload
        });
        tree_len = serde_json::to_string(&envelope).unwrap().len();
    });

    // The streaming path into a discarding sink (hash pass + write pass,
    // nothing buffered).
    let mut streamed_len = 0u64;
    let stream_peak = peak_extra_during(|| {
        let mut sink = CountingSink { bytes: 0 };
        bundle.save_to_writer(&mut sink).unwrap();
        streamed_len = sink.bytes;
    });

    assert_eq!(streamed_len as usize, tree_len, "the two paths emit the same byte count");
    assert!(
        stream_peak * 2 < tree_peak,
        "streaming save peaked at {stream_peak} B, tree path at {tree_peak} B — \
         expected the streaming path to stay under half (artifact is {streamed_len} B)"
    );
}

/// An `io::Write` that counts and discards.
struct CountingSink {
    bytes: u64,
}

impl std::io::Write for CountingSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}
