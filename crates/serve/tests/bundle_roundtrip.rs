//! Property tests of the bundle artifact: a saved-and-reloaded bundle
//! must be indistinguishable from the in-memory one on held-out data,
//! and any tampering with the file must be detected before serving.

use proptest::prelude::*;
use serve::{BundleError, ModelBundle, Provenance};

/// Synthetic ALL/AML data split into disjoint train/held-out halves.
fn split(seed: u64) -> (microarray::ContinuousDataset, microarray::ContinuousDataset) {
    let data = microarray::synth::presets::all_aml(seed).scaled_down(10).generate();
    let train_ids: Vec<usize> = (0..data.n_samples()).filter(|s| s % 2 == 0).collect();
    let held_ids: Vec<usize> = (0..data.n_samples()).filter(|s| s % 2 == 1).collect();
    (data.subset(&train_ids), data.subset(&held_ids))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn save_load_round_trip_preserves_held_out_predictions(seed in 0u64..10_000) {
        let (train, held_out) = split(seed);
        if train.first_empty_class().is_some() {
            return Ok(()); // degenerate split; nothing to train on
        }
        let bundle = ModelBundle::train(&train, Provenance::new("all/aml", Some(seed)))
            .expect("synthetic ALL/AML data always has informative genes");
        let loaded = ModelBundle::from_json(&bundle.to_json().unwrap()).unwrap();

        prop_assert_eq!(&loaded.class_names, &bundle.class_names);
        prop_assert_eq!(&loaded.item_names, &bundle.item_names);
        for s in 0..held_out.n_samples() {
            let here = bundle.classify_row(held_out.row(s)).unwrap();
            let there = loaded.classify_row(held_out.row(s)).unwrap();
            prop_assert_eq!(here.class, there.class);
            prop_assert_eq!(here.values, there.values); // bit-exact, not approximate
            prop_assert_eq!(here.confidence, there.confidence);
        }
    }

    #[test]
    fn any_single_byte_edit_is_detected(seed in 0u64..1_000, victim in 0usize..10_000) {
        let (train, _) = split(seed);
        if train.first_empty_class().is_some() {
            return Ok(());
        }
        let bundle = ModelBundle::train(&train, Provenance::new("all/aml", Some(seed))).unwrap();
        let text = bundle.to_json().unwrap();

        // Corrupt one digit somewhere in the payload (skipping the
        // envelope head so the checksum itself isn't the victim).
        let head = text.find("\"bundle\"").unwrap();
        let digits: Vec<usize> = text
            .char_indices()
            .filter(|&(i, c)| i > head && c.is_ascii_digit())
            .map(|(i, _)| i)
            .collect();
        let at = digits[victim % digits.len()];
        let mut bytes = text.into_bytes();
        bytes[at] = if bytes[at] == b'9' { b'0' } else { bytes[at] + 1 };
        let tampered = String::from_utf8(bytes).unwrap();

        match ModelBundle::from_json(&tampered) {
            Err(BundleError::ChecksumMismatch { .. }) | Err(BundleError::Json(_)) => {}
            Ok(_) => prop_assert!(false, "tampered bundle loaded successfully"),
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }
    }
}

#[test]
fn future_format_versions_are_refused_with_context() {
    let (train, _) = split(3);
    let bundle = ModelBundle::train(&train, Provenance::new("all/aml", None)).unwrap();
    let current = serve::FORMAT_VERSION;
    let future = current + 1;
    let text = bundle
        .to_json()
        .unwrap()
        .replace(&format!("\"format_version\":{current}"), &format!("\"format_version\":{future}"));
    match ModelBundle::from_json(&text) {
        Err(e @ BundleError::FormatVersion { .. }) => {
            let msg = e.to_string();
            assert!(
                msg.contains(&format!("version {future}"))
                    && msg.contains(&format!("version {current}")),
                "{msg}"
            );
        }
        other => panic!("expected FormatVersion error, got {other:?}"),
    }
}

#[test]
fn truncated_files_are_refused() {
    let (train, _) = split(4);
    let bundle = ModelBundle::train(&train, Provenance::new("all/aml", None)).unwrap();
    let text = bundle.to_json().unwrap();
    let truncated = &text[..text.len() / 2];
    assert!(matches!(ModelBundle::from_json(truncated), Err(BundleError::Json(_))));
}
