//! Graceful drain: shutdown while a request is in flight must let that
//! request finish and deliver its full response, close idle keep-alive
//! connections promptly, refuse new connections cleanly (no half-baked
//! HTTP answers), and leave the admission ledger balanced with the
//! open-connection gauge at zero.
//!
//! The in-flight window is made deterministic without fault injection:
//! a long `batch_wait` parks the dispatched request in the batcher's
//! coalescing window, so shutdown reliably begins while it is pending.

use serve::{serve, ModelBundle, Provenance, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

#[test]
fn drain_finishes_in_flight_work_and_refuses_new_connections() {
    let data = microarray::synth::presets::all_aml(31).scaled_down(40).generate();
    let bundle = ModelBundle::train(&data, Provenance::new("drain", Some(31))).unwrap();
    let row: Vec<String> = data.row(0).iter().map(|v| format!("{v}")).collect();
    let body = format!("{{\"values\":[{}]}}", row.join(","));

    let handle = serve(
        ServerConfig {
            threads: 2,
            // Park lone jobs in the batcher long enough that shutdown
            // reliably starts while this test's request is in flight.
            batch_wait: Duration::from_millis(400),
            max_batch: 64,
            drain_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
        bundle,
    )
    .unwrap();
    let addr = handle.addr();

    // Client A: a keep-alive request that will be dispatched and then
    // sit in the batch-coalescing window when the drain begins.
    let mut in_flight = TcpStream::connect(addr).expect("connect");
    in_flight.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let head =
        format!("POST /classify HTTP/1.1\r\nhost: drain\r\ncontent-length: {}\r\n\r\n", body.len());
    in_flight.write_all(head.as_bytes()).unwrap();
    in_flight.write_all(body.as_bytes()).unwrap();

    // Client B: idle keep-alive connection with nothing written — the
    // drain must close it immediately rather than wait it out.
    let mut idle = TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Give the loop time to parse and dispatch client A.
    std::thread::sleep(Duration::from_millis(100));

    let drainer = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(150));

    // New connections are refused cleanly while draining: either the
    // connect itself fails (listener gone) or the socket never receives
    // an HTTP answer — the OS backlog may accept, the server must not.
    assert!(connect_is_refused(addr), "server answered a connection made after drain began");

    // The idle connection is closed without a fabricated response.
    let mut buffer = [0u8; 1];
    assert!(
        !matches!(idle.read(&mut buffer), Ok(n) if n > 0),
        "idle connection received bytes during drain"
    );

    // The in-flight request completes with its full, well-formed answer.
    let mut reader = BufReader::new(in_flight);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("in-flight response status");
    let status: u16 =
        status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    assert_eq!(status, 200, "in-flight request must finish: {status_line:?}");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut payload = vec![0u8; content_length];
    reader.read_exact(&mut payload).expect("full in-flight body");
    let payload = String::from_utf8(payload).unwrap();
    assert!(payload.contains("\"prediction\""), "truncated drain response: {payload}");

    // After the drain the ledger is settled: nothing open, nothing
    // unaccounted.
    let snapshot = drainer.join().expect("shutdown thread");
    assert_eq!(snapshot.conns_open, 0, "connections leaked across shutdown");
    assert_eq!(
        snapshot.conns_accepted,
        snapshot.conns_handled + snapshot.conns_shed,
        "ledger unbalanced: {snapshot:?}"
    );
    assert!(snapshot.conns_accepted >= 2, "both test connections must be accounted");
}

/// `true` when a fresh connection gets no HTTP answer: connect refused
/// outright, or accepted by the OS backlog but closed without bytes.
fn connect_is_refused(addr: SocketAddr) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return true;
    };
    let _ = stream.write_all(b"GET /health HTTP/1.1\r\nconnection: close\r\n\r\n");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buffer = [0u8; 1];
    !matches!(stream.read(&mut buffer), Ok(n) if n > 0)
}
