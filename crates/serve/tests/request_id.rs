//! Request-ID correlation: every response carries `X-Request-Id`
//! (echoing the client's when sane, minting one otherwise) and the same
//! ID appears in the structured JSON request log.
//!
//! This test owns its process's global log sink (it is its own test
//! binary), so capturing stderr into a buffer here cannot race other
//! serve tests.

use serve::{serve, ModelBundle, Provenance, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

fn boot() -> ServerHandle {
    let data = microarray::synth::presets::all_aml(5).scaled_down(40).generate();
    let bundle = ModelBundle::train(&data, Provenance::new("reqid", Some(5))).unwrap();
    serve(ServerConfig { threads: 1, ..ServerConfig::default() }, bundle).unwrap()
}

/// Sends one raw request and returns the full response text.
fn exchange(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(raw.as_bytes()).expect("write");
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn header_value<'a>(response: &'a str, name: &str) -> Option<&'a str> {
    response.lines().find_map(|line| {
        let (n, v) = line.split_once(':')?;
        n.eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

#[test]
fn request_id_is_echoed_minted_and_logged() {
    let log = obs::log::capture();
    obs::log::set_format(obs::LogFormat::Json);
    let handle = boot();
    let addr = handle.addr();

    // 1. A sane client ID is echoed verbatim.
    let response = exchange(
        addr,
        "GET /health HTTP/1.1\r\nx-request-id: client-id-42\r\nconnection: close\r\n\r\n",
    );
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert_eq!(header_value(&response, "x-request-id"), Some("client-id-42"), "{response}");

    // 2. Without one, the server mints a 16-hex-char ID.
    let response = exchange(addr, "GET /health HTTP/1.1\r\nconnection: close\r\n\r\n");
    let minted = header_value(&response, "x-request-id").expect("minted id").to_string();
    assert_eq!(minted.len(), 16, "{minted}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()), "{minted}");

    // 3. A hostile ID (header-injection shape) is replaced, not echoed.
    let response = exchange(
        addr,
        "GET /health HTTP/1.1\r\nx-request-id: evil\"id with spaces\r\nconnection: close\r\n\r\n",
    );
    let replaced = header_value(&response, "x-request-id").expect("replaced id");
    assert_ne!(replaced, "evil\"id with spaces");

    handle.shutdown();
    obs::log::use_stderr();
    obs::log::set_format(obs::LogFormat::Text);

    // 4. Both IDs appear in the structured JSON request log.
    let bytes = log.lock().unwrap().clone();
    let logged = String::from_utf8(bytes).unwrap();
    let request_lines: Vec<&str> =
        logged.lines().filter(|l| l.contains("\"event\":\"request\"")).collect();
    assert!(request_lines.len() >= 3, "expected ≥3 request log lines:\n{logged}");
    assert!(
        request_lines.iter().any(|l| l.contains("\"request_id\":\"client-id-42\"")),
        "echoed id missing from logs:\n{logged}"
    );
    assert!(
        request_lines.iter().any(|l| l.contains(&format!("\"request_id\":\"{minted}\""))),
        "minted id missing from logs:\n{logged}"
    );
    for line in &request_lines {
        assert!(line.starts_with("{\"ts\":") && line.ends_with('}'), "not a JSON line: {line}");
        assert!(line.contains("\"path\":\"/health\""), "{line}");
        assert!(line.contains("\"status\":\"200\""), "{line}");
        assert!(line.contains("\"latency_us\":"), "{line}");
    }
}
