//! Mixed-model traffic under cross-connection batching: two registered
//! models with *different query widths* are interleaved on a single
//! keep-alive connection and across concurrent connections while a
//! generous `batch_wait` coalesces jobs from both models into the same
//! batcher windows. The batcher must partition every window by bundle —
//! never feeding one model's rows through the other's kernel — and each
//! response must carry the right `x-model` tag, the right `x-batch-id`
//! evidence, and that connection's own prediction.

use serde_json::Value;
use serve::{serve_models, ModelBundle, Provenance, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn fmt_row(row: &[f64]) -> String {
    let inner: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", inner.join(","))
}

struct KeepAliveResponse {
    status: u16,
    request_id: Option<String>,
    batch_id: Option<String>,
    model: Option<String>,
    body: String,
}

fn read_keepalive_response(reader: &mut BufReader<TcpStream>) -> KeepAliveResponse {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).expect("status").parse().unwrap();
    let (mut request_id, mut batch_id, mut model) = (None, None, None);
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("x-request-id:") {
            request_id = Some(v.trim().to_string());
        } else if let Some(v) = lower.strip_prefix("x-batch-id:") {
            batch_id = Some(v.trim().to_string());
        } else if let Some(v) = lower.strip_prefix("x-model:") {
            model = Some(v.trim().to_string());
        } else if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    std::io::Read::read_exact(reader, &mut body).expect("body");
    KeepAliveResponse {
        status,
        request_id,
        batch_id,
        model,
        body: String::from_utf8(body).unwrap(),
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bstc_mixed_models_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn interleaved_models_batch_without_mixing_widths() {
    const CLIENTS: usize = 6;
    const REQUESTS: usize = 24;
    let narrow = microarray::synth::presets::all_aml(61).scaled_down(40).generate();
    let wide = microarray::synth::presets::lung(67).scaled_down(40).generate();
    let narrow_bundle = ModelBundle::train(&narrow, Provenance::new("narrow", Some(61))).unwrap();
    let wide_bundle = ModelBundle::train(&wide, Provenance::new("wide", Some(67))).unwrap();
    assert_ne!(
        narrow_bundle.n_genes(),
        wide_bundle.n_genes(),
        "the two models must have different query widths"
    );

    let dir = tmp_dir("interleave");
    narrow_bundle.save(dir.join("narrow.json")).unwrap();
    wide_bundle.save(dir.join("wide.json")).unwrap();
    let handle = serve_models(ServerConfig {
        threads: CLIENTS,
        models_dir: Some(dir.clone()),
        // A wait long enough that concurrent requests for *both* models
        // reliably land in shared batcher windows.
        max_batch: 16,
        batch_wait: Duration::from_millis(20),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = handle.addr();

    let models = [("narrow", &narrow, &narrow_bundle), ("wide", &wide, &wide_bundle)];
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let models = &models;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
                let mut reader = BufReader::new(stream);
                for i in 0..REQUESTS {
                    // Each client alternates models request-by-request,
                    // staggered by client index so at any instant both
                    // models are in flight fleet-wide.
                    let (name, data, bundle) = models[(t + i) % 2];
                    let s = (t * 31 + i * 7) % data.n_samples();
                    let body = format!("{{\"values\":{}}}", fmt_row(data.row(s)));
                    let id = format!("client{t}-req{i}");
                    let head = format!(
                        "POST /v1/models/{name}/classify HTTP/1.1\r\nhost: test\r\n\
                         x-request-id: {id}\r\ncontent-length: {}\r\n\r\n",
                        body.len()
                    );
                    reader.get_mut().write_all(head.as_bytes()).unwrap();
                    reader.get_mut().write_all(body.as_bytes()).unwrap();
                    let response = read_keepalive_response(&mut reader);
                    assert_eq!(response.status, 200, "{}", response.body);
                    assert_eq!(response.request_id.as_deref(), Some(id.as_str()));
                    assert!(response.batch_id.is_some(), "missing x-batch-id");
                    // The response was served by the named model...
                    assert_eq!(
                        response.model.as_deref(),
                        Some(format!("{name}@v1").as_str()),
                        "wrong x-model tag"
                    );
                    // ...and carries *that* model's prediction for this
                    // row — a width mix-up could not produce it.
                    let served: Value = serde_json::from_str(&response.body).unwrap();
                    let p = served.get("prediction").unwrap();
                    let local = bundle.classify_row(data.row(s)).unwrap();
                    assert_eq!(
                        p.get("class").unwrap().as_u64(),
                        Some(local.class as u64),
                        "client {t} request {i} ({name}) got someone else's answer"
                    );
                    assert_eq!(p.get("label").unwrap().as_str(), Some(local.label.as_str()));
                    assert_eq!(p.get("confidence").unwrap().as_f64(), Some(local.confidence));
                }
            });
        }
    });

    let snap = handle.metrics_snapshot();
    // The jobs really coalesced across connections...
    assert_eq!(
        snap.batch_jobs_submitted + snap.batch_inline_fallbacks,
        (CLIENTS * REQUESTS) as u64
    );
    assert_eq!(snap.batch_jobs_submitted, snap.batch_jobs_completed);
    assert!(
        snap.batches_executed < snap.batch_jobs_submitted,
        "no coalescing happened: {} batches for {} jobs",
        snap.batches_executed,
        snap.batch_jobs_submitted
    );
    // ...and with both models alternating in every window, at least one
    // batch held jobs for both bundles and was partitioned (each switch
    // is one extra per-model group in a mixed batch).
    assert!(snap.batch_model_switches >= 1, "no mixed-model batch was ever partitioned: {snap:?}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
