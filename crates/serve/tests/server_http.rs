//! End-to-end test of the inference server over real sockets: boots on an
//! ephemeral port, speaks actual HTTP, and checks that served predictions
//! are bit-identical to in-process `ModelBundle::classify_row`.

use serde_json::Value;
use serve::{serve, ModelBundle, Provenance, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

fn dataset(seed: u64) -> microarray::ContinuousDataset {
    microarray::synth::presets::all_aml(seed).scaled_down(40).generate()
}

fn bundle(seed: u64, name: &str) -> ModelBundle {
    ModelBundle::train(&dataset(seed), Provenance::new(name, Some(seed))).unwrap()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bstc_serve_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// One-shot HTTP client: `(status, body)` with `Connection: close`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split_whitespace().nth(1).expect("status").parse().unwrap();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end().is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    (status, body)
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON '{body}': {e}"))
}

fn fmt_row(row: &[f64]) -> String {
    let inner: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
    format!("[{}]", inner.join(","))
}

#[test]
fn full_server_lifecycle_over_real_sockets() {
    let bundle_a = bundle(11, "dataset-a");
    let path = tmp("live_bundle.json");
    bundle_a.save(&path).unwrap();

    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 3,
        bundle_path: Some(path.clone()),
        ..ServerConfig::default()
    };
    let handle = serve(config, bundle_a.clone()).unwrap();
    let addr = handle.addr();

    // -- health & model metadata ------------------------------------
    let (status, body) = request(addr, "GET", "/health", "");
    assert_eq!(status, 200);
    assert_eq!(json(&body).get("status").unwrap().as_str(), Some("ok"));

    let (status, body) = request(addr, "GET", "/model", "");
    assert_eq!(status, 200);
    let meta = json(&body);
    assert_eq!(meta.get("format_version").unwrap().as_u64(), Some(serve::FORMAT_VERSION));
    assert_eq!(meta.get("n_genes").unwrap().as_u64(), Some(bundle_a.n_genes() as u64));
    assert_eq!(meta.get("provenance").unwrap().get("dataset").unwrap().as_str(), Some("dataset-a"));

    // -- single classify matches the in-process model bit-for-bit ---
    let data = dataset(11);
    for s in 0..data.n_samples() {
        let row = data.row(s);
        let (status, body) =
            request(addr, "POST", "/classify", &format!("{{\"values\":{}}}", fmt_row(row)));
        assert_eq!(status, 200, "{body}");
        let served = json(&body);
        let p = served.get("prediction").unwrap();
        let local = bundle_a.classify_row(row).unwrap();
        assert_eq!(p.get("class").unwrap().as_u64(), Some(local.class as u64));
        assert_eq!(p.get("label").unwrap().as_str(), Some(local.label.as_str()));
        let served_values: Vec<f64> = p
            .get("values")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        assert_eq!(served_values, local.values, "sample {s}");
        assert_eq!(p.get("confidence").unwrap().as_f64(), Some(local.confidence));
    }

    // -- batch classify: all rows at once, same answers --------------
    let rows: Vec<String> = (0..data.n_samples()).map(|s| fmt_row(data.row(s))).collect();
    let (status, body) =
        request(addr, "POST", "/classify", &format!("{{\"samples\":[{}]}}", rows.join(",")));
    assert_eq!(status, 200, "{body}");
    let served = json(&body);
    let predictions = served.get("predictions").unwrap().as_array().unwrap().to_vec();
    assert_eq!(predictions.len(), data.n_samples());
    for (s, p) in predictions.iter().enumerate() {
        let local = bundle_a.classify_row(data.row(s)).unwrap();
        assert_eq!(p.get("class").unwrap().as_u64(), Some(local.class as u64), "sample {s}");
    }

    // -- malformed requests are structured 4xx, never disconnects ----
    for (body_text, want_status, want_code) in [
        ("{", 400, "bad_json"),
        ("{\"values\": 3}", 400, "bad_vector"),
        ("{\"values\": [1.0]}", 400, "wrong_length"),
        ("{}", 400, "bad_request"),
    ] {
        let (status, body) = request(addr, "POST", "/classify", body_text);
        assert_eq!(status, want_status, "{body_text} -> {body}");
        assert_eq!(json(&body).get("error").unwrap().as_str(), Some(want_code), "{body_text}");
    }
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "DELETE", "/classify", "");
    assert_eq!(status, 405);

    // -- hot reload swaps the model without dropping the server ------
    bundle(13, "dataset-b").save(&path).unwrap();
    let (status, body) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(json(&body).get("reloaded").unwrap().as_bool(), Some(true));
    let (_, body) = request(addr, "GET", "/model", "");
    assert_eq!(
        json(&body).get("provenance").unwrap().get("dataset").unwrap().as_str(),
        Some("dataset-b")
    );

    // -- a corrupt file fails the reload (409) and keeps the old model
    std::fs::write(&path, "{ not a bundle").unwrap();
    let (status, body) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 409, "{body}");
    assert_eq!(json(&body).get("error").unwrap().as_str(), Some("reload_failed"));
    let (_, body) = request(addr, "GET", "/model", "");
    assert_eq!(
        json(&body).get("provenance").unwrap().get("dataset").unwrap().as_str(),
        Some("dataset-b"),
        "failed reload must not unload the serving model"
    );

    // -- a bundle corrupted mid-flight (payload flipped after the
    // checksum was computed, as a half-written file would look) is a
    // 409 and keeps the old model too --------------------------------
    let good = bundle(19, "dataset-c").to_json().unwrap();
    std::fs::write(&path, good.replace("\"dataset\":\"dataset-c\"", "\"dataset\":\"dataset-X\""))
        .unwrap();
    let (status, body) = request(addr, "POST", "/reload", "");
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("checksum"), "{body}");
    let (_, body) = request(addr, "GET", "/model", "");
    assert_eq!(
        json(&body).get("provenance").unwrap().get("dataset").unwrap().as_str(),
        Some("dataset-b"),
        "mid-flight corruption must not unload the serving model"
    );

    // -- a missing bundle file is the server's fault: 500 -------------
    let (status, body) =
        request(addr, "POST", "/reload", "{\"path\": \"/nonexistent/bundle.json\"}");
    assert_eq!(status, 500, "{body}");
    assert_eq!(json(&body).get("error").unwrap().as_str(), Some("reload_failed"));

    // -- metrics reflect the traffic this test generated -------------
    let (status, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("bstc_requests_total{route=\"/classify\"}"), "{text}");
    assert!(text.contains("bstc_samples_classified_total"), "{text}");
    assert!(text.contains("bstc_model_reloads_total 1"), "{text}");
    assert!(text.contains("bstc_model_reload_failures_total 3"), "{text}");
    assert!(text.contains("bstc_workers{state=\"configured\"} 3"), "{text}");
    assert!(text.contains("bstc_workers{state=\"alive\"} 3"), "{text}");
    assert!(text.contains("bstc_workers_respawned_total 0"), "{text}");
    assert!(text.contains("bstc_panics_caught_total 0"), "{text}");
    assert!(text.contains("bstc_connections_total{event=\"accepted\"}"), "{text}");
    assert!(text.contains("bstc_classify_latency_us_bucket{le=\"+Inf\"}"), "{text}");
    let classified: u64 = text
        .lines()
        .find(|l| l.starts_with("bstc_samples_classified_total"))
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap()
        .parse()
        .unwrap();
    // Every single + one batch of all samples; errors classified nothing.
    assert_eq!(classified, 2 * data.n_samples() as u64);

    // -- graceful shutdown: joins cleanly, then refuses new work -----
    handle.shutdown();
    assert!(
        TcpStream::connect(addr).is_err() || request_after_shutdown(addr),
        "server still answering after shutdown"
    );
}

/// After shutdown the listener is gone; a racing connect may still be
/// accepted by the OS backlog but must never get an HTTP answer.
fn request_after_shutdown(addr: SocketAddr) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return true;
    };
    let _ = stream.write_all(b"GET /health HTTP/1.1\r\nconnection: close\r\n\r\n");
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let mut buffer = [0u8; 1];
    !matches!(stream.read(&mut buffer), Ok(n) if n > 0)
}

/// Reads a response head: `(status, lowercased header block)`.
fn read_head(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line.split_whitespace().nth(1).expect("status").parse().unwrap();
    let mut headers = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        if line.trim_end().is_empty() {
            break;
        }
        headers.push_str(&line.to_ascii_lowercase());
    }
    (status, headers)
}

/// Decodes a chunked response body: hex-sized chunks until the `0`
/// terminator, then trailers up to the blank line.
fn read_chunked_body(reader: &mut BufReader<TcpStream>) -> String {
    let mut body = Vec::new();
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).unwrap();
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|e| panic!("bad chunk size line {size_line:?}: {e}"));
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk).unwrap();
        body.extend_from_slice(&chunk);
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf).unwrap();
        assert_eq!(&crlf, b"\r\n", "chunk data must end with CRLF");
    }
    loop {
        let mut trailer = String::new();
        reader.read_line(&mut trailer).unwrap();
        if trailer.trim_end().is_empty() {
            break;
        }
    }
    String::from_utf8(body).unwrap()
}

#[test]
fn large_responses_stream_chunked_and_round_trip() {
    // A server booted with a tiny chunk threshold streams ordinary
    // responses chunked; the decoded body must be the same JSON a
    // content-length response would carry, and the connection must stay
    // usable for a follow-up request (keep-alive + chunked compose).
    let b = bundle(29, "chunked");
    let handle = serve(
        ServerConfig { threads: 2, chunk_threshold: 256, ..ServerConfig::default() },
        b.clone(),
    )
    .unwrap();
    let addr = handle.addr();
    let data = dataset(29);

    let rows: Vec<String> = (0..data.n_samples()).map(|s| fmt_row(data.row(s))).collect();
    let body = format!("{{\"samples\":[{}]}}", rows.join(","));

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
    let head =
        format!("POST /classify HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n", body.len());
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);

    let (status, headers) = read_head(&mut reader);
    assert_eq!(status, 200);
    assert!(headers.contains("transfer-encoding: chunked"), "not chunked:\n{headers}");
    assert!(!headers.contains("content-length"), "chunked must drop content-length:\n{headers}");
    let decoded = read_chunked_body(&mut reader);
    let served = json(&decoded);
    let predictions = served.get("predictions").unwrap().as_array().unwrap();
    assert_eq!(predictions.len(), data.n_samples());
    for (s, p) in predictions.iter().enumerate() {
        let local = b.classify_row(data.row(s)).unwrap();
        assert_eq!(p.get("class").unwrap().as_u64(), Some(local.class as u64), "sample {s}");
    }

    // Follow-up on the same socket: a small response arrives with
    // content-length framing, proving the threshold gates the streaming.
    let follow = "GET /health HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n";
    reader.get_mut().write_all(follow.as_bytes()).unwrap();
    let (status, headers) = read_head(&mut reader);
    assert_eq!(status, 200);
    assert!(headers.contains("content-length"), "small response must not chunk:\n{headers}");
    handle.shutdown();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let b = bundle(17, "concurrent");
    let handle = serve(ServerConfig { threads: 4, ..ServerConfig::default() }, b.clone()).unwrap();
    let addr = handle.addr();
    let data = dataset(17);

    std::thread::scope(|scope| {
        for t in 0..8 {
            let b = &b;
            let data = &data;
            scope.spawn(move || {
                for i in 0..20 {
                    let s = (t + i) % data.n_samples();
                    let (status, body) = request(
                        addr,
                        "POST",
                        "/classify",
                        &format!("{{\"values\":{}}}", fmt_row(data.row(s))),
                    );
                    assert_eq!(status, 200, "{body}");
                    let served = json(&body);
                    let expected = b.classify_row(data.row(s)).unwrap();
                    assert_eq!(
                        served.get("prediction").unwrap().get("class").unwrap().as_u64(),
                        Some(expected.class as u64)
                    );
                }
            });
        }
    });
    handle.shutdown();
}
