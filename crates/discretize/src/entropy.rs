//! Class-entropy primitives shared by the MDL partitioner (and reused by
//! the decision-tree baselines through their own copies of these formulas).

/// Shannon entropy (bits) of a class-count histogram.
///
/// Zero counts contribute nothing; an empty or single-class histogram has
/// entropy 0.
pub fn class_entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total;
            h -= p * p.log2();
        }
    }
    h
}

/// Number of distinct classes present in a histogram.
pub fn classes_present(counts: &[usize]) -> usize {
    counts.iter().filter(|&&c| c > 0).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn pure_histogram_has_zero_entropy() {
        assert_eq!(class_entropy(&[10, 0, 0]), 0.0);
        assert_eq!(class_entropy(&[0, 0, 0]), 0.0);
        assert_eq!(class_entropy(&[]), 0.0);
    }

    #[test]
    fn uniform_two_class_entropy_is_one_bit() {
        assert!(close(class_entropy(&[5, 5]), 1.0));
    }

    #[test]
    fn uniform_four_class_entropy_is_two_bits() {
        assert!(close(class_entropy(&[3, 3, 3, 3]), 2.0));
    }

    #[test]
    fn skewed_histogram_entropy() {
        // H(1/4, 3/4) = 2 - (3/4) log2 3 ≈ 0.811278
        assert!(close(class_entropy(&[1, 3]), 2.0 - 0.75 * 3f64.log2()));
    }

    #[test]
    fn entropy_is_maximal_when_uniform() {
        let uniform = class_entropy(&[4, 4, 4]);
        assert!(class_entropy(&[6, 4, 2]) < uniform);
        assert!(class_entropy(&[10, 1, 1]) < uniform);
    }

    #[test]
    fn classes_present_counts_nonzero() {
        assert_eq!(classes_present(&[0, 3, 0, 1]), 2);
        assert_eq!(classes_present(&[0, 0]), 0);
    }
}
