//! Fayyad–Irani entropy-minimized partitioning with the MDL stopping rule.
//!
//! This is the algorithm behind the R `dprep` package's `disc.mentr`, which
//! the paper uses for all discretization (§6: "All discretization was done
//! using the entropy-minimized partition"). For one gene:
//!
//! 1. sort the training samples by expression value;
//! 2. consider a cut at every midpoint between adjacent *distinct* values;
//! 3. take the cut minimizing the class-information entropy of the induced
//!    two-way partition;
//! 4. accept it iff the information gain clears the MDL criterion
//!    `gain > (log2(N−1) + Δ)/N` with
//!    `Δ = log2(3^k − 2) − [k·E(S) − k₁·E(S₁) − k₂·E(S₂)]`;
//! 5. recurse into both halves.
//!
//! A gene whose full range admits no accepted cut carries no (MDL-visible)
//! class information and is dropped by the binarizer — this is exactly how
//! the paper goes from 7129 genes to the 866 of Table 3.

use crate::entropy::{class_entropy, classes_present};
use microarray::ClassId;

/// Cut points accepted for a single gene, ascending. May be empty.
pub type Cuts = Vec<f64>;

/// Computes the MDL-accepted cut points for one gene.
///
/// `values[i]` is the gene's expression in training sample `i`, and
/// `labels[i]` that sample's class in `0..n_classes`.
///
/// # Panics
/// Panics if the slices differ in length or any value is non-finite.
pub fn mdl_cuts(values: &[f64], labels: &[ClassId], n_classes: usize) -> Cuts {
    assert_eq!(values.len(), labels.len(), "values/labels length mismatch");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "expression values must be finite for discretization"
    );
    if values.len() < 2 {
        return Vec::new();
    }

    // Sort once; recursion works on ranges of the sorted order.
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_unstable_by(|&a, &b| values[a].total_cmp(&values[b]));
    let sorted: Vec<(f64, ClassId)> = order.iter().map(|&i| (values[i], labels[i])).collect();

    let mut cuts = Vec::new();
    partition(&sorted, 0, sorted.len(), n_classes, &mut cuts);
    cuts.sort_unstable_by(f64::total_cmp);
    cuts
}

/// Recursively partitions `sorted[lo..hi]`, pushing accepted cut values.
fn partition(sorted: &[(f64, ClassId)], lo: usize, hi: usize, n_classes: usize, cuts: &mut Cuts) {
    let n = hi - lo;
    if n < 2 {
        return;
    }

    // Class histogram of the whole range.
    let mut total = vec![0usize; n_classes];
    for &(_, c) in &sorted[lo..hi] {
        total[c] += 1;
    }
    let ent_s = class_entropy(&total);
    if ent_s == 0.0 {
        return; // already pure
    }

    // Scan cut positions: a cut between index i-1 and i is legal only when
    // the values differ (equal values must stay together).
    let mut left = vec![0usize; n_classes];
    let mut best: Option<(usize, f64, f64, f64)> = None; // (pos, weighted entropy, e1, e2)
    for i in lo + 1..hi {
        left[sorted[i - 1].1] += 1;
        if sorted[i - 1].0 == sorted[i].0 {
            continue;
        }
        let right: Vec<usize> = total.iter().zip(&left).map(|(t, l)| t - l).collect();
        let e1 = class_entropy(&left);
        let e2 = class_entropy(&right);
        let n1 = (i - lo) as f64;
        let n2 = (hi - i) as f64;
        let weighted = (n1 * e1 + n2 * e2) / n as f64;
        if best.is_none_or(|(_, w, _, _)| weighted < w) {
            best = Some((i, weighted, e1, e2));
        }
    }
    let Some((pos, weighted, e1, e2)) = best else {
        return; // all values equal: nothing to cut
    };

    let gain = ent_s - weighted;

    // MDL acceptance test (Fayyad & Irani 1993).
    let k = classes_present(&total) as f64;
    let mut left_hist = vec![0usize; n_classes];
    for &(_, c) in &sorted[lo..pos] {
        left_hist[c] += 1;
    }
    let right_hist: Vec<usize> = total.iter().zip(&left_hist).map(|(t, l)| t - l).collect();
    let k1 = classes_present(&left_hist) as f64;
    let k2 = classes_present(&right_hist) as f64;
    let delta = (3f64.powf(k) - 2.0).log2() - (k * ent_s - k1 * e1 - k2 * e2);
    let threshold = ((n as f64 - 1.0).log2() + delta) / n as f64;

    if gain <= threshold {
        return;
    }

    // Cut value: midpoint between the adjacent distinct values.
    cuts.push((sorted[pos - 1].0 + sorted[pos].0) / 2.0);
    partition(sorted, lo, pos, n_classes, cuts);
    partition(sorted, pos, hi, n_classes, cuts);
}

/// Maps a value to its interval index given ascending cut points:
/// `0` for `v < cuts[0]`, `i` for `cuts[i-1] <= v < cuts[i]`, etc.
#[inline]
pub fn interval_of(cuts: &[f64], v: f64) -> usize {
    cuts.partition_point(|&c| v >= c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separated_gene_gets_one_cut() {
        // class 0 clustered near 1.0, class 1 near 10.0 — a textbook cut.
        let values = [1.0, 1.1, 0.9, 1.05, 10.0, 10.2, 9.8, 10.1];
        let labels = [0, 0, 0, 0, 1, 1, 1, 1];
        let cuts = mdl_cuts(&values, &labels, 2);
        assert_eq!(cuts.len(), 1);
        assert!(cuts[0] > 1.1 && cuts[0] < 9.8, "cut at {}", cuts[0]);
    }

    #[test]
    fn uninformative_gene_gets_no_cut() {
        // Classes interleaved: no cut clears MDL.
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let labels = [0, 1, 0, 1, 0, 1, 0, 1];
        assert!(mdl_cuts(&values, &labels, 2).is_empty());
    }

    #[test]
    fn pure_class_gets_no_cut() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let labels = [0, 0, 0, 0];
        assert!(mdl_cuts(&values, &labels, 2).is_empty());
    }

    #[test]
    fn constant_gene_gets_no_cut() {
        let values = [5.0; 10];
        let labels = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        assert!(mdl_cuts(&values, &labels, 2).is_empty());
    }

    #[test]
    fn tiny_inputs_get_no_cut() {
        assert!(mdl_cuts(&[], &[], 2).is_empty());
        assert!(mdl_cuts(&[1.0], &[0], 2).is_empty());
    }

    #[test]
    fn three_well_separated_classes_get_two_cuts() {
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in [(0usize, 1.0f64), (1, 10.0), (2, 20.0)] {
            for i in 0..12 {
                values.push(center + 0.01 * i as f64);
                labels.push(c);
            }
        }
        let cuts = mdl_cuts(&values, &labels, 3);
        assert_eq!(cuts.len(), 2, "cuts: {cuts:?}");
        assert!(cuts[0] > 1.2 && cuts[0] < 10.0);
        assert!(cuts[1] > 10.2 && cuts[1] < 20.0);
    }

    #[test]
    fn cut_never_splits_equal_values() {
        // Equal values with different classes cannot be separated.
        let values = [1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0];
        let labels = [0, 0, 1, 0, 1, 1, 0, 1];
        let cuts = mdl_cuts(&values, &labels, 2);
        for c in cuts {
            assert!(c > 1.0 && c < 2.0);
        }
    }

    #[test]
    fn interval_of_maps_correctly() {
        let cuts = [1.0, 5.0, 9.0];
        assert_eq!(interval_of(&cuts, -3.0), 0);
        assert_eq!(interval_of(&cuts, 0.999), 0);
        assert_eq!(interval_of(&cuts, 1.0), 1); // boundary goes right
        assert_eq!(interval_of(&cuts, 4.0), 1);
        assert_eq!(interval_of(&cuts, 7.5), 2);
        assert_eq!(interval_of(&cuts, 9.0), 3);
        assert_eq!(interval_of(&cuts, 1e9), 3);
        assert_eq!(interval_of(&[], 3.0), 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_values_panic() {
        mdl_cuts(&[1.0, f64::NAN], &[0, 1], 2);
    }

    #[test]
    fn order_of_input_does_not_matter() {
        let values = [10.0, 1.0, 9.8, 1.1, 10.2, 0.9];
        let labels = [1, 0, 1, 0, 1, 0];
        let mut shuffled_vals = values.to_vec();
        let mut shuffled_labels = labels.to_vec();
        shuffled_vals.reverse();
        shuffled_labels.reverse();
        assert_eq!(mdl_cuts(&values, &labels, 2), mdl_cuts(&shuffled_vals, &shuffled_labels, 2));
    }
}
