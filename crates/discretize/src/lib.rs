//! # discretize — entropy-minimized (Fayyad–Irani MDL) discretization
//!
//! The BSTC paper discretizes continuous gene expression with the
//! entropy-minimized partition of the R `dprep` package (§6). This crate
//! reimplements that method:
//!
//! * [`entropy`] — class-entropy primitives;
//! * [`mdl`] — the recursive Fayyad–Irani partitioner with the MDL
//!   acceptance rule;
//! * [`binarize`] — [`Discretizer`], which fits cuts on training data,
//!   drops cut-less genes (the paper's implicit gene selection), and
//!   transforms continuous datasets into boolean item datasets.
//!
//! ```
//! use discretize::Discretizer;
//! use microarray::synth::presets;
//!
//! let data = presets::all_aml(7).scaled_down(50).generate();
//! let (disc, boolean) = Discretizer::fit_transform(&data).unwrap();
//! assert!(disc.selected_genes().len() <= data.n_genes());
//! assert_eq!(boolean.n_samples(), data.n_samples());
//! ```

#![warn(missing_docs)]

pub mod binarize;
pub mod entropy;
pub mod mdl;

pub use binarize::{Discretizer, ItemDesc, NoInformativeGenes};
pub use mdl::{interval_of, mdl_cuts};
