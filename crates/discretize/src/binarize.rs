//! Turning MDL cut points into the paper's boolean item representation.
//!
//! A [`Discretizer`] is *fitted* on a training [`ContinuousDataset`] and
//! then *transforms* any dataset over the same genes into a
//! [`BoolDataset`]. Genes with no accepted cut carry no MDL-visible class
//! signal and are dropped (the paper's "Genes After Discretization",
//! Table 3); each interval of each surviving gene becomes one boolean item
//! `gene@[lo,hi)`, and a sample expresses the item whose interval contains
//! its value — so each surviving gene contributes exactly one expressed
//! item per sample.

use crate::mdl::{interval_of, mdl_cuts, Cuts};
use microarray::{BitSet, BoolDataset, ColumnSource, ContinuousDataset};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Gene-chunk size (in columns) for a byte budget: how many `f64`
/// columns of `n_samples` values fit in `chunk_bytes`, at least one.
fn genes_per_chunk(chunk_bytes: usize, n_samples: usize) -> usize {
    (chunk_bytes / (8 * n_samples.max(1))).max(1)
}

/// No gene admitted an MDL-accepted cut: the training data carries no
/// class signal visible to the entropy partition, so there is nothing to
/// classify on. Callers typically treat this as "dataset too small/noisy".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NoInformativeGenes;

impl fmt::Display for NoInformativeGenes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "entropy discretization selected zero genes")
    }
}

impl std::error::Error for NoInformativeGenes {}

/// Description of one boolean item produced by discretization.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ItemDesc {
    /// Column of the originating gene in the *fitted* dataset.
    pub gene: usize,
    /// Interval index within that gene's cuts (`0..=cuts.len()`).
    pub interval: usize,
    /// Inclusive lower bound (`-inf` for the first interval).
    #[serde(with = "serde_maybe_inf")]
    pub lo: f64,
    /// Exclusive upper bound (`+inf` for the last interval).
    #[serde(with = "serde_maybe_inf")]
    pub hi: f64,
}

/// JSON has no ±infinity: encode the unbounded interval ends as the
/// strings `"inf"`/`"-inf"` and finite bounds as plain numbers.
mod serde_maybe_inf {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(v: &f64, s: S) -> Result<S::Ok, S::Error> {
        if v.is_finite() {
            s.serialize_f64(*v)
        } else if *v > 0.0 {
            s.serialize_str("inf")
        } else {
            s.serialize_str("-inf")
        }
    }

    #[derive(Deserialize)]
    #[serde(untagged)]
    enum Repr {
        Num(f64),
        Tag(String),
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<f64, D::Error> {
        match Repr::deserialize(d)? {
            Repr::Num(v) => Ok(v),
            Repr::Tag(t) if t == "inf" => Ok(f64::INFINITY),
            Repr::Tag(t) if t == "-inf" => Ok(f64::NEG_INFINITY),
            Repr::Tag(t) => Err(serde::de::Error::custom(format!("bad bound '{t}'"))),
        }
    }
}

/// A fitted entropy-MDL discretizer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Discretizer {
    gene_names: Vec<String>,
    /// Genes that received at least one cut, with their cut points.
    selected: Vec<(usize, Cuts)>,
    /// Flat item table; items of one gene are contiguous.
    items: Vec<ItemDesc>,
    /// `item_base[k]` = first item id of `selected[k]`'s gene.
    item_base: Vec<usize>,
}

impl Discretizer {
    /// Fits cut points on a training dataset.
    ///
    /// Records its wall time as stage `mdl_cuts` in [`obs::global`].
    pub fn fit(train: &ContinuousDataset) -> Discretizer {
        Self::fit_source(train, usize::MAX)
    }

    /// Fits cut points by streaming gene columns from any
    /// [`ColumnSource`] under a `chunk_bytes` budget: columns are
    /// consumed one at a time (one column of buffering), and after each
    /// chunk's worth the source gets an eviction hint — for an
    /// mmap-backed `.bmx` source the resident set therefore tracks the
    /// budget, not the matrix size. Bit-identical to [`Discretizer::fit`]
    /// on the same data: the per-gene iteration order, the MDL search,
    /// and the produced items are exactly the in-memory path's.
    ///
    /// Records its wall time as stage `mdl_cuts` in [`obs::global`].
    pub fn fit_source<S: ColumnSource + ?Sized>(train: &S, chunk_bytes: usize) -> Discretizer {
        let _stage = obs::Stage::enter("mdl_cuts");
        let chunk = genes_per_chunk(chunk_bytes, train.n_samples());
        let mut column = Vec::with_capacity(train.n_samples());
        let mut selected = Vec::new();
        let mut items = Vec::new();
        let mut item_base = Vec::new();
        for g in 0..train.n_genes() {
            train.column_into(g, &mut column);
            let cuts = mdl_cuts(&column, train.labels(), train.n_classes());
            if (g + 1) % chunk == 0 {
                train.evict_hint(g + 1 - chunk..g + 1);
            }
            if cuts.is_empty() {
                continue;
            }
            item_base.push(items.len());
            for interval in 0..=cuts.len() {
                let lo = if interval == 0 { f64::NEG_INFINITY } else { cuts[interval - 1] };
                let hi = if interval == cuts.len() { f64::INFINITY } else { cuts[interval] };
                items.push(ItemDesc { gene: g, interval, lo, hi });
            }
            selected.push((g, cuts));
        }
        Discretizer { gene_names: train.gene_names().to_vec(), selected, items, item_base }
    }

    /// Fits on `train` and immediately transforms it.
    ///
    /// # Errors
    /// Returns [`NoInformativeGenes`] if no gene received a cut.
    pub fn fit_transform(
        train: &ContinuousDataset,
    ) -> Result<(Discretizer, BoolDataset), NoInformativeGenes> {
        let d = Self::fit(train);
        let b = d.transform(train)?;
        Ok((d, b))
    }

    /// Number of boolean items (`|G|` at the BST level).
    pub fn n_items(&self) -> usize {
        self.items.len()
    }

    /// Number of gene columns of the fitted dataset (selected or not).
    pub fn n_genes(&self) -> usize {
        self.gene_names.len()
    }

    /// Gene names of the fitted dataset, indexed by column.
    pub fn gene_names(&self) -> &[String] {
        &self.gene_names
    }

    /// Human-readable `gene@[lo,hi)` names, indexed by item id (the same
    /// names [`transform`](Self::transform) gives its output's items).
    pub fn item_names(&self) -> Vec<String> {
        self.items
            .iter()
            .map(|it| {
                format!("{}@[{},{})", self.gene_names[it.gene], fmt_bound(it.lo), fmt_bound(it.hi))
            })
            .collect()
    }

    /// Binarizes one raw expression row with the fitted cuts — the
    /// single-sample core of [`transform`](Self::transform), for callers
    /// (like the inference server) that classify rows as they arrive.
    ///
    /// # Errors
    /// Returns [`NoInformativeGenes`] if the fit selected zero genes.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the fitted gene count.
    pub fn transform_row(&self, row: &[f64]) -> Result<BitSet, NoInformativeGenes> {
        assert_eq!(
            row.len(),
            self.gene_names.len(),
            "transform_row: gene universe differs from the fitted dataset"
        );
        if self.items.is_empty() {
            return Err(NoInformativeGenes);
        }
        let mut set = BitSet::new(self.items.len());
        for (k, (g, cuts)) in self.selected.iter().enumerate() {
            set.insert(self.item_base[k] + interval_of(cuts, row[*g]));
        }
        Ok(set)
    }

    /// Gene columns that survived discretization — the paper's
    /// "Genes After Discretization" (used to restrict SVM/random-forest
    /// inputs in §6.1).
    pub fn selected_genes(&self) -> Vec<usize> {
        self.selected.iter().map(|(g, _)| *g).collect()
    }

    /// Cut points of a selected gene, or `None` if the gene was dropped.
    pub fn cuts_for_gene(&self, gene: usize) -> Option<&[f64]> {
        self.selected.iter().find(|(g, _)| *g == gene).map(|(_, cuts)| cuts.as_slice())
    }

    /// The item descriptors, indexed by item id.
    pub fn items(&self) -> &[ItemDesc] {
        &self.items
    }

    /// Applies the fitted cuts to a dataset over the same gene universe.
    ///
    /// Records its wall time as stage `binarize` in [`obs::global`].
    ///
    /// # Errors
    /// Returns [`NoInformativeGenes`] if the fit selected zero genes.
    ///
    /// # Panics
    /// Panics if `data` has a different number of genes than the fitted
    /// training set.
    pub fn transform(&self, data: &ContinuousDataset) -> Result<BoolDataset, NoInformativeGenes> {
        let _stage = obs::Stage::enter("binarize");
        assert_eq!(
            data.n_genes(),
            self.gene_names.len(),
            "transform: gene universe differs from the fitted dataset"
        );
        if self.items.is_empty() {
            return Err(NoInformativeGenes);
        }
        let samples = (0..data.n_samples())
            .map(|s| self.transform_row(data.row(s)).expect("items checked non-empty above"))
            .collect();
        Ok(BoolDataset::new(
            self.item_names(),
            data.class_names().to_vec(),
            samples,
            data.labels().to_vec(),
        )
        .expect("discretizer output is valid by construction"))
    }

    /// Applies the fitted cuts by streaming gene columns from any
    /// [`ColumnSource`] under a `chunk_bytes` budget (cf.
    /// [`Discretizer::fit_source`]): only the *selected* columns are
    /// read, each one sets its interval bit across all samples, and
    /// consumed column ranges are handed back to the source. The
    /// resulting [`BoolDataset`] is equal to
    /// [`transform`](Self::transform)'s on the same data — bit order
    /// within a sample is set-membership, not insertion order.
    ///
    /// Records its wall time as stage `binarize` in [`obs::global`].
    ///
    /// # Errors
    /// Returns [`NoInformativeGenes`] if the fit selected zero genes.
    ///
    /// # Panics
    /// Panics if `data` has a different number of genes than the fitted
    /// training set.
    pub fn transform_source<S: ColumnSource + ?Sized>(
        &self,
        data: &S,
        chunk_bytes: usize,
    ) -> Result<BoolDataset, NoInformativeGenes> {
        let _stage = obs::Stage::enter("binarize");
        assert_eq!(
            data.n_genes(),
            self.gene_names.len(),
            "transform: gene universe differs from the fitted dataset"
        );
        if self.items.is_empty() {
            return Err(NoInformativeGenes);
        }
        let chunk = genes_per_chunk(chunk_bytes, data.n_samples());
        let mut samples = vec![BitSet::new(self.items.len()); data.n_samples()];
        let mut column = Vec::with_capacity(data.n_samples());
        // `selected` is ascending in gene id (fit iterates columns in
        // order), so consumed ranges are contiguous and evictable as we
        // pass them.
        let mut evicted_to = 0usize;
        for (k, (g, cuts)) in self.selected.iter().enumerate() {
            data.column_into(*g, &mut column);
            let base = self.item_base[k];
            for (s, &v) in column.iter().enumerate() {
                samples[s].insert(base + interval_of(cuts, v));
            }
            if g + 1 - evicted_to >= chunk {
                data.evict_hint(evicted_to..g + 1);
                evicted_to = g + 1;
            }
        }
        Ok(BoolDataset::new(
            self.item_names(),
            data.class_names().to_vec(),
            samples,
            data.labels().to_vec(),
        )
        .expect("discretizer output is valid by construction"))
    }
}

fn fmt_bound(v: f64) -> String {
    if v == f64::NEG_INFINITY {
        "-inf".into()
    } else if v == f64::INFINITY {
        "inf".into()
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8-sample, 3-gene toy set: gene 0 separates the classes perfectly,
    /// gene 1 is noise, gene 2 separates with one mistake.
    fn toy() -> ContinuousDataset {
        ContinuousDataset::new(
            vec!["gA".into(), "gB".into(), "gC".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 5.0, 2.0],
                vec![1.2, 3.0, 2.2],
                vec![0.8, 5.5, 1.9],
                vec![1.1, 2.9, 8.0], // the gC mistake
                vec![9.0, 5.1, 8.1],
                vec![9.2, 3.2, 8.3],
                vec![8.9, 5.2, 8.2],
                vec![9.1, 3.1, 8.4],
            ],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn fit_selects_informative_genes_only() {
        let d = Discretizer::fit(&toy());
        let sel = d.selected_genes();
        assert!(sel.contains(&0), "gA must be selected: {sel:?}");
        assert!(!sel.contains(&1), "gB is noise: {sel:?}");
        assert!(d.cuts_for_gene(0).is_some());
        assert!(d.cuts_for_gene(1).is_none());
    }

    #[test]
    fn transform_sets_one_item_per_selected_gene() {
        let (d, b) = Discretizer::fit_transform(&toy()).unwrap();
        assert_eq!(b.n_samples(), 8);
        for s in 0..b.n_samples() {
            assert_eq!(
                b.sample(s).len(),
                d.selected_genes().len(),
                "each sample expresses exactly one interval per selected gene"
            );
        }
    }

    #[test]
    fn transform_separates_classes_on_clean_gene() {
        let (d, b) = Discretizer::fit_transform(&toy()).unwrap();
        // All class-0 samples share gA's low-interval item; all class-1
        // samples share the high-interval item.
        let low_item = d.items().iter().position(|it| it.gene == 0 && it.interval == 0).unwrap();
        for s in 0..b.n_samples() {
            assert_eq!(b.expresses(s, low_item), b.label(s) == 0);
        }
    }

    #[test]
    fn transform_applies_training_cuts_to_new_data() {
        let d = Discretizer::fit(&toy());
        let test = ContinuousDataset::new(
            vec!["gA".into(), "gB".into(), "gC".into()],
            vec!["neg".into(), "pos".into()],
            vec![vec![0.5, 4.0, 2.0], vec![10.0, 4.0, 9.0]],
            vec![0, 1],
        )
        .unwrap();
        let b = d.transform(&test).unwrap();
        assert_eq!(b.n_samples(), 2);
        assert_eq!(b.n_items(), d.n_items());
        // The two test samples land in different gA intervals.
        let ga_items: Vec<usize> =
            d.items().iter().enumerate().filter(|(_, it)| it.gene == 0).map(|(i, _)| i).collect();
        let in_ga = |s: usize| ga_items.iter().find(|&&i| b.expresses(s, i)).copied();
        assert_ne!(in_ga(0), in_ga(1));
    }

    #[test]
    #[should_panic(expected = "gene universe differs")]
    fn transform_rejects_wrong_universe() {
        let d = Discretizer::fit(&toy());
        let other =
            ContinuousDataset::new(vec!["x".into()], vec!["neg".into()], vec![vec![1.0]], vec![0])
                .unwrap();
        let _ = d.transform(&other);
    }

    #[test]
    fn transform_row_matches_transform() {
        let data = toy();
        let (d, b) = Discretizer::fit_transform(&data).unwrap();
        for s in 0..data.n_samples() {
            assert_eq!(&d.transform_row(data.row(s)).unwrap(), b.sample(s));
        }
        assert_eq!(d.n_genes(), 3);
        assert_eq!(d.gene_names()[0], "gA");
        assert_eq!(d.item_names(), b.item_names());
    }

    #[test]
    #[should_panic(expected = "gene universe differs")]
    fn transform_row_rejects_wrong_length() {
        let d = Discretizer::fit(&toy());
        let _ = d.transform_row(&[1.0]);
    }

    #[test]
    fn boundary_value_lands_in_same_interval_on_both_paths() {
        // A value exactly equal to an MDL cut point must land in the
        // *upper* interval (intervals are `[lo, hi)`), and the serving
        // path (`transform_row`) must agree with the batch fit-time path
        // (`transform`) — both funnel through `interval_of`, and this
        // pins that shared convention.
        let data = toy();
        let d = Discretizer::fit(&data);
        let cuts = d.cuts_for_gene(0).expect("gA is selected");
        let cut = cuts[0];
        let mut row = vec![cut, 4.0, 2.0];
        let single = d.transform_row(&row).unwrap();
        let batch_data = ContinuousDataset::new(
            vec!["gA".into(), "gB".into(), "gC".into()],
            vec!["neg".into(), "pos".into()],
            vec![row.clone()],
            vec![0],
        )
        .unwrap();
        let batch = d.transform(&batch_data).unwrap();
        assert_eq!(&single, batch.sample(0), "row path and batch path disagree at a cut");
        // Exactly at the cut → upper interval: the item whose lo == cut.
        let expected = d
            .items()
            .iter()
            .position(|it| it.gene == 0 && it.lo == cut)
            .expect("upper interval item exists");
        assert!(single.contains(expected), "value at cut must go to the upper interval");
        // And the value just below the cut goes to the lower interval.
        row[0] = cut - 1e-9;
        let below = d.transform_row(&row).unwrap();
        assert!(!below.contains(expected));
    }

    #[test]
    fn streamed_fit_and_transform_match_in_memory_exactly() {
        let data = toy();
        let (d_mem, b_mem) = Discretizer::fit_transform(&data).unwrap();
        // Tiny chunk budgets force the chunk/evict machinery through
        // every boundary case (1 column per chunk up).
        for chunk_bytes in [1usize, 64, 1024, usize::MAX] {
            let d = Discretizer::fit_source(&data, chunk_bytes);
            assert_eq!(d.selected_genes(), d_mem.selected_genes(), "chunk {chunk_bytes}");
            for &g in &d.selected_genes() {
                assert_eq!(d.cuts_for_gene(g), d_mem.cuts_for_gene(g));
            }
            let b = d.transform_source(&data, chunk_bytes).unwrap();
            assert_eq!(b.item_names(), b_mem.item_names());
            assert_eq!(b.labels(), b_mem.labels());
            for s in 0..b.n_samples() {
                assert_eq!(b.sample(s), b_mem.sample(s), "chunk {chunk_bytes}, sample {s}");
            }
        }
    }

    #[test]
    fn streamed_paths_work_on_a_bmx_file() {
        let data = toy();
        let path = std::env::temp_dir().join(format!("bstc_binarize_{}.bmx", std::process::id()));
        microarray::write_bmx(&data, &path).unwrap();
        let bmx = microarray::BmxDataset::open(&path).unwrap();
        let (d_mem, b_mem) = Discretizer::fit_transform(&data).unwrap();
        let d = Discretizer::fit_source(&bmx, 128);
        assert_eq!(d.selected_genes(), d_mem.selected_genes());
        let b = d.transform_source(&bmx, 128).unwrap();
        for s in 0..b.n_samples() {
            assert_eq!(b.sample(s), b_mem.sample(s));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn item_names_describe_intervals() {
        let (d, b) = Discretizer::fit_transform(&toy()).unwrap();
        let names = b.item_names();
        assert_eq!(names.len(), d.n_items());
        assert!(names[0].starts_with("gA@[-inf,"), "{}", names[0]);
        assert!(names.last().unwrap().ends_with(",inf)"), "{}", names.last().unwrap());
    }

    #[test]
    fn item_intervals_partition_the_line() {
        let d = Discretizer::fit(&toy());
        // For each selected gene, intervals must tile (-inf, inf) in order.
        for &g in &d.selected_genes() {
            let items: Vec<&ItemDesc> = d.items().iter().filter(|it| it.gene == g).collect();
            assert_eq!(items[0].lo, f64::NEG_INFINITY);
            assert_eq!(items.last().unwrap().hi, f64::INFINITY);
            for w in items.windows(2) {
                assert_eq!(w[0].hi, w[1].lo);
            }
        }
    }
}
