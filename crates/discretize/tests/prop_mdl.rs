//! Property tests for the MDL partitioner and the binarizer.

use discretize::{interval_of, mdl_cuts, Discretizer};
use microarray::ContinuousDataset;
use proptest::prelude::*;

/// Random labelled value column: up to 40 samples, 2–3 classes.
fn column() -> impl Strategy<Value = (Vec<f64>, Vec<usize>, usize)> {
    (2usize..4, 2usize..40).prop_flat_map(|(n_classes, n)| {
        (
            prop::collection::vec(-100.0f64..100.0, n),
            prop::collection::vec(0..n_classes, n),
            Just(n_classes),
        )
    })
}

proptest! {
    #[test]
    fn cuts_are_sorted_strictly_inside_the_range((values, labels, k) in column()) {
        let cuts = mdl_cuts(&values, &labels, k);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for w in cuts.windows(2) {
            prop_assert!(w[0] < w[1], "cuts not strictly increasing: {:?}", cuts);
        }
        for &c in &cuts {
            prop_assert!(c > lo && c < hi, "cut {c} outside ({lo}, {hi})");
        }
    }

    #[test]
    fn cuts_never_split_equal_values((values, labels, k) in column()) {
        let cuts = mdl_cuts(&values, &labels, k);
        for &c in &cuts {
            // No data point may ever equal a cut's two flanking values at
            // once; equivalently no value sits in an interval of width 0.
            prop_assert!(values.iter().all(|&v| v != c || values.iter().any(|&u| u > v) ),
                "cut {c} coincides suspiciously with data");
        }
        // Stronger check: every accepted cut has data strictly on both sides.
        for &c in &cuts {
            prop_assert!(values.iter().any(|&v| v < c));
            prop_assert!(values.iter().any(|&v| v >= c));
        }
    }

    #[test]
    fn every_accepted_cut_has_positive_information_gain((values, labels, k) in column()) {
        // Information gain of any accepted top-level cut over the whole
        // range must be positive: splitting can never *increase* entropy,
        // and MDL only accepts strict improvements.
        let cuts = mdl_cuts(&values, &labels, k);
        if cuts.is_empty() { return Ok(()); }
        let ent = |idx: &[usize]| {
            let mut h = vec![0usize; k];
            for &i in idx { h[labels[i]] += 1; }
            discretize::entropy::class_entropy(&h)
        };
        let all: Vec<usize> = (0..values.len()).collect();
        for &c in &cuts {
            let left: Vec<usize> = all.iter().copied().filter(|&i| values[i] < c).collect();
            let right: Vec<usize> = all.iter().copied().filter(|&i| values[i] >= c).collect();
            let n = values.len() as f64;
            let weighted =
                (left.len() as f64 * ent(&left) + right.len() as f64 * ent(&right)) / n;
            prop_assert!(ent(&all) - weighted > -1e-12,
                "cut {c} increased entropy");
        }
    }

    #[test]
    fn interval_of_is_monotone(raw_cuts in prop::collection::vec(-50.0f64..50.0, 0..6),
                               mut probes in prop::collection::vec(-60.0f64..60.0, 1..20)) {
        let mut cuts = raw_cuts;
        cuts.sort_by(f64::total_cmp);
        cuts.dedup();
        probes.sort_by(f64::total_cmp);
        let mut last = 0usize;
        for (i, &p) in probes.iter().enumerate() {
            let iv = interval_of(&cuts, p);
            prop_assert!(iv <= cuts.len());
            if i > 0 {
                prop_assert!(iv >= last, "interval_of not monotone");
            }
            last = iv;
        }
    }
}

/// Random small continuous dataset (each class non-empty).
fn cont_dataset() -> impl Strategy<Value = ContinuousDataset> {
    (2usize..4, 2usize..6, 4usize..20).prop_flat_map(|(n_classes, n_genes, extra)| {
        let n_samples = n_classes + extra;
        (
            prop::collection::vec(prop::collection::vec(-10.0f64..10.0, n_genes), n_samples),
            prop::collection::vec(0..n_classes, n_samples - n_classes),
        )
            .prop_map(move |(values, tail)| {
                let mut labels: Vec<usize> = (0..n_classes).collect();
                labels.extend(tail);
                ContinuousDataset::new(
                    (0..n_genes).map(|g| format!("g{g}")).collect(),
                    (0..n_classes).map(|c| format!("c{c}")).collect(),
                    values,
                    labels,
                )
                .unwrap()
            })
    })
}

proptest! {
    #[test]
    fn transform_is_total_and_one_hot(d in cont_dataset()) {
        let Ok((disc, b)) = Discretizer::fit_transform(&d) else {
            // No informative genes for this random dataset: fine.
            return Ok(());
        };
        prop_assert_eq!(b.n_samples(), d.n_samples());
        prop_assert_eq!(b.labels(), d.labels());
        // Exactly one expressed item per selected gene per sample.
        let n_selected = disc.selected_genes().len();
        for s in 0..b.n_samples() {
            prop_assert_eq!(b.sample(s).len(), n_selected);
        }
    }

    #[test]
    fn transform_is_deterministic(d in cont_dataset()) {
        let a = Discretizer::fit(&d);
        let b = Discretizer::fit(&d);
        prop_assert_eq!(a.selected_genes(), b.selected_genes());
        let (Ok(ta), Ok(tb)) = (a.transform(&d), b.transform(&d)) else {
            return Ok(());
        };
        for s in 0..ta.n_samples() {
            prop_assert_eq!(ta.sample(s), tb.sample(s));
        }
    }
}
