//! Out-of-core CV replicates — the streaming counterpart of
//! [`prepare`](crate::runner::prepare) + [`run_bstc`](crate::runner::run_bstc).
//!
//! A replicate here never materializes the expression matrix: the split's
//! train/test sides are [`SubsetView`]s over any [`ColumnSource`] (an
//! in-memory [`ContinuousDataset`](microarray::ContinuousDataset) or an
//! mmap-backed `.bmx` file), and both `Discretizer::fit` and binarization
//! stream gene columns under a `chunk_bytes` budget. Only BSTC runs — the
//! continuous baselines need the full selected-gene matrix resident, which
//! is exactly what this path exists to avoid.
//!
//! **Determinism contract.** Replicate `r` draws its split with seed
//! `base_seed.wrapping_add(1000 * r)` — the same schedule
//! [`draw_splits`](crate::split::draw_splits) uses — so *any* partition of
//! `0..reps` into shards reproduces the exact per-replicate results of a
//! single-process run. That is what lets `bstc-cli cv-shard` fan replicate
//! ranges out to worker processes and merge bit-identically: equality is
//! checked on [`ReplicateResult::accuracy`] bits and
//! [`ReplicateResult::pred_hash`], never on `secs`.

use crate::split::{draw_split, SplitSpec};
use crate::stats::accuracy;
use bstc::{Arithmetization, BstcModel};
use discretize::Discretizer;
use microarray::{ColumnSource, SubsetView};
use std::ops::Range;
use std::time::Instant;

/// One streamed replicate's outcome. `accuracy` and `pred_hash` are the
/// bit-identity surface; `secs` is informational only.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicateResult {
    /// Test accuracy (compare via `to_bits` for bit-identity).
    pub accuracy: f64,
    /// FNV-1a hash over the predicted class-id sequence — a compact
    /// witness that two runs produced the *same predictions*, not merely
    /// the same accuracy.
    pub pred_hash: u64,
    /// Wall-clock seconds for fit + transform + train + classify.
    /// Excluded from equivalence comparisons.
    pub secs: f64,
}

/// FNV-1a over class ids, the same construction `ModelBundle` and `.bmx`
/// use for integrity (64-bit offset basis / prime).
fn hash_predictions(preds: &[usize]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &p in preds {
        for byte in (p as u64).to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Runs one CV replicate end-to-end against a column source, streaming
/// gene chunks under `chunk_bytes`.
///
/// Mirrors `prepare` + `run_bstc` exactly: draw the split, fit the
/// discretizer on the training view only, transform both sides, train
/// BSTC with [`Arithmetization::Min`], classify the test side. Returns
/// `None` when discretization finds no informative gene — the same
/// replicate-skip semantics as [`run_cell`](crate::cv::run_cell).
pub fn run_replicate_streamed<S: ColumnSource>(
    source: &S,
    spec: &SplitSpec,
    seed: u64,
    chunk_bytes: usize,
) -> Option<ReplicateResult> {
    let t0 = Instant::now();
    let split = draw_split(source.labels(), source.n_classes(), spec, seed);
    let train = SubsetView::new(source, split.train);
    let test = SubsetView::new(source, split.test);
    let disc = Discretizer::fit_source(&train, chunk_bytes);
    let bool_train = disc.transform_source(&train, chunk_bytes).ok()?;
    let bool_test = disc.transform_source(&test, chunk_bytes).ok()?;
    let model = BstcModel::train_with(&bool_train, Arithmetization::Min);
    let compiled = model.compile();
    let preds = {
        let _stage = obs::Stage::enter("classify_batch");
        compiled.classify_all(bool_test.samples())
    };
    Some(ReplicateResult {
        accuracy: accuracy(&preds, bool_test.labels()),
        pred_hash: hash_predictions(&preds),
        secs: t0.elapsed().as_secs_f64(),
    })
}

/// Runs replicates `rep_range` of a `reps`-replicate cell, seeding each
/// replicate `r` with `base_seed.wrapping_add(1000 * r)`.
///
/// Because the seed depends only on the replicate index, running
/// `0..25` in one process or `0..13` and `13..25` in two yields the same
/// 25 results in order — the shard-merge invariant. `None` entries mark
/// replicates skipped for lack of informative genes.
pub fn run_reps_streamed<S: ColumnSource>(
    source: &S,
    spec: &SplitSpec,
    rep_range: Range<usize>,
    base_seed: u64,
    chunk_bytes: usize,
) -> Vec<Option<ReplicateResult>> {
    rep_range
        .map(|r| {
            let seed = base_seed.wrapping_add(1000 * r as u64);
            run_replicate_streamed(source, spec, seed, chunk_bytes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{prepare, run_bstc};
    use microarray::synth::SynthConfig;
    use microarray::{write_bmx, BmxDataset};

    fn small_cfg() -> SynthConfig {
        SynthConfig {
            name: "stream-test".into(),
            n_genes: 60,
            class_sizes: vec![14, 14],
            class_names: vec!["c0".into(), "c1".into()],
            markers_per_class: 8,
            marker_shift: 3.0,
            marker_dropout: 0.05,
            marker_modules: 0,
            wobble_rate: 0.0,
            marker_flip: 0.0,
            atypical_rate: 0.0,
            atypical_strength: 0.3,
            seed: 11,
        }
    }

    #[test]
    fn streamed_replicate_matches_the_in_memory_pipeline() {
        let data = small_cfg().generate();
        let spec = SplitSpec::Fraction(0.6);
        for seed in [7u64, 8, 9] {
            let streamed = run_replicate_streamed(&data, &spec, seed, 256).unwrap();
            // The in-memory reference path on the same split.
            let split = draw_split(data.labels(), data.n_classes(), &spec, seed);
            let p = prepare(&data, &split).unwrap();
            let reference = run_bstc(&p);
            assert_eq!(streamed.accuracy.to_bits(), reference.accuracy.to_bits());
        }
    }

    #[test]
    fn bmx_and_in_memory_sources_agree_bit_for_bit() {
        let data = small_cfg().generate();
        let dir = std::env::temp_dir().join(format!("eval_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("agree.bmx");
        write_bmx(&data, &path).unwrap();
        let bmx = BmxDataset::open(&path).unwrap();
        let spec = SplitSpec::Fraction(0.6);
        let mem = run_reps_streamed(&data, &spec, 0..4, 100, 1 << 10);
        let disk = run_reps_streamed(&bmx, &spec, 0..4, 100, 1 << 10);
        assert_eq!(mem.len(), disk.len());
        for (m, d) in mem.iter().zip(&disk) {
            let (m, d) = (m.unwrap(), d.unwrap());
            assert_eq!(m.accuracy.to_bits(), d.accuracy.to_bits());
            assert_eq!(m.pred_hash, d.pred_hash);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_rep_ranges_reproduce_the_full_run() {
        let data = small_cfg().generate();
        let spec = SplitSpec::Fraction(0.6);
        let full = run_reps_streamed(&data, &spec, 0..6, 42, usize::MAX);
        let mut merged = run_reps_streamed(&data, &spec, 0..2, 42, usize::MAX);
        merged.extend(run_reps_streamed(&data, &spec, 2..5, 42, usize::MAX));
        merged.extend(run_reps_streamed(&data, &spec, 5..6, 42, usize::MAX));
        assert_eq!(full.len(), merged.len());
        for (f, m) in full.iter().zip(&merged) {
            match (f, m) {
                (Some(f), Some(m)) => {
                    assert_eq!(f.accuracy.to_bits(), m.accuracy.to_bits());
                    assert_eq!(f.pred_hash, m.pred_hash);
                }
                (None, None) => {}
                _ => panic!("skip pattern diverged between full and sharded runs"),
            }
        }
    }

    #[test]
    fn chunk_budget_does_not_change_results() {
        let data = small_cfg().generate();
        let spec = SplitSpec::Fraction(0.6);
        let a = run_replicate_streamed(&data, &spec, 5, 1).unwrap();
        let b = run_replicate_streamed(&data, &spec, 5, usize::MAX).unwrap();
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        assert_eq!(a.pred_hash, b.pred_hash);
    }
}
