//! Accuracy and distribution statistics, including the boxplot summary the
//! paper plots in Figures 4–7 (§6.2's "Boxplot Interpretation").

use serde::{Deserialize, Serialize};

/// Fraction of positions where `pred == truth`.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
    assert!(!pred.is_empty(), "accuracy of zero samples is undefined");
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator; 0 for fewer than 2 points).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Linear-interpolation quantile (R type 7) of a *sorted* slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The five-number-plus-outliers summary of §6.2:
/// median (diamond), Q1/Q3 box, whiskers to the extremes unless outliers
/// exist — then to 1.5×IQR — with near outliers (within 3×IQR, circles)
/// and far outliers (asterisks) listed separately.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BoxplotStats {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (reported in the paper's tables).
    pub mean: f64,
    /// Median (the diamond).
    pub median: f64,
    /// First quartile (box bottom).
    pub q1: f64,
    /// Third quartile (box top).
    pub q3: f64,
    /// Lower whisker end.
    pub whisker_lo: f64,
    /// Upper whisker end.
    pub whisker_hi: f64,
    /// Outliers within 3×IQR of the box (drawn as circles).
    pub near_outliers: Vec<f64>,
    /// Outliers beyond 3×IQR (drawn as asterisks).
    pub far_outliers: Vec<f64>,
}

impl BoxplotStats {
    /// Computes the summary.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn compute(values: &[f64]) -> BoxplotStats {
        assert!(!values.is_empty(), "boxplot of zero observations");
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let lo_far = q1 - 3.0 * iqr;
        let hi_far = q3 + 3.0 * iqr;

        let mut near = Vec::new();
        let mut far = Vec::new();
        for &v in &sorted {
            if v < lo_fence || v > hi_fence {
                if v < lo_far || v > hi_far {
                    far.push(v);
                } else {
                    near.push(v);
                }
            }
        }
        // Whiskers: min/max unless outliers exist, then the most extreme
        // values inside the 1.5×IQR fences.
        let whisker_lo = sorted.iter().copied().find(|&v| v >= lo_fence).unwrap_or(sorted[0]);
        let whisker_hi = sorted
            .iter()
            .rev()
            .copied()
            .find(|&v| v <= hi_fence)
            .unwrap_or(*sorted.last().expect("non-empty"));

        BoxplotStats {
            n: sorted.len(),
            mean: mean(&sorted),
            median,
            q1,
            q3,
            whisker_lo,
            whisker_hi,
            near_outliers: near,
            far_outliers: far,
        }
    }

    /// ASCII rendering of the boxplot over a fixed `[lo, hi]` scale —
    /// whiskers as `|---`, the box as `[===]`, the median as `M`, near
    /// outliers as `o`, far outliers as `*`:
    ///
    /// ```text
    ///        o   |-----[==M====]--|        *
    /// ```
    pub fn render_ascii(&self, lo: f64, hi: f64, width: usize) -> String {
        assert!(hi > lo && width >= 10, "need a positive range and width >= 10");
        let mut row = vec![' '; width];
        let pos = |v: f64| -> usize {
            let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            ((t * (width - 1) as f64).round() as usize).min(width - 1)
        };
        let (wl, q1, md, q3, wh) = (
            pos(self.whisker_lo),
            pos(self.q1),
            pos(self.median),
            pos(self.q3),
            pos(self.whisker_hi),
        );
        for cell in row.iter_mut().take(q1).skip(wl) {
            *cell = '-';
        }
        for cell in row.iter_mut().take(wh + 1).skip(q3) {
            *cell = '-';
        }
        row[wl] = '|';
        row[wh] = '|';
        for cell in row.iter_mut().take(q3.max(q1 + 1)).skip(q1) {
            *cell = '=';
        }
        row[q1] = '[';
        row[q3] = ']';
        row[md] = 'M';
        for &v in &self.near_outliers {
            row[pos(v)] = 'o';
        }
        for &v in &self.far_outliers {
            row[pos(v)] = '*';
        }
        row.into_iter().collect()
    }

    /// One-line rendering for figure tables:
    /// `med=… box=[…, …] whiskers=[…, …] outliers=…`.
    pub fn render(&self) -> String {
        let mut s = format!(
            "med={:.4} box=[{:.4},{:.4}] whiskers=[{:.4},{:.4}] mean={:.4}",
            self.median, self.q1, self.q3, self.whisker_lo, self.whisker_hi, self.mean
        );
        if !self.near_outliers.is_empty() {
            s.push_str(&format!(" near_outliers={:?}", self.near_outliers));
        }
        if !self.far_outliers.is_empty() {
            s.push_str(&format!(" far_outliers={:?}", self.far_outliers));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
        assert_eq!(accuracy(&[1], &[0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        accuracy(&[0], &[0, 1]);
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn boxplot_no_outliers_whiskers_to_extremes() {
        let b = BoxplotStats::compute(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 5.0);
        assert!(b.near_outliers.is_empty() && b.far_outliers.is_empty());
    }

    #[test]
    fn boxplot_near_outlier() {
        // q1=2.25, q3=4.75, IQR=2.5: 1.5×IQR fence at 8.5, 3×IQR at 12.25.
        // 12 is past the fence but within 3×IQR: a near outlier (circle).
        let b = BoxplotStats::compute(&[1.0, 2.0, 3.0, 4.0, 5.0, 12.0]);
        assert_eq!(b.near_outliers, vec![12.0]);
        assert!(b.far_outliers.is_empty());
        // Whisker stops at the largest non-outlier.
        assert_eq!(b.whisker_hi, 5.0);
    }

    #[test]
    fn boxplot_far_outlier() {
        let b = BoxplotStats::compute(&[1.0, 2.0, 3.0, 4.0, 5.0, 50.0]);
        assert!(b.far_outliers.contains(&50.0), "{b:?}");
        assert!(!b.near_outliers.contains(&50.0));
    }

    #[test]
    fn boxplot_constant_data() {
        let b = BoxplotStats::compute(&[0.9; 10]);
        assert_eq!(b.median, 0.9);
        assert_eq!(b.q1, 0.9);
        assert_eq!(b.q3, 0.9);
        assert_eq!(b.whisker_lo, 0.9);
        assert_eq!(b.whisker_hi, 0.9);
        assert!(b.near_outliers.is_empty());
    }

    #[test]
    fn boxplot_single_observation() {
        let b = BoxplotStats::compute(&[0.5]);
        assert_eq!(b.n, 1);
        assert_eq!(b.median, 0.5);
        assert_eq!(b.whisker_lo, 0.5);
    }

    #[test]
    fn ascii_boxplot_shape() {
        let b = BoxplotStats::compute(&[0.2, 0.4, 0.5, 0.6, 0.8]);
        let s = b.render_ascii(0.0, 1.0, 41);
        assert_eq!(s.len(), 41);
        assert!(s.contains('M'));
        assert!(s.contains('['));
        assert!(s.contains(']'));
        // Whiskers sit at 0.2 and 0.8 of the scale.
        assert_eq!(s.chars().nth(8), Some('|'), "{s:?}");
        assert_eq!(s.chars().nth(32), Some('|'), "{s:?}");
    }

    #[test]
    fn ascii_boxplot_marks_outliers() {
        let b = BoxplotStats::compute(&[0.5, 0.52, 0.54, 0.56, 0.58, 0.9]);
        let s = b.render_ascii(0.0, 1.0, 50);
        assert!(s.contains('o') || s.contains('*'), "{s:?}");
    }

    #[test]
    fn ascii_boxplot_degenerate_distribution() {
        let b = BoxplotStats::compute(&[0.7; 5]);
        let s = b.render_ascii(0.0, 1.0, 30);
        // Everything collapses onto one column; the median mark wins.
        assert!(s.contains('M'), "{s:?}");
    }

    #[test]
    #[should_panic(expected = "positive range")]
    fn ascii_boxplot_bad_range_panics() {
        BoxplotStats::compute(&[0.5]).render_ascii(1.0, 0.0, 30);
    }

    #[test]
    fn render_mentions_all_parts() {
        let b = BoxplotStats::compute(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let s = b.render();
        assert!(s.contains("med=") && s.contains("box=") && s.contains("whiskers="));
    }

    #[test]
    fn quantiles_interpolate_like_r_type7() {
        // R: quantile(c(1,2,3,4), 0.25) = 1.75
        let b = BoxplotStats::compute(&[1.0, 2.0, 3.0, 4.0]);
        assert!((b.q1 - 1.75).abs() < 1e-12);
        assert!((b.median - 2.5).abs() < 1e-12);
        assert!((b.q3 - 3.25).abs() < 1e-12);
    }
}
