//! Plain-text tables (aligned like the paper's) and JSON result artifacts.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table builder.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; must match the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width != header width");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = widths[c]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (no quoting — callers use plain cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a runtime like the paper's tables: `"418.81"`, or `"≥ 7200.00"`
/// when the run hit its cutoff (a lower bound).
pub fn fmt_runtime(secs: f64, dnf: bool) -> String {
    if dnf {
        format!(">= {secs:.2}")
    } else {
        format!("{secs:.2}")
    }
}

/// Formats an accuracy as a percentage (`"95.59%"`) or `"-"` when absent
/// (the paper's em-dash for tests RCBT could not finish).
pub fn fmt_accuracy(acc: Option<f64>) -> String {
    match acc {
        Some(a) => format!("{:.2}%", a * 100.0),
        None => "-".to_string(),
    }
}

/// Writes any serializable result next to the text output, creating parent
/// directories as needed.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(value).expect("serializable");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Training", "BSTC", "RCBT"]);
        t.row(vec!["40%", "2.13", "418.81"]);
        t.row(vec!["1-52/0-50", "5.57", ">= 7200.00"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Training"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].contains(">= 7200.00"));
        // Columns align: "BSTC" column starts at the same offset in all rows.
        let off = lines[0].find("BSTC").unwrap();
        assert_eq!(&lines[2][off..off + 4], "2.13");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn csv_rendering() {
        let mut t = TextTable::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn runtime_and_accuracy_formats() {
        assert_eq!(fmt_runtime(418.81, false), "418.81");
        assert_eq!(fmt_runtime(7200.0, true), ">= 7200.00");
        assert_eq!(fmt_accuracy(Some(0.9559)), "95.59%");
        assert_eq!(fmt_accuracy(None), "-");
    }

    #[test]
    fn json_writer_creates_dirs() {
        let dir = std::env::temp_dir().join("bstc_eval_test");
        let path = dir.join("nested/out.json");
        let _ = std::fs::remove_dir_all(&dir);
        write_json(&path, &vec![1, 2, 3]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
