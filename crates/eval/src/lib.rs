//! # eval — the §6 evaluation harness
//!
//! Everything the experiment binaries share:
//!
//! * [`split`] — seeded percent and 1-x/0-y train/test splits;
//! * [`stats`] — accuracy, means, and the Figures 4–7 boxplot summary;
//! * [`runner`] — the per-test pipeline: entropy discretization on the
//!   training side, then timed BSTC / Top-k / RCBT / SVM / forest / tree
//!   runs with cutoff (DNF) accounting;
//! * [`confusion`] — confusion matrices and per-class metrics;
//! * [`cv`] — the 25-replicate cross-validation driver (rayon-parallel
//!   across replicates);
//! * [`stream`] — the out-of-core replicate runner: splits as
//!   `SubsetView`s over any `ColumnSource`, chunked fit/transform, and
//!   the per-replicate seed schedule that makes sharded runs
//!   bit-identical to single-process ones;
//! * [`report`] — aligned text tables, the paper's "≥"/"-" formatting,
//!   CSV, and JSON artifacts.
//!
//! ```
//! use eval::{draw_split, SplitSpec};
//!
//! let labels = vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1];
//! let split = draw_split(&labels, 2, &SplitSpec::Fraction(0.6), 42);
//! assert_eq!(split.train.len(), 6);
//! assert_eq!(split.test.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod confusion;
pub mod cv;
pub mod report;
pub mod runner;
pub mod split;
pub mod stats;
pub mod stream;

pub use confusion::ConfusionMatrix;
pub use cv::{run_cell, CvCell};
pub use report::{fmt_accuracy, fmt_runtime, write_json, TextTable};
pub use runner::{
    prepare, run_baselines, run_bstc, run_bstc_with, run_cba, run_mc2, run_rcbt, run_topk,
    BaselineParams, BaselineRun, BstcRun, CbaRun, Mc2Run, Prepared, RcbtRun, TopkRun,
};
pub use split::{draw_split, draw_splits, Split, SplitSpec};
pub use stats::{accuracy, mean, std_dev, BoxplotStats};
pub use stream::{run_replicate_streamed, run_reps_streamed, ReplicateResult};
