//! Train/test splits for the §6.2 cross-validation studies.
//!
//! The paper produces training sets two ways, 25 independent tests each:
//!
//! * **percent splits** — "randomly selecting samples from the original
//!   combined dataset" at 40 %, 60 %, 80 % (unstratified);
//! * **1-x/0-y splits** — exactly `x` class-1 and `y` class-0 samples,
//!   matching the clinically-determined training proportions.
//!
//! All splits are seeded and deterministic. A split that leaves some class
//! without a training sample cannot train any of the classifiers, so the
//! generator deterministically re-draws with a salted seed until every
//! class is represented (with the paper's dataset sizes this virtually
//! never triggers; tiny test datasets exercise it).

use microarray::SampleId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How a training set is drawn.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SplitSpec {
    /// Random fraction of all samples (the paper's 40/60/80 %).
    Fraction(f64),
    /// Exact per-class training counts, indexed by class id (the paper's
    /// 1-x/0-y tests: `counts[0] = y`, `counts[1] = x`).
    FixedCounts(Vec<usize>),
}

impl SplitSpec {
    /// A short label like `"60%"` or `"1-52/0-50"` used in tables.
    pub fn label(&self) -> String {
        match self {
            SplitSpec::Fraction(f) => format!("{:.0}%", f * 100.0),
            SplitSpec::FixedCounts(counts) => {
                // Paper order: class 1 first.
                let parts: Vec<String> =
                    counts.iter().enumerate().rev().map(|(c, n)| format!("{c}-{n}")).collect();
                parts.join("/")
            }
        }
    }
}

/// A materialized split: disjoint, exhaustive train/test sample ids.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Training sample ids (ascending).
    pub train: Vec<SampleId>,
    /// Test sample ids (ascending).
    pub test: Vec<SampleId>,
}

/// Draws one split of `labels` (one class id per sample) per `spec`.
///
/// # Panics
/// Panics if the spec is infeasible: a fraction outside (0, 1) leaving an
/// empty side, or fixed counts exceeding a class's size or covering every
/// sample of the dataset (no test data).
pub fn draw_split(labels: &[usize], n_classes: usize, spec: &SplitSpec, seed: u64) -> Split {
    for salt in 0u64.. {
        let split = draw_once(
            labels,
            n_classes,
            spec,
            seed.wrapping_add(salt.wrapping_mul(0x9e3779b97f4a7c15)),
        );
        if split_is_trainable(labels, n_classes, &split) {
            return split;
        }
        assert!(salt < 1000, "could not draw a split with every class in training");
    }
    unreachable!()
}

fn draw_once(labels: &[usize], n_classes: usize, spec: &SplitSpec, seed: u64) -> Split {
    let n = labels.len();
    let mut rng = StdRng::seed_from_u64(seed);
    match spec {
        SplitSpec::Fraction(f) => {
            assert!(*f > 0.0 && *f < 1.0, "fraction must be in (0,1)");
            let train_n = ((n as f64) * f).round() as usize;
            assert!(train_n >= 1 && train_n < n, "fraction leaves an empty side");
            let mut ids: Vec<usize> = (0..n).collect();
            ids.shuffle(&mut rng);
            let mut train: Vec<usize> = ids[..train_n].to_vec();
            let mut test: Vec<usize> = ids[train_n..].to_vec();
            train.sort_unstable();
            test.sort_unstable();
            Split { train, test }
        }
        SplitSpec::FixedCounts(counts) => {
            assert_eq!(counts.len(), n_classes, "one count per class");
            let mut train = Vec::new();
            for (class, &want) in counts.iter().enumerate() {
                let mut members: Vec<usize> = (0..n).filter(|&s| labels[s] == class).collect();
                assert!(
                    want <= members.len(),
                    "class {class} has {} samples, {want} requested",
                    members.len()
                );
                members.shuffle(&mut rng);
                train.extend_from_slice(&members[..want]);
            }
            train.sort_unstable();
            assert!(train.len() < n, "fixed counts leave no test data");
            let test: Vec<usize> = (0..n).filter(|s| train.binary_search(s).is_err()).collect();
            Split { train, test }
        }
    }
}

fn split_is_trainable(labels: &[usize], n_classes: usize, split: &Split) -> bool {
    let mut seen = vec![false; n_classes];
    for &s in &split.train {
        seen[labels[s]] = true;
    }
    seen.iter().all(|&b| b) && !split.test.is_empty()
}

/// The `reps` independent splits of one cross-validation cell (the paper
/// uses 25 per training-set size).
pub fn draw_splits(
    labels: &[usize],
    n_classes: usize,
    spec: &SplitSpec,
    reps: usize,
    base_seed: u64,
) -> Vec<Split> {
    (0..reps)
        .map(|r| draw_split(labels, n_classes, spec, base_seed.wrapping_add(1000 * r as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> Vec<usize> {
        // 6 of class 0, 4 of class 1.
        vec![0, 0, 0, 0, 0, 0, 1, 1, 1, 1]
    }

    #[test]
    fn fraction_split_sizes() {
        let s = draw_split(&labels(), 2, &SplitSpec::Fraction(0.6), 1);
        assert_eq!(s.train.len(), 6);
        assert_eq!(s.test.len(), 4);
    }

    #[test]
    fn split_is_disjoint_and_exhaustive() {
        let s = draw_split(&labels(), 2, &SplitSpec::Fraction(0.4), 9);
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fixed_counts_exact() {
        let s = draw_split(&labels(), 2, &SplitSpec::FixedCounts(vec![4, 2]), 3);
        let l = labels();
        let count = |ids: &[usize], class: usize| ids.iter().filter(|&&i| l[i] == class).count();
        assert_eq!(count(&s.train, 0), 4);
        assert_eq!(count(&s.train, 1), 2);
        assert_eq!(s.test.len(), 4);
    }

    #[test]
    fn splits_are_seed_deterministic() {
        let a = draw_split(&labels(), 2, &SplitSpec::Fraction(0.6), 7);
        let b = draw_split(&labels(), 2, &SplitSpec::Fraction(0.6), 7);
        assert_eq!(a, b);
        let c = draw_split(&labels(), 2, &SplitSpec::Fraction(0.6), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn every_class_lands_in_training() {
        // 40% of 10 = 4 training samples; with a 1-sample class the redraw
        // loop must place it.
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        for seed in 0..50 {
            let s = draw_split(&labels, 2, &SplitSpec::Fraction(0.4), seed);
            assert!(s.train.iter().any(|&i| labels[i] == 1), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "has 4 samples")]
    fn oversized_fixed_count_panics() {
        draw_split(&labels(), 2, &SplitSpec::FixedCounts(vec![2, 5]), 0);
    }

    #[test]
    #[should_panic(expected = "no test data")]
    fn full_coverage_fixed_count_panics() {
        draw_split(&labels(), 2, &SplitSpec::FixedCounts(vec![6, 4]), 0);
    }

    #[test]
    fn draw_splits_are_independent() {
        let all = draw_splits(&labels(), 2, &SplitSpec::Fraction(0.6), 25, 42);
        assert_eq!(all.len(), 25);
        // Not all splits identical.
        assert!(all.iter().any(|s| s != &all[0]));
    }

    #[test]
    fn labels_render_like_the_paper() {
        assert_eq!(SplitSpec::Fraction(0.4).label(), "40%");
        // OC's 1-133/0-77 test: counts[0]=77, counts[1]=133.
        assert_eq!(SplitSpec::FixedCounts(vec![77, 133]).label(), "1-133/0-77");
    }
}
