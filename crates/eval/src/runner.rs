//! The experiment pipeline of §6: one "classification test" takes a
//! continuous dataset and a train/test split, discretizes on the training
//! samples only, and runs the classifiers with wall-clock timing and
//! cutoff (DNF) accounting.
//!
//! Timing semantics follow the paper's tables:
//!
//! * the **BSTC** column is BST construction *plus* classifying every test
//!   sample (Table 4's caption);
//! * the **Top-k** column is rule-group mining alone;
//! * the **RCBT** column is lower-bound mining plus classification, run
//!   only when Top-k finished, with its own cutoff.

use crate::split::Split;
use crate::stats::accuracy;
use baselines::{
    AdaBoost, Bagging, ContinuousClassifier, DecisionTree, ForestParams, RandomForest, Svm,
    SvmParams, TreeParams,
};
use bstc::{Arithmetization, BstcModel};
use discretize::Discretizer;
use microarray::{BoolDataset, ContinuousDataset};
use rulemine::{Budget, Outcome, RcbtParams, TopkParams};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Node cap complementing the wall-clock cutoffs: the exponential miners
/// allocate per explored node, so very long cutoffs could exhaust memory
/// before time expires. Hitting the cap reports as DNF, like the clock.
const MAX_MINING_NODES: u64 = 20_000_000;

/// A discretized train/test pair plus the continuous views the
/// SVM/forest baselines use (selected genes only, undiscretized — §6.1).
pub struct Prepared {
    /// Discretized training data.
    pub bool_train: BoolDataset,
    /// Discretized test data (same item universe).
    pub bool_test: BoolDataset,
    /// Continuous training data restricted to the selected genes.
    pub cont_train: ContinuousDataset,
    /// Continuous test data restricted to the selected genes.
    pub cont_test: ContinuousDataset,
    /// Number of genes the entropy discretization kept (Table 3's
    /// "Genes After Discretization").
    pub genes_after_discretization: usize,
    /// Seconds spent fitting + applying the discretizer.
    pub discretize_secs: f64,
}

/// Discretizes per the paper: fit on training samples only, apply to both
/// sides. Returns `None` when no gene is informative (tiny/noisy data).
pub fn prepare(data: &ContinuousDataset, split: &Split) -> Option<Prepared> {
    let t0 = Instant::now();
    let train = data.subset(&split.train);
    let test = data.subset(&split.test);
    let disc = Discretizer::fit(&train);
    let bool_train = disc.transform(&train).ok()?;
    let bool_test = disc.transform(&test).ok()?;
    let selected = disc.selected_genes();
    let cont_train = train.select_genes(&selected);
    let cont_test = test.select_genes(&selected);
    Some(Prepared {
        bool_train,
        bool_test,
        cont_train,
        cont_test,
        genes_after_discretization: selected.len(),
        discretize_secs: t0.elapsed().as_secs_f64(),
    })
}

/// Result of one BSTC run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BstcRun {
    /// Test accuracy.
    pub accuracy: f64,
    /// Seconds to build all BSTs and classify every test sample.
    pub secs: f64,
}

/// Trains BSTC and classifies the test set (build + classify timed
/// together, per Table 4's caption).
pub fn run_bstc(p: &Prepared) -> BstcRun {
    run_bstc_with(p, Arithmetization::Min)
}

/// [`run_bstc`] with an explicit arithmetization (the §8 ablation).
///
/// Classification goes through the compiled word-parallel kernels — the
/// lowering cost is part of the timed span, matching how the model would
/// actually be deployed (and it is bit-identical to the reference path).
pub fn run_bstc_with(p: &Prepared, arith: Arithmetization) -> BstcRun {
    let t0 = Instant::now();
    let model = BstcModel::train_with(&p.bool_train, arith);
    let compiled = model.compile();
    let preds = {
        let _stage = obs::Stage::enter("classify_batch");
        compiled.classify_all(p.bool_test.samples())
    };
    let secs = t0.elapsed().as_secs_f64();
    BstcRun { accuracy: accuracy(&preds, p.bool_test.labels()), secs }
}

/// Result of a Top-k mining run (mining only — no classification).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TopkRun {
    /// Mining seconds (a lower bound when `dnf`).
    pub secs: f64,
    /// True when the cutoff expired before the search finished.
    pub dnf: bool,
    /// Total rule groups mined across classes.
    pub n_groups: usize,
}

/// Mines top-k covering rule groups for every class under a cutoff.
pub fn run_topk(p: &Prepared, params: TopkParams, cutoff: Duration) -> TopkRun {
    let t0 = Instant::now();
    let mut budget = Budget::with_time_and_nodes(cutoff, MAX_MINING_NODES);
    let (groups, outcome) = rulemine::mine_topk_groups_all(&p.bool_train, params, &mut budget);
    TopkRun {
        secs: t0.elapsed().as_secs_f64(),
        dnf: outcome.dnf(),
        n_groups: groups.iter().map(Vec::len).sum(),
    }
}

/// Result of a full RCBT run (both mining phases + classification).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RcbtRun {
    /// Test accuracy — `None` when training DNF'd (the paper leaves those
    /// cells out of its accuracy tables).
    pub accuracy: Option<f64>,
    /// Top-k phase seconds.
    pub topk_secs: f64,
    /// True when rule-group mining hit its cutoff.
    pub topk_dnf: bool,
    /// Lower-bound + classification seconds (lower bound when `rcbt_dnf`).
    pub rcbt_secs: f64,
    /// True when lower-bound mining hit its cutoff.
    pub rcbt_dnf: bool,
}

/// Runs the full RCBT pipeline with separate cutoffs for the two phases,
/// mirroring the paper's per-phase columns in Tables 4 and 6.
pub fn run_rcbt(
    p: &Prepared,
    params: RcbtParams,
    topk_cutoff: Duration,
    rcbt_cutoff: Duration,
) -> RcbtRun {
    let t_topk = Instant::now();
    let mut topk_budget = Budget::with_time_and_nodes(topk_cutoff, MAX_MINING_NODES);
    let mut lower_budget = Budget::with_time_and_nodes(rcbt_cutoff, MAX_MINING_NODES);

    // Phase split: we call the shared trainer but time the phases at its
    // boundary; rulemine reports each phase's outcome separately.
    let training = rulemine::train_rcbt(&p.bool_train, params, &mut topk_budget, &mut lower_budget);
    let total_secs = t_topk.elapsed().as_secs_f64();

    // Phase attribution: Top-k runs first inside train_rcbt; approximate
    // its share by re-measuring is wasteful, so we report the budgets'
    // own outcomes and split the wall clock by node counts.
    let topk_nodes = topk_budget.nodes_explored().max(1);
    let lower_nodes = lower_budget.nodes_explored();
    let topk_share = topk_nodes as f64 / (topk_nodes + lower_nodes) as f64;
    let topk_secs = total_secs * topk_share;
    let mut rcbt_secs = total_secs - topk_secs;

    let topk_dnf = training.topk_outcome.dnf();
    let rcbt_dnf = training.lower_outcome.dnf();

    let accuracy_val = if training.outcome() == Outcome::Finished {
        let t_cls = Instant::now();
        let preds = training.model.classify_all(p.bool_test.samples());
        rcbt_secs += t_cls.elapsed().as_secs_f64();
        Some(accuracy(&preds, p.bool_test.labels()))
    } else {
        None
    };

    RcbtRun { accuracy: accuracy_val, topk_secs, topk_dnf, rcbt_secs, rcbt_dnf }
}

/// Result of a CBA run (the §6.1-quoted baseline).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CbaRun {
    /// Test accuracy.
    pub accuracy: f64,
    /// Train + classify seconds.
    pub secs: f64,
    /// True when rule generation hit its cutoff (the model still
    /// classifies from the partial rule set).
    pub dnf: bool,
}

/// Trains and evaluates CBA under a cutoff.
pub fn run_cba(p: &Prepared, params: rulemine::CbaParams, cutoff: Duration) -> CbaRun {
    let t0 = Instant::now();
    let mut budget = Budget::with_time_and_nodes(cutoff, MAX_MINING_NODES);
    let training = rulemine::train_cba(&p.bool_train, params, &mut budget);
    let preds = training.model.classify_all(p.bool_test.samples());
    CbaRun {
        accuracy: accuracy(&preds, p.bool_test.labels()),
        secs: t0.elapsed().as_secs_f64(),
        dnf: training.outcome.dnf(),
    }
}

/// Result of a §4.2 (MC)²BAR-classifier run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Mc2Run {
    /// Test accuracy.
    pub accuracy: f64,
    /// Train + classify seconds.
    pub secs: f64,
}

/// Trains and evaluates the k-parameterized §4.2 classifier.
pub fn run_mc2(p: &Prepared, k: usize) -> Mc2Run {
    let t0 = Instant::now();
    let model = bstc::Mc2Classifier::train(&p.bool_train, k);
    let preds = model.classify_all(p.bool_test.samples());
    Mc2Run { accuracy: accuracy(&preds, p.bool_test.labels()), secs: t0.elapsed().as_secs_f64() }
}

/// Accuracies of the non-rule baselines on one prepared split
/// (undiscretized values, selected genes — §6.1's protocol).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BaselineRun {
    /// RBF SVM (e1071 defaults).
    pub svm: f64,
    /// Random forest (500 trees, √p mtry).
    pub forest: f64,
    /// Single C4.5-style tree.
    pub tree: f64,
    /// Bagged trees.
    pub bagging: f64,
    /// AdaBoost/SAMME.
    pub boosting: f64,
}

/// Baseline configuration (tree counts etc.).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BaselineParams {
    /// Random-forest trees (paper: 500; 1000 for PC).
    pub forest_trees: usize,
    /// Bagging rounds.
    pub bagging_rounds: usize,
    /// Boosting rounds.
    pub boosting_rounds: usize,
    /// Seed for the randomized learners.
    pub seed: u64,
}

impl Default for BaselineParams {
    fn default() -> Self {
        BaselineParams { forest_trees: 500, bagging_rounds: 25, boosting_rounds: 25, seed: 0 }
    }
}

/// Trains and evaluates all five non-rule baselines.
pub fn run_baselines(p: &Prepared, params: BaselineParams) -> BaselineRun {
    let truth = p.cont_test.labels();
    let eval = |preds: Vec<usize>| accuracy(&preds, truth);

    let svm = Svm::fit(&p.cont_train, SvmParams::default());
    let forest = RandomForest::fit(
        &p.cont_train,
        ForestParams { n_trees: params.forest_trees, seed: params.seed, ..Default::default() },
    );
    let tree = DecisionTree::fit(&p.cont_train, TreeParams::default(), None, None);
    let bagging =
        Bagging::fit(&p.cont_train, params.bagging_rounds, TreeParams::default(), params.seed);
    let boosting = AdaBoost::fit(&p.cont_train, params.boosting_rounds, 3, params.seed);

    BaselineRun {
        svm: eval(svm.predict_all(&p.cont_test)),
        forest: eval(forest.predict_all(&p.cont_test)),
        tree: eval(tree.predict_all(&p.cont_test)),
        bagging: eval(bagging.predict_all(&p.cont_test)),
        boosting: eval(boosting.predict_all(&p.cont_test)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{draw_split, SplitSpec};

    fn small_data() -> microarray::ContinuousDataset {
        // Strong planted signal: 27 samples, 80 genes, 10 clean markers
        // per class — big enough for MDL to accept cuts, small enough for
        // the miners to finish instantly.
        microarray::synth::SynthConfig {
            name: "runner-test".into(),
            n_genes: 80,
            class_sizes: vec![12, 15],
            class_names: vec!["c0".into(), "c1".into()],
            markers_per_class: 10,
            marker_shift: 2.5,
            marker_dropout: 0.05,
            marker_modules: 0,
            wobble_rate: 0.0,
            marker_flip: 0.0,
            atypical_rate: 0.0,
            atypical_strength: 0.3,
            seed: 3,
        }
        .generate()
    }

    fn small_prepared() -> Prepared {
        let data = small_data();
        let split = draw_split(data.labels(), 2, &SplitSpec::Fraction(0.6), 5);
        prepare(&data, &split).expect("informative genes exist")
    }

    #[test]
    fn prepare_pipeline_shapes() {
        let data = small_data();
        let split = draw_split(data.labels(), 2, &SplitSpec::Fraction(0.6), 5);
        let p = prepare(&data, &split).unwrap();
        assert_eq!(p.bool_train.n_samples(), split.train.len());
        assert_eq!(p.bool_test.n_samples(), split.test.len());
        assert_eq!(p.bool_train.n_items(), p.bool_test.n_items());
        assert_eq!(p.cont_train.n_genes(), p.genes_after_discretization);
        assert!(p.genes_after_discretization > 0);
        assert!(p.discretize_secs >= 0.0);
    }

    #[test]
    fn bstc_beats_chance_on_planted_markers() {
        let p = small_prepared();
        let run = run_bstc(&p);
        assert!(run.accuracy > 0.6, "accuracy {}", run.accuracy);
        assert!(run.secs >= 0.0);
    }

    #[test]
    fn bstc_ablation_runs_all_arithmetizations() {
        let p = small_prepared();
        for arith in [Arithmetization::Min, Arithmetization::Product, Arithmetization::Mean] {
            let run = run_bstc_with(&p, arith);
            assert!((0.0..=1.0).contains(&run.accuracy));
        }
    }

    #[test]
    fn topk_finishes_on_small_data() {
        let p = small_prepared();
        let run = run_topk(&p, TopkParams { k: 5, minsup: 0.7 }, Duration::from_secs(30));
        assert!(!run.dnf, "tiny dataset should finish");
    }

    #[test]
    fn topk_tiny_cutoff_dnfs() {
        let p = small_prepared();
        let run = run_topk(&p, TopkParams { k: 10, minsup: 0.0 }, Duration::from_nanos(1));
        assert!(run.dnf);
        assert!(run.secs >= 0.0);
    }

    #[test]
    fn rcbt_runs_and_reports_accuracy_when_finished() {
        let p = small_prepared();
        let run = run_rcbt(
            &p,
            RcbtParams { k: 3, nl: 5, minsup: 0.7 },
            Duration::from_secs(30),
            Duration::from_secs(30),
        );
        assert!(!run.topk_dnf && !run.rcbt_dnf);
        let acc = run.accuracy.expect("finished runs have accuracy");
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn rcbt_dnf_suppresses_accuracy() {
        let p = small_prepared();
        let run = run_rcbt(
            &p,
            RcbtParams { k: 10, nl: 20, minsup: 0.0 },
            Duration::from_nanos(1),
            Duration::from_nanos(1),
        );
        assert!(run.topk_dnf);
        assert!(run.accuracy.is_none());
    }

    #[test]
    fn cba_runs_and_reports_accuracy() {
        let p = small_prepared();
        let run = run_cba(&p, rulemine::CbaParams::default(), Duration::from_secs(20));
        assert!((0.0..=1.0).contains(&run.accuracy));
        assert!(run.secs >= 0.0);
        assert!(run.accuracy > 0.5, "CBA at {} on planted markers", run.accuracy);
    }

    #[test]
    fn mc2_runs_and_beats_chance() {
        let p = small_prepared();
        let run = run_mc2(&p, 3);
        assert!((0.0..=1.0).contains(&run.accuracy));
        assert!(run.accuracy > 0.5, "Mc2 at {}", run.accuracy);
    }

    #[test]
    fn baselines_all_report_sane_accuracies() {
        let p = small_prepared();
        let run = run_baselines(
            &p,
            BaselineParams { forest_trees: 30, bagging_rounds: 10, boosting_rounds: 10, seed: 1 },
        );
        for (name, acc) in [
            ("svm", run.svm),
            ("forest", run.forest),
            ("tree", run.tree),
            ("bagging", run.bagging),
            ("boosting", run.boosting),
        ] {
            assert!((0.0..=1.0).contains(&acc), "{name}: {acc}");
        }
        // The planted markers are strong: the forest must beat chance.
        assert!(run.forest > 0.55, "forest {}", run.forest);
    }
}
