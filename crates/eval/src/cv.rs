//! The cross-validation driver behind Figures 4–7 and Tables 4–7: draws
//! the 25 seeded splits of each training-set size and fans the independent
//! tests out across cores with rayon (the runs are embarrassingly
//! parallel; the measured algorithms themselves stay single-threaded).

use crate::runner::{prepare, Prepared};
use crate::split::{draw_splits, Split, SplitSpec};
use microarray::ContinuousDataset;
use rayon::prelude::*;

/// One cross-validation cell: a split spec plus replicate count.
#[derive(Clone, Debug)]
pub struct CvCell {
    /// How training sets are drawn (40 %, 60 %, 80 %, or 1-x/0-y).
    pub spec: SplitSpec,
    /// Independent tests (paper: 25).
    pub reps: usize,
    /// Base RNG seed for the cell.
    pub base_seed: u64,
}

impl CvCell {
    /// The paper's standard grid for a two-class dataset: 40/60/80 % plus
    /// the 1-x/0-y cell matching the clinically-determined proportions.
    pub fn paper_grid(fixed_counts: Vec<usize>, reps: usize, base_seed: u64) -> Vec<CvCell> {
        vec![
            CvCell { spec: SplitSpec::Fraction(0.4), reps, base_seed },
            CvCell { spec: SplitSpec::Fraction(0.6), reps, base_seed: base_seed ^ 0x40 },
            CvCell { spec: SplitSpec::Fraction(0.8), reps, base_seed: base_seed ^ 0x80 },
            CvCell {
                spec: SplitSpec::FixedCounts(fixed_counts),
                reps,
                base_seed: base_seed ^ 0xF0,
            },
        ]
    }

    /// Materializes the cell's splits.
    pub fn splits(&self, data: &ContinuousDataset) -> Vec<Split> {
        draw_splits(data.labels(), data.n_classes(), &self.spec, self.reps, self.base_seed)
    }
}

/// Runs `f` over every replicate of a cell in parallel; replicates whose
/// discretization selects no genes are skipped (reported as `None`).
///
/// `f` receives the replicate index and the prepared (discretized) split.
pub fn run_cell<R, F>(data: &ContinuousDataset, cell: &CvCell, f: F) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(usize, &Prepared) -> R + Sync,
{
    let splits = cell.splits(data);
    splits
        .par_iter()
        .enumerate()
        .map(|(rep, split)| prepare(data, split).map(|p| f(rep, &p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_bstc;
    use microarray::synth::presets;

    #[test]
    fn paper_grid_has_four_cells() {
        let grid = CvCell::paper_grid(vec![50, 52], 25, 7);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid[0].spec, SplitSpec::Fraction(0.4));
        assert_eq!(grid[3].spec.label(), "1-52/0-50");
        // Distinct seeds per cell keep splits independent.
        let seeds: std::collections::HashSet<u64> = grid.iter().map(|c| c.base_seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn run_cell_produces_one_result_per_rep() {
        let data = presets::all_aml(11).scaled_down(50).generate();
        let cell = CvCell { spec: SplitSpec::Fraction(0.6), reps: 4, base_seed: 3 };
        let results = run_cell(&data, &cell, |_, p| run_bstc(p).accuracy);
        assert_eq!(results.len(), 4);
        for r in results.into_iter().flatten() {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn run_cell_is_deterministic_across_runs() {
        let data = presets::all_aml(11).scaled_down(50).generate();
        let cell = CvCell { spec: SplitSpec::Fraction(0.6), reps: 3, base_seed: 9 };
        let a = run_cell(&data, &cell, |_, p| run_bstc(p).accuracy);
        let b = run_cell(&data, &cell, |_, p| run_bstc(p).accuracy);
        assert_eq!(a, b);
    }
}
