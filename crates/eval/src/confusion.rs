//! Confusion matrices and per-class metrics — evaluation depth beyond the
//! paper's single accuracy numbers (useful for the ALL/AML §6.1
//! observation that *all* of BSTC's errors went in one direction).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A `K × K` confusion matrix: `counts[truth][pred]`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds from parallel prediction/truth slices.
    ///
    /// # Panics
    /// Panics on length mismatch or labels `>= n_classes`.
    pub fn from_predictions(pred: &[usize], truth: &[usize], n_classes: usize) -> ConfusionMatrix {
        assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
        let mut counts = vec![vec![0usize; n_classes]; n_classes];
        for (&p, &t) in pred.iter().zip(truth) {
            assert!(p < n_classes && t < n_classes, "label out of range");
            counts[t][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// `counts[truth][pred]`.
    pub fn count(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth][pred]
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy; 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let hits: usize = (0..self.n_classes()).map(|c| self.counts[c][c]).sum();
        hits as f64 / total as f64
    }

    /// Recall (sensitivity) of one class: `TP / (TP + FN)`; `None` when the
    /// class has no true members.
    pub fn recall(&self, class: usize) -> Option<f64> {
        let row: usize = self.counts[class].iter().sum();
        if row == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / row as f64)
        }
    }

    /// Precision of one class: `TP / (TP + FP)`; `None` when the class was
    /// never predicted.
    pub fn precision(&self, class: usize) -> Option<f64> {
        let col: usize = (0..self.n_classes()).map(|t| self.counts[t][class]).sum();
        if col == 0 {
            None
        } else {
            Some(self.counts[class][class] as f64 / col as f64)
        }
    }

    /// Specificity of one class: `TN / (TN + FP)`; `None` when the class
    /// covers every observation.
    pub fn specificity(&self, class: usize) -> Option<f64> {
        let mut tn = 0usize;
        let mut fp = 0usize;
        for t in 0..self.n_classes() {
            for p in 0..self.n_classes() {
                if t != class {
                    if p == class {
                        fp += self.counts[t][p];
                    } else {
                        tn += self.counts[t][p];
                    }
                }
            }
        }
        if tn + fp == 0 {
            None
        } else {
            Some(tn as f64 / (tn + fp) as f64)
        }
    }

    /// True if every error confuses `from` (truth) as `to` (prediction) —
    /// the §6.1 "all errors were made in this same direction" check.
    pub fn errors_all_in_direction(&self, from: usize, to: usize) -> bool {
        let mut total_errors = 0usize;
        for t in 0..self.n_classes() {
            for p in 0..self.n_classes() {
                if t != p {
                    total_errors += self.counts[t][p];
                }
            }
        }
        total_errors > 0 && self.counts[from][to] == total_errors
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "truth \\ pred")?;
        for t in 0..self.n_classes() {
            for p in 0..self.n_classes() {
                write!(f, "{:>6}", self.counts[t][p])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> ConfusionMatrix {
        // truth:  0 0 0 0 1 1 1
        // pred:   0 0 1 1 1 1 0
        ConfusionMatrix::from_predictions(&[0, 0, 1, 1, 1, 1, 0], &[0, 0, 0, 0, 1, 1, 1], 2)
    }

    #[test]
    fn counts_and_accuracy() {
        let c = m();
        assert_eq!(c.count(0, 0), 2);
        assert_eq!(c.count(0, 1), 2);
        assert_eq!(c.count(1, 1), 2);
        assert_eq!(c.count(1, 0), 1);
        assert_eq!(c.total(), 7);
        assert!((c.accuracy() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_metrics() {
        let c = m();
        assert!((c.recall(0).unwrap() - 0.5).abs() < 1e-12);
        assert!((c.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.precision(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.precision(1).unwrap() - 0.5).abs() < 1e-12);
        assert!((c.specificity(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.specificity(1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn one_directional_errors_detected() {
        // The §6.1 ALL/AML case: every error mistakes class 0 for class 1.
        let c = ConfusionMatrix::from_predictions(&[1, 1, 0, 1, 1], &[0, 0, 0, 1, 1], 2);
        assert!(c.errors_all_in_direction(0, 1));
        assert!(!c.errors_all_in_direction(1, 0));
        // No errors: the predicate is false (nothing to be directional).
        let perfect = ConfusionMatrix::from_predictions(&[0, 1], &[0, 1], 2);
        assert!(!perfect.errors_all_in_direction(0, 1));
    }

    #[test]
    fn undefined_metrics_are_none() {
        let c = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 2);
        assert!(c.recall(1).is_none()); // class 1 never true
        assert!(c.precision(1).is_none()); // class 1 never predicted
        assert!(c.specificity(0).is_none()); // everything is class 0
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn display_renders_grid() {
        let s = m().to_string();
        assert!(s.contains("truth"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn multiclass_matrix() {
        let c = ConfusionMatrix::from_predictions(&[0, 1, 2, 2], &[0, 1, 2, 1], 3);
        assert_eq!(c.n_classes(), 3);
        assert_eq!(c.count(1, 2), 1);
        assert!((c.accuracy() - 0.75).abs() < 1e-12);
    }
}
