//! Tree ensembles: bagging and AdaBoost (SAMME) — the "Weka 3.2 C4.5
//! family bagging/boosting" comparison points of §6.1.

use crate::tree::{DecisionTree, TreeParams};
use microarray::{ClassId, ContinuousDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A bagged ensemble of decision trees (majority vote over bootstrap
/// replicas).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bagging {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl Bagging {
    /// Fits `n_trees` trees, each on a bootstrap resample of the data.
    pub fn fit(data: &ContinuousDataset, n_trees: usize, params: TreeParams, seed: u64) -> Bagging {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = data.n_samples();
        let trees = (0..n_trees)
            .map(|_| {
                let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
                let boot = data.subset(&idx);
                DecisionTree::fit(&boot, params, None, None)
            })
            .collect();
        Bagging { trees, n_classes: data.n_classes() }
    }

    /// Majority vote over the ensemble.
    pub fn predict(&self, row: &[f64]) -> ClassId {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(row)] += 1;
        }
        argmax(&votes)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

/// AdaBoost with the SAMME multi-class weight update over shallow trees.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AdaBoost {
    stages: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl AdaBoost {
    /// Fits up to `n_rounds` boosting stages of depth-limited trees.
    /// Rounds stop early if a stage reaches zero training error (it gets a
    /// large finite weight) or does no better than chance.
    pub fn fit(data: &ContinuousDataset, n_rounds: usize, max_depth: usize, seed: u64) -> AdaBoost {
        let _ = seed; // deterministic learner; kept for API symmetry
        let n = data.n_samples();
        let k = data.n_classes() as f64;
        let mut w = vec![1.0 / n as f64; n];
        // Boosting weights are normalized to sum 1, so the default
        // weight-mass split floor (tuned for unit weights) would turn every
        // stage into a single leaf; depth is the only capacity control here.
        let params = TreeParams { max_depth, min_split: 0.0, ..TreeParams::default() };
        let mut stages = Vec::new();

        for _ in 0..n_rounds {
            let tree = DecisionTree::fit(data, params, Some(&w), None);
            let preds: Vec<ClassId> = (0..n).map(|i| tree.predict(data.row(i))).collect();
            let err: f64 = (0..n).filter(|&i| preds[i] != data.label(i)).map(|i| w[i]).sum();
            // SAMME requires err < 1 - 1/K (better than random guessing).
            if err >= 1.0 - 1.0 / k {
                break;
            }
            let alpha = if err <= 1e-10 {
                // Perfect stage: cap the weight and stop (further rounds
                // cannot change anything).
                stages.push((tree, 10.0));
                break;
            } else {
                ((1.0 - err) / err).ln() + (k - 1.0).ln()
            };
            for i in 0..n {
                if preds[i] != data.label(i) {
                    w[i] *= alpha.exp();
                }
            }
            let total: f64 = w.iter().sum();
            for wi in &mut w {
                *wi /= total;
            }
            stages.push((tree, alpha));
        }
        AdaBoost { stages, n_classes: data.n_classes() }
    }

    /// Weighted vote over the boosting stages.
    pub fn predict(&self, row: &[f64]) -> ClassId {
        let mut scores = vec![0.0f64; self.n_classes];
        for (tree, alpha) in &self.stages {
            scores[tree.predict(row)] += alpha;
        }
        scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c).unwrap_or(0)
    }

    /// Number of boosting stages actually fitted.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }
}

fn argmax(votes: &[usize]) -> usize {
    votes.iter().enumerate().max_by_key(|&(_, &v)| v).map(|(c, _)| c).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ContinuousDataset {
        ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 7.0],
                vec![2.0, 1.0],
                vec![3.0, 4.0],
                vec![2.5, 9.0],
                vec![8.0, 2.0],
                vec![9.0, 8.0],
                vec![7.5, 5.0],
                vec![8.2, 0.5],
            ],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn bagging_learns_separable_data() {
        let d = toy();
        let m = Bagging::fit(&d, 25, TreeParams::default(), 7);
        assert_eq!(m.n_trees(), 25);
        for s in 0..d.n_samples() {
            assert_eq!(m.predict(d.row(s)), d.label(s));
        }
    }

    #[test]
    fn bagging_is_seed_deterministic() {
        let d = toy();
        let a = Bagging::fit(&d, 10, TreeParams::default(), 3);
        let b = Bagging::fit(&d, 10, TreeParams::default(), 3);
        for s in 0..d.n_samples() {
            assert_eq!(a.predict(d.row(s)), b.predict(d.row(s)));
        }
    }

    #[test]
    fn adaboost_learns_separable_data() {
        let d = toy();
        let m = AdaBoost::fit(&d, 20, 1, 0);
        assert!(m.n_stages() >= 1);
        for s in 0..d.n_samples() {
            assert_eq!(m.predict(d.row(s)), d.label(s));
        }
    }

    #[test]
    fn adaboost_stops_after_perfect_stage() {
        let d = toy();
        // Depth-2 trees separate this data perfectly on round one.
        let m = AdaBoost::fit(&d, 50, 3, 0);
        assert_eq!(m.n_stages(), 1);
    }

    #[test]
    fn adaboost_on_xor_with_stumps_improves() {
        // Single stumps cannot express XOR; boosting stumps on (x, y, x*y)
        // proxy features works — here we just check boosting on raw XOR
        // with depth-2 trees classifies training data.
        let d = ContinuousDataset::new(
            vec!["x".into(), "y".into()],
            vec!["a".into(), "b".into()],
            vec![
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.1, 0.1],
                vec![0.9, 0.9],
                vec![0.1, 0.9],
                vec![0.9, 0.1],
            ],
            vec![0, 0, 1, 1, 0, 0, 1, 1],
        )
        .unwrap();
        let m = AdaBoost::fit(&d, 30, 2, 0);
        let correct = (0..d.n_samples()).filter(|&s| m.predict(d.row(s)) == d.label(s)).count();
        // Greedy depth-2 trees can pick an unlucky zero-gain root, so the
        // boosted committee need not be perfect — but it must clearly beat
        // the 50% a single chance-level stump would get.
        assert!(correct >= 6, "{correct}/{} after boosting", d.n_samples());
    }

    #[test]
    fn multiclass_bagging() {
        let d = ContinuousDataset::new(
            vec!["x".into()],
            vec!["a".into(), "b".into(), "c".into()],
            vec![vec![1.0], vec![1.1], vec![5.0], vec![5.1], vec![9.0], vec![9.1]],
            vec![0, 0, 1, 1, 2, 2],
        )
        .unwrap();
        let m = Bagging::fit(&d, 30, TreeParams::default(), 1);
        assert_eq!(m.predict(&[1.05]), 0);
        assert_eq!(m.predict(&[5.05]), 1);
        assert_eq!(m.predict(&[9.05]), 2);
    }
}
