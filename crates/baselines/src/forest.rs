//! Random forests (Breiman 2001) — the `randomForest` 4.5 baseline of
//! §6.1 (500 trees by default; the paper raised PC to 1000 trees).

use crate::tree::{DecisionTree, TreeParams};
use microarray::{ClassId, ContinuousDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees (paper default: 500).
    pub n_trees: usize,
    /// Features considered per split; `None` = ⌊√p⌋ (the R default).
    pub mtry: Option<usize>,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { n_trees: 500, mtry: None, max_depth: 25, seed: 0 }
    }
}

/// A fitted random forest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Fits the forest: each tree sees a bootstrap resample and √p random
    /// candidate features per split.
    pub fn fit(data: &ContinuousDataset, params: ForestParams) -> RandomForest {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let n = data.n_samples();
        let mtry =
            params.mtry.unwrap_or_else(|| (data.n_genes() as f64).sqrt().floor().max(1.0) as usize);
        let tree_params = TreeParams {
            max_depth: params.max_depth,
            features_per_split: Some(mtry),
            ..TreeParams::default()
        };
        let trees = (0..params.n_trees)
            .map(|_| {
                let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
                let boot = data.subset(&idx);
                DecisionTree::fit(&boot, tree_params, None, Some(&mut rng))
            })
            .collect();
        RandomForest { trees, n_classes: data.n_classes() }
    }

    /// Majority vote across the forest.
    pub fn predict(&self, row: &[f64]) -> ClassId {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict(row)] += 1;
        }
        votes.iter().enumerate().max_by_key(|&(_, &v)| v).map(|(c, _)| c).unwrap_or(0)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_noise: usize) -> ContinuousDataset {
        // Gene 0 is informative; n_noise constant-ish noise genes follow.
        let mut genes = vec!["signal".to_string()];
        genes.extend((0..n_noise).map(|i| format!("noise{i}")));
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..16 {
            let class = i % 2;
            let mut row =
                vec![if class == 0 { 1.0 + 0.1 * i as f64 } else { 8.0 + 0.1 * i as f64 }];
            row.extend((0..n_noise).map(|j| ((i * 31 + j * 17) % 10) as f64));
            values.push(row);
            labels.push(class);
        }
        ContinuousDataset::new(genes, vec!["neg".into(), "pos".into()], values, labels).unwrap()
    }

    #[test]
    fn forest_learns_with_noise_features() {
        let d = toy(8);
        let params = ForestParams { n_trees: 60, seed: 4, ..ForestParams::default() };
        let m = RandomForest::fit(&d, params);
        assert_eq!(m.n_trees(), 60);
        for s in 0..d.n_samples() {
            assert_eq!(m.predict(d.row(s)), d.label(s), "sample {s}");
        }
        assert_eq!(m.predict(&[0.5, 0., 0., 0., 0., 0., 0., 0., 0.]), 0);
        assert_eq!(m.predict(&[9.5, 0., 0., 0., 0., 0., 0., 0., 0.]), 1);
    }

    #[test]
    fn forest_is_seed_deterministic() {
        let d = toy(4);
        let p = ForestParams { n_trees: 20, seed: 9, ..ForestParams::default() };
        let a = RandomForest::fit(&d, p);
        let b = RandomForest::fit(&d, p);
        for s in 0..d.n_samples() {
            assert_eq!(a.predict(d.row(s)), b.predict(d.row(s)));
        }
    }

    #[test]
    fn mtry_defaults_to_sqrt_p() {
        // 9 genes → mtry 3; just verify fitting works via the default path.
        let d = toy(8);
        let m = RandomForest::fit(&d, ForestParams { n_trees: 5, ..ForestParams::default() });
        assert_eq!(m.n_trees(), 5);
    }
}
