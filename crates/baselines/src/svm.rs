//! Support vector machine with RBF kernel, trained by a simplified SMO
//! (Platt 1998) — the `e1071`-equivalent baseline of §6.1, run with its
//! defaults (radial kernel, `C = 1`, `γ = 1/p`).
//!
//! Binary SVMs are combined one-vs-one with majority voting for
//! multi-class data, matching libsvm/e1071 behaviour.

use microarray::{ClassId, ContinuousDataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// SVM hyper-parameters (e1071 defaults).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SvmParams {
    /// Soft-margin penalty.
    pub c: f64,
    /// RBF width; `None` = `1 / n_features` (the e1071 default).
    pub gamma: Option<f64>,
    /// KKT tolerance.
    pub tol: f64,
    /// Maximum SMO passes without change before convergence is declared.
    pub max_passes: usize,
    /// RNG seed for the second-alpha heuristic.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams { c: 1.0, gamma: None, tol: 1e-3, max_passes: 5, seed: 0 }
    }
}

/// One binary RBF-SVM (labels ±1 over two original classes).
#[derive(Clone, Debug, Serialize, Deserialize)]
struct BinarySvm {
    class_neg: ClassId,
    class_pos: ClassId,
    support_vectors: Vec<Vec<f64>>,
    /// `alpha_i * y_i` per support vector.
    coeffs: Vec<f64>,
    bias: f64,
    gamma: f64,
}

impl BinarySvm {
    fn decision(&self, row: &[f64]) -> f64 {
        let mut f = self.bias;
        for (sv, &c) in self.support_vectors.iter().zip(&self.coeffs) {
            f += c * rbf(sv, row, self.gamma);
        }
        f
    }

    fn predict(&self, row: &[f64]) -> ClassId {
        if self.decision(row) >= 0.0 {
            self.class_pos
        } else {
            self.class_neg
        }
    }
}

#[inline]
fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    (-gamma * d2).exp()
}

/// A (possibly multi-class, one-vs-one) RBF SVM.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Svm {
    machines: Vec<BinarySvm>,
    n_classes: usize,
}

impl Svm {
    /// Trains one binary SVM per unordered class pair.
    pub fn fit(data: &ContinuousDataset, params: SvmParams) -> Svm {
        let n_classes = data.n_classes();
        let gamma = params.gamma.unwrap_or(1.0 / data.n_genes().max(1) as f64);
        let mut machines = Vec::new();
        for a in 0..n_classes {
            for b in a + 1..n_classes {
                machines.push(train_binary(data, a, b, gamma, params));
            }
        }
        Svm { machines, n_classes }
    }

    /// One-vs-one majority vote.
    pub fn predict(&self, row: &[f64]) -> ClassId {
        let mut votes = vec![0usize; self.n_classes];
        for m in &self.machines {
            votes[m.predict(row)] += 1;
        }
        votes.iter().enumerate().max_by_key(|&(_, &v)| v).map(|(c, _)| c).unwrap_or(0)
    }

    /// The binary decision value (positive ⇒ second class) — only
    /// meaningful for two-class data.
    pub fn decision(&self, row: &[f64]) -> f64 {
        assert_eq!(self.machines.len(), 1, "decision() requires a binary SVM");
        self.machines[0].decision(row)
    }
}

/// Simplified SMO on the (a = −1, b = +1) subproblem.
fn train_binary(
    data: &ContinuousDataset,
    class_a: ClassId,
    class_b: ClassId,
    gamma: f64,
    params: SvmParams,
) -> BinarySvm {
    let idx: Vec<usize> = (0..data.n_samples())
        .filter(|&s| data.label(s) == class_a || data.label(s) == class_b)
        .collect();
    let n = idx.len();
    let x: Vec<&[f64]> = idx.iter().map(|&s| data.row(s)).collect();
    let y: Vec<f64> =
        idx.iter().map(|&s| if data.label(s) == class_b { 1.0 } else { -1.0 }).collect();

    // Precomputed kernel matrix: training sets here are ≤ a few hundred
    // rows, so n² doubles are cheap and SMO becomes memory-bound-free.
    let mut kernel = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i..n {
            let k = rbf(x[i], x[j], gamma);
            kernel[i * n + j] = k;
            kernel[j * n + i] = k;
        }
    }
    let k = |i: usize, j: usize| kernel[i * n + j];

    let mut alpha = vec![0.0f64; n];
    let mut bias = 0.0f64;
    let mut rng = StdRng::seed_from_u64(params.seed);

    let f = |alpha: &[f64], bias: f64, kernel: &dyn Fn(usize, usize) -> f64, i: usize| -> f64 {
        let mut v = bias;
        for j in 0..n {
            if alpha[j] != 0.0 {
                v += alpha[j] * y[j] * kernel(j, i);
            }
        }
        v
    };

    let mut passes = 0usize;
    let max_iters = 200 * n.max(1); // hard safety valve
    let mut iters = 0usize;
    while passes < params.max_passes && iters < max_iters {
        iters += 1;
        let mut changed = 0usize;
        for i in 0..n {
            let ei = f(&alpha, bias, &k, i) - y[i];
            let violates = (y[i] * ei < -params.tol && alpha[i] < params.c)
                || (y[i] * ei > params.tol && alpha[i] > 0.0);
            if !violates {
                continue;
            }
            // Second index: random j ≠ i (Platt's simplified heuristic).
            let mut j = rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let ej = f(&alpha, bias, &k, j) - y[j];
            let (ai_old, aj_old) = (alpha[i], alpha[j]);
            let (lo, hi) = if y[i] != y[j] {
                ((aj_old - ai_old).max(0.0), (params.c + aj_old - ai_old).min(params.c))
            } else {
                ((ai_old + aj_old - params.c).max(0.0), (ai_old + aj_old).min(params.c))
            };
            if lo >= hi {
                continue;
            }
            let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
            if eta >= 0.0 {
                continue;
            }
            let mut aj = aj_old - y[j] * (ei - ej) / eta;
            aj = aj.clamp(lo, hi);
            if (aj - aj_old).abs() < 1e-7 {
                continue;
            }
            let ai = ai_old + y[i] * y[j] * (aj_old - aj);
            alpha[i] = ai;
            alpha[j] = aj;
            let b1 = bias - ei - y[i] * (ai - ai_old) * k(i, i) - y[j] * (aj - aj_old) * k(i, j);
            let b2 = bias - ej - y[i] * (ai - ai_old) * k(i, j) - y[j] * (aj - aj_old) * k(j, j);
            bias = if 0.0 < ai && ai < params.c {
                b1
            } else if 0.0 < aj && aj < params.c {
                b2
            } else {
                (b1 + b2) / 2.0
            };
            changed += 1;
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }

    // Keep only the support vectors.
    let mut support_vectors = Vec::new();
    let mut coeffs = Vec::new();
    for i in 0..n {
        if alpha[i] > 1e-9 {
            support_vectors.push(x[i].to_vec());
            coeffs.push(alpha[i] * y[i]);
        }
    }
    BinarySvm { class_neg: class_a, class_pos: class_b, support_vectors, coeffs, bias, gamma }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> ContinuousDataset {
        // Two well-separated 2-D clusters.
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            values.push(vec![1.0 + 0.1 * i as f64, 1.0 - 0.07 * i as f64]);
            labels.push(0);
            values.push(vec![6.0 + 0.1 * i as f64, 6.0 - 0.07 * i as f64]);
            labels.push(1);
        }
        ContinuousDataset::new(
            vec!["x".into(), "y".into()],
            vec!["neg".into(), "pos".into()],
            values,
            labels,
        )
        .unwrap()
    }

    #[test]
    fn separable_blobs_are_learned() {
        let d = blobs();
        let svm = Svm::fit(&d, SvmParams::default());
        for s in 0..d.n_samples() {
            assert_eq!(svm.predict(d.row(s)), d.label(s), "sample {s}");
        }
        assert_eq!(svm.predict(&[0.5, 0.5]), 0);
        assert_eq!(svm.predict(&[7.0, 7.0]), 1);
    }

    #[test]
    fn decision_sign_matches_prediction() {
        let d = blobs();
        let svm = Svm::fit(&d, SvmParams::default());
        assert!(svm.decision(&[0.5, 0.5]) < 0.0);
        assert!(svm.decision(&[7.0, 7.0]) > 0.0);
    }

    #[test]
    fn rbf_handles_nonlinear_boundary() {
        // Ring: class 1 inside radius 1, class 0 outside radius 2 — not
        // linearly separable, easy for RBF.
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..16 {
            let t = i as f64 * std::f64::consts::TAU / 16.0;
            values.push(vec![0.5 * t.cos(), 0.5 * t.sin()]);
            labels.push(1);
            values.push(vec![2.5 * t.cos(), 2.5 * t.sin()]);
            labels.push(0);
        }
        let d = ContinuousDataset::new(
            vec!["x".into(), "y".into()],
            vec!["out".into(), "in".into()],
            values,
            labels,
        )
        .unwrap();
        let svm = Svm::fit(&d, SvmParams { gamma: Some(1.0), ..SvmParams::default() });
        let correct = (0..d.n_samples()).filter(|&s| svm.predict(d.row(s)) == d.label(s)).count();
        assert!(correct >= d.n_samples() - 2, "{correct}/{}", d.n_samples());
        assert_eq!(svm.predict(&[0.0, 0.0]), 1);
        assert_eq!(svm.predict(&[3.0, 0.0]), 0);
    }

    #[test]
    fn multiclass_one_vs_one() {
        let d = ContinuousDataset::new(
            vec!["x".into()],
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![1.0],
                vec![1.2],
                vec![1.1],
                vec![5.0],
                vec![5.2],
                vec![5.1],
                vec![9.0],
                vec![9.2],
                vec![9.1],
            ],
            vec![0, 0, 0, 1, 1, 1, 2, 2, 2],
        )
        .unwrap();
        let svm = Svm::fit(&d, SvmParams { gamma: Some(0.5), ..SvmParams::default() });
        assert_eq!(svm.predict(&[1.05]), 0);
        assert_eq!(svm.predict(&[5.05]), 1);
        assert_eq!(svm.predict(&[9.05]), 2);
    }

    #[test]
    fn training_is_seed_deterministic() {
        let d = blobs();
        let a = Svm::fit(&d, SvmParams { seed: 11, ..SvmParams::default() });
        let b = Svm::fit(&d, SvmParams { seed: 11, ..SvmParams::default() });
        for s in 0..d.n_samples() {
            assert_eq!(a.predict(d.row(s)), b.predict(d.row(s)));
        }
    }

    #[test]
    fn default_gamma_is_one_over_p() {
        let d = blobs(); // p = 2
        let svm = Svm::fit(&d, SvmParams::default());
        // γ is stored inside the binary machine.
        assert!((svm.machines[0].gamma - 0.5).abs() < 1e-12);
    }
}
