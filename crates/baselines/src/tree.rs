//! C4.5-style decision trees on continuous features.
//!
//! The paper's §6.1 compares BSTC against "Weka 3.2 (C4.5 family single
//! tree, bagging, boosting)" and `randomForest`. This module provides the
//! shared tree learner: binary splits on continuous gene-expression
//! values, chosen by information gain ratio, with optional per-node random
//! feature subsampling (for forests) and per-sample weights (for
//! boosting).

use microarray::{ClassId, ContinuousDataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Tree hyper-parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum total sample weight a node needs to be split further.
    pub min_split: f64,
    /// If set, the number of random candidate features per split (random
    /// forests use √p); otherwise all features are considered.
    pub features_per_split: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 25, min_split: 2.0, features_per_split: None }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: ClassId,
    },
    Split {
        feature: usize,
        /// Goes left when `value < threshold`.
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted decision tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
}

impl DecisionTree {
    /// Fits a tree on (optionally weighted, optionally feature-subsampled)
    /// training data. `rng` is required iff `features_per_split` is set.
    pub fn fit(
        data: &ContinuousDataset,
        params: TreeParams,
        weights: Option<&[f64]>,
        mut rng: Option<&mut StdRng>,
    ) -> DecisionTree {
        let n = data.n_samples();
        let default_w = vec![1.0; n];
        let w = weights.unwrap_or(&default_w);
        assert_eq!(w.len(), n, "one weight per sample");
        let mut tree = DecisionTree { nodes: Vec::new(), n_classes: data.n_classes() };
        let idx: Vec<usize> = (0..n).collect();
        tree.build(data, params, w, idx, 0, &mut rng);
        tree
    }

    /// Predicts the class of one expression row.
    pub fn predict(&self, row: &[f64]) -> ClassId {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    at = if row[*feature] < *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Recursively builds the subtree over `idx`; returns the node index.
    fn build(
        &mut self,
        data: &ContinuousDataset,
        params: TreeParams,
        w: &[f64],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut Option<&mut StdRng>,
    ) -> usize {
        let majority = self.weighted_majority(data, w, &idx);
        let total_w: f64 = idx.iter().map(|&i| w[i]).sum();
        let pure = idx.iter().all(|&i| data.label(i) == data.label(idx[0]));
        if pure || depth >= params.max_depth || total_w < params.min_split {
            return self.push(Node::Leaf { class: majority });
        }

        let Some((feature, threshold)) = self.best_split(data, params, w, &idx, rng) else {
            return self.push(Node::Leaf { class: majority });
        };

        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| data.value(i, feature) < threshold);
        if li.is_empty() || ri.is_empty() {
            return self.push(Node::Leaf { class: majority });
        }

        // Reserve this node's slot before recursing so the root is node 0.
        let slot = self.push(Node::Leaf { class: majority });
        let left = self.build(data, params, w, li, depth + 1, rng);
        let right = self.build(data, params, w, ri, depth + 1, rng);
        self.nodes[slot] = Node::Split { feature, threshold, left, right };
        slot
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn weighted_majority(&self, data: &ContinuousDataset, w: &[f64], idx: &[usize]) -> ClassId {
        let mut hist = vec![0.0f64; self.n_classes];
        for &i in idx {
            hist[data.label(i)] += w[i];
        }
        hist.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c).unwrap_or(0)
    }

    /// Best (feature, threshold) by information gain ratio over the
    /// candidate features.
    fn best_split(
        &self,
        data: &ContinuousDataset,
        params: TreeParams,
        w: &[f64],
        idx: &[usize],
        rng: &mut Option<&mut StdRng>,
    ) -> Option<(usize, f64)> {
        let all: Vec<usize> = (0..data.n_genes()).collect();
        let candidates: Vec<usize> = match (params.features_per_split, rng.as_deref_mut()) {
            (Some(m), Some(rng)) => {
                let mut shuffled = all;
                shuffled.shuffle(rng);
                shuffled.truncate(m.max(1));
                shuffled
            }
            (Some(_), None) => panic!("features_per_split requires an RNG"),
            (None, _) => all,
        };

        let total_w: f64 = idx.iter().map(|&i| w[i]).sum();
        let parent = self.entropy_of(data, w, idx.iter().copied());
        let mut best: Option<(f64, usize, f64)> = None; // (gain ratio, feature, threshold)

        let mut total_hist = vec![0.0f64; self.n_classes];
        for &i in idx {
            total_hist[data.label(i)] += w[i];
        }

        let mut order: Vec<usize> = idx.to_vec();
        for &f in &candidates {
            order.sort_unstable_by(|&a, &b| data.value(a, f).total_cmp(&data.value(b, f)));
            // Sweep split positions, maintaining left-side class weights;
            // the right side is derived as total − left.
            let mut left_hist = vec![0.0f64; self.n_classes];
            let mut left_w = 0.0f64;
            for pos in 1..order.len() {
                let prev = order[pos - 1];
                left_hist[data.label(prev)] += w[prev];
                left_w += w[prev];
                let (va, vb) = (data.value(prev, f), data.value(order[pos], f));
                if va == vb {
                    continue;
                }
                let right_w = total_w - left_w;
                if left_w <= 0.0 || right_w <= 0.0 {
                    continue;
                }
                let right_hist: Vec<f64> =
                    total_hist.iter().zip(&left_hist).map(|(t, l)| t - l).collect();
                let h_left = entropy(&left_hist, left_w);
                let h_right = entropy(&right_hist, right_w);
                let gain = parent - (left_w * h_left + right_w * h_right) / total_w;
                // Zero-gain splits are allowed (XOR-like interactions have
                // no single informative split; the children's splits do
                // the separating). Negative gain is impossible up to
                // rounding; reject it.
                if gain < -1e-12 {
                    continue;
                }
                // C4.5 gain ratio: gain / split info.
                let pl = left_w / total_w;
                let pr = right_w / total_w;
                let split_info = -(pl * pl.log2() + pr * pr.log2());
                let ratio = if split_info > 0.0 { gain / split_info } else { gain };
                if best.is_none_or(|(b, _, _)| ratio > b) {
                    best = Some((ratio, f, (va + vb) / 2.0));
                }
            }
        }
        best.map(|(_, f, t)| (f, t))
    }

    fn entropy_of(
        &self,
        data: &ContinuousDataset,
        w: &[f64],
        idx: impl Iterator<Item = usize>,
    ) -> f64 {
        let mut hist = vec![0.0f64; self.n_classes];
        let mut total = 0.0;
        for i in idx {
            hist[data.label(i)] += w[i];
            total += w[i];
        }
        entropy(&hist, total)
    }
}

fn entropy(hist: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &c in hist {
        if c > 0.0 {
            let p = c / total;
            h -= p * p.log2();
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn xor_free_toy() -> ContinuousDataset {
        // Gene 0 separates classes at 5.0; gene 1 is noise.
        ContinuousDataset::new(
            vec!["gA".into(), "gB".into()],
            vec!["neg".into(), "pos".into()],
            vec![
                vec![1.0, 7.0],
                vec![2.0, 1.0],
                vec![3.0, 4.0],
                vec![2.5, 9.0],
                vec![8.0, 2.0],
                vec![9.0, 8.0],
                vec![7.5, 5.0],
                vec![8.2, 0.5],
            ],
            vec![0, 0, 0, 0, 1, 1, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn separable_data_is_learned_exactly() {
        let d = xor_free_toy();
        let tree = DecisionTree::fit(&d, TreeParams::default(), None, None);
        for s in 0..d.n_samples() {
            assert_eq!(tree.predict(d.row(s)), d.label(s));
        }
        // One split suffices.
        assert!(tree.depth() <= 2, "depth {}", tree.depth());
    }

    #[test]
    fn generalizes_to_nearby_points() {
        let d = xor_free_toy();
        let tree = DecisionTree::fit(&d, TreeParams::default(), None, None);
        assert_eq!(tree.predict(&[0.5, 5.0]), 0);
        assert_eq!(tree.predict(&[9.5, 5.0]), 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        let d = ContinuousDataset::new(
            vec!["x".into(), "y".into()],
            vec!["a".into(), "b".into()],
            vec![
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.1, 0.1],
                vec![0.9, 0.9],
                vec![0.1, 0.9],
                vec![0.9, 0.1],
            ],
            vec![0, 0, 1, 1, 0, 0, 1, 1],
        )
        .unwrap();
        let tree = DecisionTree::fit(&d, TreeParams::default(), None, None);
        for s in 0..d.n_samples() {
            assert_eq!(tree.predict(d.row(s)), d.label(s));
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn max_depth_zero_gives_majority_leaf() {
        let d = xor_free_toy();
        let params = TreeParams { max_depth: 0, ..TreeParams::default() };
        let tree = DecisionTree::fit(&d, params, None, None);
        assert_eq!(tree.n_nodes(), 1);
        // 4-4 tie: majority by max_by keeps the last max — any of the two
        // classes is fine, but it must be deterministic.
        let p1 = tree.predict(&[0.0, 0.0]);
        let p2 = tree.predict(&[100.0, 100.0]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn weights_steer_the_majority() {
        let d = xor_free_toy();
        let params = TreeParams { max_depth: 0, ..TreeParams::default() };
        // Class 1 samples get 10x weight.
        let w: Vec<f64> =
            (0..d.n_samples()).map(|i| if d.label(i) == 1 { 10.0 } else { 1.0 }).collect();
        let tree = DecisionTree::fit(&d, params, Some(&w), None);
        assert_eq!(tree.predict(&[0.0, 0.0]), 1);
    }

    #[test]
    fn zero_weight_samples_are_ignored_in_splits() {
        let d = xor_free_toy();
        // Zero out class 1 entirely: the tree sees only class 0.
        let w: Vec<f64> =
            (0..d.n_samples()).map(|i| if d.label(i) == 1 { 0.0 } else { 1.0 }).collect();
        let tree = DecisionTree::fit(&d, TreeParams::default(), Some(&w), None);
        assert_eq!(tree.predict(&[8.0, 2.0]), 0);
    }

    #[test]
    fn feature_subsampling_with_rng_is_deterministic() {
        use rand::SeedableRng;
        let d = xor_free_toy();
        let params = TreeParams { features_per_split: Some(1), ..TreeParams::default() };
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let t1 = DecisionTree::fit(&d, params, None, Some(&mut r1));
        let t2 = DecisionTree::fit(&d, params, None, Some(&mut r2));
        for s in 0..d.n_samples() {
            assert_eq!(t1.predict(d.row(s)), t2.predict(d.row(s)));
        }
    }

    #[test]
    #[should_panic(expected = "requires an RNG")]
    fn feature_subsampling_without_rng_panics() {
        let d = xor_free_toy();
        let params = TreeParams { features_per_split: Some(1), ..TreeParams::default() };
        DecisionTree::fit(&d, params, None, None);
    }

    #[test]
    fn three_class_tree() {
        let d = ContinuousDataset::new(
            vec!["x".into()],
            vec!["a".into(), "b".into(), "c".into()],
            vec![vec![1.0], vec![1.2], vec![5.0], vec![5.5], vec![9.0], vec![9.5]],
            vec![0, 0, 1, 1, 2, 2],
        )
        .unwrap();
        let tree = DecisionTree::fit(&d, TreeParams::default(), None, None);
        assert_eq!(tree.predict(&[0.9]), 0);
        assert_eq!(tree.predict(&[5.2]), 1);
        assert_eq!(tree.predict(&[10.0]), 2);
    }
}
