//! # baselines — non-rule classifiers the paper compares against
//!
//! §6.1 of the BSTC paper benchmarks against SVM (`e1071`, radial kernel),
//! `randomForest` 4.5, and the Weka 3.2 C4.5 family (single tree, bagging,
//! boosting). All are reimplemented here from scratch on the continuous
//! expression representation (the paper runs them "with their original
//! undiscretized gene expression values" restricted to the genes the
//! entropy discretization selected):
//!
//! * [`tree`] — C4.5-style decision trees (gain ratio, continuous splits,
//!   sample weights, per-node feature subsampling);
//! * [`ensemble`] — bagging and AdaBoost/SAMME;
//! * [`forest`] — random forests (bootstrap + √p features per split);
//! * [`svm`] — RBF-kernel SVM trained with simplified SMO, one-vs-one for
//!   multi-class.
//!
//! The [`ContinuousClassifier`] trait unifies prediction for the
//! evaluation harness.
//!
//! ```
//! use baselines::{ContinuousClassifier, DecisionTree, TreeParams};
//! use microarray::ContinuousDataset;
//!
//! let data = ContinuousDataset::new(
//!     vec!["g".into()],
//!     vec!["low".into(), "high".into()],
//!     vec![vec![1.0], vec![1.2], vec![9.0], vec![9.3]],
//!     vec![0, 0, 1, 1],
//! ).unwrap();
//! let tree = DecisionTree::fit(&data, TreeParams::default(), None, None);
//! assert_eq!(tree.predict(&[0.8]), 0);
//! assert_eq!(tree.predict(&[9.9]), 1);
//! ```

#![warn(missing_docs)]

pub mod ensemble;
pub mod forest;
pub mod svm;
pub mod tree;

pub use ensemble::{AdaBoost, Bagging};
pub use forest::{ForestParams, RandomForest};
pub use svm::{Svm, SvmParams};
pub use tree::{DecisionTree, TreeParams};

use microarray::{ClassId, ContinuousDataset};

/// Anything that classifies a continuous expression row.
pub trait ContinuousClassifier {
    /// Predicts the class of one expression row.
    fn predict(&self, row: &[f64]) -> ClassId;

    /// Predicts every sample of a dataset.
    fn predict_all(&self, data: &ContinuousDataset) -> Vec<ClassId> {
        (0..data.n_samples()).map(|s| self.predict(data.row(s))).collect()
    }
}

impl ContinuousClassifier for DecisionTree {
    fn predict(&self, row: &[f64]) -> ClassId {
        DecisionTree::predict(self, row)
    }
}

impl ContinuousClassifier for Bagging {
    fn predict(&self, row: &[f64]) -> ClassId {
        Bagging::predict(self, row)
    }
}

impl ContinuousClassifier for AdaBoost {
    fn predict(&self, row: &[f64]) -> ClassId {
        AdaBoost::predict(self, row)
    }
}

impl ContinuousClassifier for RandomForest {
    fn predict(&self, row: &[f64]) -> ClassId {
        RandomForest::predict(self, row)
    }
}

impl ContinuousClassifier for Svm {
    fn predict(&self, row: &[f64]) -> ClassId {
        Svm::predict(self, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_work() {
        let d = ContinuousDataset::new(
            vec!["x".into()],
            vec!["a".into(), "b".into()],
            vec![vec![1.0], vec![1.1], vec![9.0], vec![9.1]],
            vec![0, 0, 1, 1],
        )
        .unwrap();
        let classifiers: Vec<Box<dyn ContinuousClassifier>> = vec![
            Box::new(DecisionTree::fit(&d, TreeParams::default(), None, None)),
            Box::new(Bagging::fit(&d, 10, TreeParams::default(), 0)),
            Box::new(AdaBoost::fit(&d, 10, 2, 0)),
            Box::new(RandomForest::fit(&d, ForestParams { n_trees: 10, ..Default::default() })),
            Box::new(Svm::fit(&d, SvmParams { gamma: Some(0.5), ..Default::default() })),
        ];
        for c in &classifiers {
            let preds = c.predict_all(&d);
            assert_eq!(preds, vec![0, 0, 1, 1]);
        }
    }
}
