//! Property tests for the baseline classifiers: totality, determinism,
//! valid outputs, and learnability of separable data.

use baselines::{
    AdaBoost, Bagging, ContinuousClassifier, DecisionTree, ForestParams, RandomForest, Svm,
    SvmParams, TreeParams,
};
use microarray::ContinuousDataset;
use proptest::prelude::*;

/// Random small continuous dataset: 2–3 classes, every class non-empty.
fn dataset() -> impl Strategy<Value = ContinuousDataset> {
    (2usize..4, 1usize..5, 4usize..16).prop_flat_map(|(n_classes, n_genes, extra)| {
        let n = n_classes + extra;
        (
            prop::collection::vec(prop::collection::vec(-100.0f64..100.0, n_genes), n),
            prop::collection::vec(0..n_classes, n - n_classes),
        )
            .prop_map(move |(values, tail)| {
                let mut labels: Vec<usize> = (0..n_classes).collect();
                labels.extend(tail);
                ContinuousDataset::new(
                    (0..n_genes).map(|g| format!("g{g}")).collect(),
                    (0..n_classes).map(|c| format!("c{c}")).collect(),
                    values,
                    labels,
                )
                .unwrap()
            })
    })
}

/// A linearly-separable 1-D dataset: class = value sign, margins wide.
fn separable() -> impl Strategy<Value = ContinuousDataset> {
    (3usize..10, 3usize..10).prop_map(|(a, b)| {
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..a {
            values.push(vec![-10.0 - i as f64]);
            labels.push(0);
        }
        for i in 0..b {
            values.push(vec![10.0 + i as f64]);
            labels.push(1);
        }
        ContinuousDataset::new(vec!["x".into()], vec!["neg".into(), "pos".into()], values, labels)
            .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All classifiers produce a valid class for any row, deterministically.
    #[test]
    fn predictions_are_valid_and_deterministic(d in dataset(),
                                               probe in prop::collection::vec(-200.0f64..200.0, 1..5)) {
        let row: Vec<f64> = (0..d.n_genes()).map(|g| probe[g % probe.len()]).collect();
        let classifiers: Vec<Box<dyn ContinuousClassifier>> = vec![
            Box::new(DecisionTree::fit(&d, TreeParams::default(), None, None)),
            Box::new(Bagging::fit(&d, 5, TreeParams::default(), 3)),
            Box::new(AdaBoost::fit(&d, 5, 2, 3)),
            Box::new(RandomForest::fit(
                &d, ForestParams { n_trees: 5, seed: 3, ..Default::default() })),
            Box::new(Svm::fit(&d, SvmParams { max_passes: 2, ..Default::default() })),
        ];
        for c in &classifiers {
            let p1 = c.predict(&row);
            let p2 = c.predict(&row);
            prop_assert_eq!(p1, p2);
            prop_assert!(p1 < d.n_classes());
        }
    }

    /// Everything learns a wide-margin separable problem perfectly on the
    /// training data.
    #[test]
    fn separable_data_is_fit_by_everything(d in separable()) {
        let classifiers: Vec<(&str, Box<dyn ContinuousClassifier>)> = vec![
            ("tree", Box::new(DecisionTree::fit(&d, TreeParams::default(), None, None))),
            ("bagging", Box::new(Bagging::fit(&d, 15, TreeParams::default(), 1))),
            ("boost", Box::new(AdaBoost::fit(&d, 10, 2, 1))),
            ("forest", Box::new(RandomForest::fit(
                &d, ForestParams { n_trees: 15, seed: 1, ..Default::default() }))),
            ("svm", Box::new(Svm::fit(&d, SvmParams { gamma: Some(0.05), ..Default::default() }))),
        ];
        for (name, c) in &classifiers {
            let preds = c.predict_all(&d);
            let correct = preds.iter().zip(d.labels()).filter(|(p, t)| p == t).count();
            prop_assert_eq!(correct, d.n_samples(), "{} misfit separable data", name);
        }
    }

    /// Trees never predict a class absent from their training data.
    #[test]
    fn tree_predicts_only_seen_classes(d in dataset(),
                                       x in prop::collection::vec(-1000.0f64..1000.0, 1..5)) {
        let tree = DecisionTree::fit(&d, TreeParams::default(), None, None);
        let row: Vec<f64> = (0..d.n_genes()).map(|g| x[g % x.len()]).collect();
        let p = tree.predict(&row);
        prop_assert!(d.labels().contains(&p), "class {p} never seen in training");
    }

    /// Weighted training: zeroing a class's weights removes it from the
    /// tree's predictions.
    #[test]
    fn zero_weight_class_never_predicted(d in dataset()) {
        let victim = d.label(0);
        let w: Vec<f64> = (0..d.n_samples())
            .map(|s| if d.label(s) == victim { 0.0 } else { 1.0 })
            .collect();
        if w.iter().all(|&x| x == 0.0) { return Ok(()); }
        let tree = DecisionTree::fit(&d, TreeParams::default(), Some(&w), None);
        for s in 0..d.n_samples() {
            prop_assert_ne!(tree.predict(d.row(s)), victim);
        }
    }
}
