//! # bench-suite — experiment binaries and benchmarks
//!
//! One binary per paper table/figure (see DESIGN.md §3) plus Criterion
//! micro-benchmarks. This library holds what they share: command-line
//! options, the quick/full dataset scaling, the per-test record type, and
//! the common cross-validation engine.

#![warn(missing_docs)]

pub mod experiment;
pub mod opts;
pub mod scale;
pub mod study;

pub use experiment::{
    render_accuracy_table, render_boxplots, render_runtime_table, run_grid, summarize, CellSummary,
    TestRecord,
};
pub use opts::Opts;
pub use scale::{scaled_clinical_counts, scaled_config, DatasetKind};
pub use study::{cv_study, Study};
