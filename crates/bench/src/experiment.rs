//! The shared cross-validation experiment engine behind Tables 4–7 and
//! Figures 4–7: run every (cell, replicate) of a dataset's grid, recording
//! BSTC accuracy/time and (optionally) Top-k/RCBT times, DNFs, and
//! accuracy.

use eval::{run_bstc, run_rcbt, BoxplotStats, CvCell, Prepared, RcbtRun};
use microarray::synth::SynthConfig;
use rulemine::RcbtParams;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One classification test's measurements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TestRecord {
    /// Cell label (e.g. `"60%"` or `"1-52/0-50"`).
    pub cell: String,
    /// Replicate index within the cell.
    pub rep: usize,
    /// Genes surviving discretization.
    pub genes: usize,
    /// BSTC accuracy.
    pub bstc_acc: f64,
    /// BSTC build+classify seconds.
    pub bstc_secs: f64,
    /// RCBT pipeline measurements (absent when the baseline was skipped).
    pub rcbt: Option<RcbtRun>,
}

/// Per-cell aggregation of [`TestRecord`]s.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellSummary {
    /// Cell label.
    pub cell: String,
    /// Replicates run.
    pub reps: usize,
    /// BSTC accuracy distribution (the Figures 4–7 boxplots).
    pub bstc_acc: BoxplotStats,
    /// Mean BSTC seconds.
    pub bstc_secs_mean: f64,
    /// RCBT accuracy distribution over *finished* tests, if any ran.
    pub rcbt_acc: Option<BoxplotStats>,
    /// BSTC mean accuracy over only the tests RCBT finished (the paper's
    /// Tables 5 and 7 average both classifiers over those tests).
    pub bstc_acc_where_rcbt_finished: Option<f64>,
    /// Mean Top-k phase seconds ("≥" lower bound when any test DNF'd).
    pub topk_secs_mean: f64,
    /// Tests where Top-k hit its cutoff.
    pub topk_dnf: usize,
    /// Mean RCBT phase seconds.
    pub rcbt_secs_mean: f64,
    /// Tests where RCBT (lower-bound mining) hit its cutoff, over the
    /// tests Top-k finished — the paper's "# RCBT DNF" column.
    pub rcbt_dnf: usize,
    /// Tests Top-k finished (the denominator of "# RCBT DNF x/y").
    pub topk_finished: usize,
}

/// Runs the whole grid. When `rcbt` is `Some`, each test also runs the
/// Top-k + RCBT pipeline under `cutoff` per phase; `nl_drop` maps a cell
/// label to a reduced `nl` (the paper lowers nl to 2 on the † cells).
pub fn run_grid(
    config: &SynthConfig,
    cells: &[CvCell],
    rcbt: Option<RcbtParams>,
    cutoff: Duration,
    nl_drop: &dyn Fn(&str) -> Option<usize>,
) -> (Vec<TestRecord>, Vec<CellSummary>) {
    let data = config.generate();
    let mut records: Vec<TestRecord> = Vec::new();

    for cell in cells {
        let label = cell.spec.label();
        let params = rcbt.map(|mut p| {
            if let Some(nl) = nl_drop(&label) {
                p.nl = nl;
            }
            p
        });
        let cell_records = eval::run_cell(&data, cell, |rep, p: &Prepared| {
            let b = run_bstc(p);
            let r = params.map(|params| run_rcbt(p, params, cutoff, cutoff));
            TestRecord {
                cell: label.clone(),
                rep,
                genes: p.genes_after_discretization,
                bstc_acc: b.accuracy,
                bstc_secs: b.secs,
                rcbt: r,
            }
        });
        records.extend(cell_records.into_iter().flatten());
    }

    let summaries = cells.iter().map(|c| summarize(&records, &c.spec.label())).collect();
    (records, summaries)
}

/// Aggregates one cell's records.
pub fn summarize(records: &[TestRecord], cell: &str) -> CellSummary {
    let rs: Vec<&TestRecord> = records.iter().filter(|r| r.cell == cell).collect();
    assert!(!rs.is_empty(), "no records for cell {cell}");
    let bstc_accs: Vec<f64> = rs.iter().map(|r| r.bstc_acc).collect();
    let bstc_secs: Vec<f64> = rs.iter().map(|r| r.bstc_secs).collect();

    let rcbt_runs: Vec<&RcbtRun> = rs.iter().filter_map(|r| r.rcbt.as_ref()).collect();
    let finished_accs: Vec<f64> = rcbt_runs.iter().filter_map(|r| r.accuracy).collect();
    let bstc_where_finished: Vec<f64> = rs
        .iter()
        .filter(|r| r.rcbt.as_ref().is_some_and(|x| x.accuracy.is_some()))
        .map(|r| r.bstc_acc)
        .collect();
    let topk_finished = rcbt_runs.iter().filter(|r| !r.topk_dnf).count();

    CellSummary {
        cell: cell.to_string(),
        reps: rs.len(),
        bstc_acc: BoxplotStats::compute(&bstc_accs),
        bstc_secs_mean: eval::mean(&bstc_secs),
        rcbt_acc: if finished_accs.is_empty() {
            None
        } else {
            Some(BoxplotStats::compute(&finished_accs))
        },
        bstc_acc_where_rcbt_finished: if bstc_where_finished.is_empty() {
            None
        } else {
            Some(eval::mean(&bstc_where_finished))
        },
        topk_secs_mean: eval::mean(&rcbt_runs.iter().map(|r| r.topk_secs).collect::<Vec<_>>()),
        topk_dnf: rcbt_runs.iter().filter(|r| r.topk_dnf).count(),
        rcbt_secs_mean: eval::mean(
            &rcbt_runs.iter().filter(|r| !r.topk_dnf).map(|r| r.rcbt_secs).collect::<Vec<_>>(),
        ),
        rcbt_dnf: rcbt_runs.iter().filter(|r| !r.topk_dnf && r.rcbt_dnf).count(),
        topk_finished,
    }
}

/// Renders the Tables 4/6 runtime block for a dataset.
pub fn render_runtime_table(summaries: &[CellSummary], nl_note: &dyn Fn(&str) -> bool) -> String {
    let mut t = eval::TextTable::new(vec!["Training", "BSTC", "Top-k", "RCBT", "# RCBT DNF"]);
    for s in summaries {
        let dagger = if nl_note(&s.cell) { " \u{2020}" } else { "" };
        t.row(vec![
            s.cell.clone(),
            format!("{:.2}", s.bstc_secs_mean),
            eval::fmt_runtime(s.topk_secs_mean, s.topk_dnf > 0),
            format!("{}{}", eval::fmt_runtime(s.rcbt_secs_mean, s.rcbt_dnf > 0), dagger),
            format!("{}/{}{}", s.rcbt_dnf, s.topk_finished, dagger),
        ]);
    }
    t.render()
}

/// Renders the Tables 5/7 accuracy block (means over RCBT-finished tests).
pub fn render_accuracy_table(summaries: &[CellSummary]) -> String {
    let mut t = eval::TextTable::new(vec!["Training", "BSTC", "RCBT"]);
    for s in summaries {
        t.row(vec![
            s.cell.clone(),
            eval::fmt_accuracy(s.bstc_acc_where_rcbt_finished.or(Some(s.bstc_acc.mean))),
            eval::fmt_accuracy(s.rcbt_acc.as_ref().map(|b| b.mean)),
        ]);
    }
    t.render()
}

/// Renders a Figures 4–7 boxplot block: per cell, the BSTC and (where
/// available) RCBT accuracy distributions, each with an ASCII boxplot on
/// a fixed 0.5–1.0 accuracy scale.
pub fn render_boxplots(summaries: &[CellSummary]) -> String {
    const W: usize = 44;
    let scale = |b: &eval::BoxplotStats| b.render_ascii(0.5, 1.0, W);
    let mut out = String::new();
    out.push_str(&format!("{:>18}0.5{:^w$}1.0\n", "", "accuracy", w = W - 2));
    for s in summaries {
        out.push_str(&format!(
            "[{:>10}] BSTC  {}  {}\n",
            s.cell,
            scale(&s.bstc_acc),
            s.bstc_acc.render()
        ));
        match &s.rcbt_acc {
            Some(b) if b.n == s.reps => {
                out.push_str(&format!("[{:>10}] RCBT  {}  {}\n", s.cell, scale(b), b.render()));
            }
            Some(b) => {
                out.push_str(&format!(
                    "[{:>10}] RCBT  (only {}/{} tests finished; boxplot omitted as in the paper)\n",
                    s.cell, b.n, s.reps
                ));
            }
            None => {
                out.push_str(&format!("[{:>10}] RCBT  (no test finished within cutoff)\n", s.cell));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cell: &str, rep: usize, acc: f64, rcbt: Option<RcbtRun>) -> TestRecord {
        TestRecord { cell: cell.into(), rep, genes: 10, bstc_acc: acc, bstc_secs: 0.5, rcbt }
    }

    fn rcbt(acc: Option<f64>, topk_dnf: bool, rcbt_dnf: bool) -> RcbtRun {
        RcbtRun { accuracy: acc, topk_secs: 1.0, topk_dnf, rcbt_secs: 2.0, rcbt_dnf }
    }

    #[test]
    fn summarize_counts_dnfs_like_the_paper() {
        let records = vec![
            record("60%", 0, 0.9, Some(rcbt(Some(0.8), false, false))),
            record("60%", 1, 0.7, Some(rcbt(None, false, true))),
            record("60%", 2, 0.8, Some(rcbt(None, true, true))),
        ];
        let s = summarize(&records, "60%");
        assert_eq!(s.reps, 3);
        assert_eq!(s.topk_dnf, 1);
        assert_eq!(s.topk_finished, 2);
        // rcbt_dnf counts only tests where Top-k finished: rep 1.
        assert_eq!(s.rcbt_dnf, 1);
        // RCBT accuracy over finished tests only.
        assert_eq!(s.rcbt_acc.as_ref().unwrap().n, 1);
        assert_eq!(s.bstc_acc_where_rcbt_finished, Some(0.9));
        assert_eq!(s.bstc_acc.n, 3);
    }

    #[test]
    fn runtime_table_marks_dnf_and_dagger() {
        let records = vec![
            record("80%", 0, 0.9, Some(rcbt(None, false, true))),
            record("80%", 1, 0.9, Some(rcbt(None, false, true))),
        ];
        let s = vec![summarize(&records, "80%")];
        let table = render_runtime_table(&s, &|cell| cell == "80%");
        assert!(table.contains(">="), "{table}");
        assert!(table.contains('\u{2020}'), "{table}");
        assert!(table.contains("2/2"), "{table}");
    }

    #[test]
    fn accuracy_table_dashes_unfinished() {
        let records = vec![record("40%", 0, 0.75, Some(rcbt(None, true, true)))];
        let s = vec![summarize(&records, "40%")];
        let table = render_accuracy_table(&s);
        assert!(table.contains('-'), "{table}");
        assert!(table.contains("75.00%"), "{table}");
    }

    #[test]
    fn boxplot_block_omits_partial_rcbt() {
        let records = vec![
            record("60%", 0, 0.9, Some(rcbt(Some(0.8), false, false))),
            record("60%", 1, 0.7, Some(rcbt(None, false, true))),
        ];
        let s = vec![summarize(&records, "60%")];
        let block = render_boxplots(&s);
        assert!(block.contains("med="), "{block}");
        assert!(block.contains("] BSTC"), "{block}");
        assert!(block.contains("only 1/2 tests finished"), "{block}");
    }

    #[test]
    fn grid_runs_end_to_end_quick() {
        let config = microarray::synth::SynthConfig {
            name: "grid-test".into(),
            n_genes: 60,
            class_sizes: vec![10, 12],
            class_names: vec!["c0".into(), "c1".into()],
            markers_per_class: 8,
            marker_shift: 2.2,
            marker_dropout: 0.1,
            marker_modules: 0,
            wobble_rate: 0.0,
            marker_flip: 0.0,
            atypical_rate: 0.0,
            atypical_strength: 0.3,
            seed: 5,
        };
        let cells = vec![CvCell { spec: eval::SplitSpec::Fraction(0.6), reps: 2, base_seed: 1 }];
        let (records, summaries) = run_grid(
            &config,
            &cells,
            Some(RcbtParams { k: 3, nl: 3, minsup: 0.7 }),
            Duration::from_secs(5),
            &|_| None,
        );
        assert_eq!(records.len(), 2);
        assert_eq!(summaries.len(), 1);
        assert!(summaries[0].bstc_acc.mean > 0.4);
    }
}
