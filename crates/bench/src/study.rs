//! One-call per-dataset studies: the §6.2 grid (40/60/80 % + 1-x/0-y,
//! 25 tests each) with optional Top-k/RCBT baselines, JSON artifacts, and
//! the paper's nl-lowering footnote behaviour.

use crate::experiment::{run_grid, CellSummary, TestRecord};
use crate::opts::Opts;
use crate::scale::{scaled_clinical_counts, scaled_config, DatasetKind};
use eval::CvCell;
use rulemine::RcbtParams;

/// Result bundle of [`cv_study`].
pub struct Study {
    /// Every test's measurements.
    pub records: Vec<TestRecord>,
    /// Per-cell aggregates in grid order.
    pub summaries: Vec<CellSummary>,
    /// The dataset generator config used.
    pub config: microarray::synth::SynthConfig,
    /// Cell labels where `nl` was lowered to 2 (the † cells).
    pub nl_dropped: Vec<String>,
}

/// Cells where the paper lowered `nl` from 20 to 2 after RCBT failed to
/// finish: PC and OC at 80 % and the 1-x/0-y size (Tables 4 and 6).
fn nl_drop_cells(kind: DatasetKind, cells: &[CvCell]) -> Vec<String> {
    match kind {
        DatasetKind::Prostate | DatasetKind::Ovarian => cells
            .iter()
            .map(|c| c.spec.label())
            .filter(|l| l == "80%" || l.starts_with("1-"))
            .collect(),
        _ => Vec::new(),
    }
}

/// Runs the full cross-validation study for one dataset and writes the raw
/// records to `<out>/<tag>.json`.
pub fn cv_study(kind: DatasetKind, opts: &Opts, with_rcbt: bool, tag: &str) -> Study {
    let config = scaled_config(kind, opts.full, opts.seed);
    let counts = scaled_clinical_counts(kind, opts.full);
    let cells = CvCell::paper_grid(counts, opts.reps, opts.seed);
    let dropped = nl_drop_cells(kind, &cells);

    eprintln!(
        "# {} — {} genes, {:?} samples/class, {} reps/cell, cutoff {:?}{}",
        config.name,
        config.n_genes,
        config.class_sizes,
        opts.reps,
        opts.cutoff,
        if opts.full { " [FULL]" } else { " [quick; pass --full for paper scale]" }
    );

    let rcbt = with_rcbt.then(RcbtParams::default);
    let dropped_ref = &dropped;
    let (records, summaries) = run_grid(&config, &cells, rcbt, opts.cutoff, &|label| {
        dropped_ref.iter().any(|l| l == label).then_some(2)
    });

    let json_path = opts.out_dir.join(format!("{tag}.json"));
    if let Err(e) = eval::write_json(&json_path, &records) {
        eprintln!("warning: could not write {}: {e}", json_path.display());
    } else {
        eprintln!("# raw records -> {}", json_path.display());
    }

    Study { records, summaries, config, nl_dropped: dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nl_drop_only_on_pc_oc_large_cells() {
        let cells = CvCell::paper_grid(vec![5, 6], 2, 1);
        assert!(nl_drop_cells(DatasetKind::AllAml, &cells).is_empty());
        assert!(nl_drop_cells(DatasetKind::Lung, &cells).is_empty());
        let pc = nl_drop_cells(DatasetKind::Prostate, &cells);
        assert_eq!(pc, vec!["80%".to_string(), "1-6/0-5".to_string()]);
    }
}
