//! Quick-mode scaling of the paper's dataset presets.
//!
//! `--full` reproduces the Table 2 shapes exactly (and the 2-hour
//! cutoffs — budget days, like the paper's ~11 days for the PC study).
//! Quick mode keeps enough samples for the exponential-vs-polynomial
//! dynamics to show while genes shrink ~10×, so a whole study runs in
//! minutes on a laptop.

use microarray::synth::{presets, SynthConfig};

/// The four paper datasets (Table 2 order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// ALL/AML leukemia.
    AllAml,
    /// Lung cancer (MPM vs ADCA).
    Lung,
    /// Prostate cancer (tumor vs normal).
    Prostate,
    /// Ovarian cancer (tumor vs normal).
    Ovarian,
}

impl DatasetKind {
    /// Short name used in table headers ("ALL", "LC", "PC", "OC").
    pub fn short(self) -> &'static str {
        match self {
            DatasetKind::AllAml => "ALL",
            DatasetKind::Lung => "LC",
            DatasetKind::Prostate => "PC",
            DatasetKind::Ovarian => "OC",
        }
    }

    /// The paper's clinically-determined training counts
    /// `[class0, class1]` (Table 3).
    pub fn clinical_train_counts(self) -> Vec<usize> {
        match self {
            DatasetKind::AllAml => vec![11, 27],
            DatasetKind::Lung => vec![16, 16],
            DatasetKind::Prostate => vec![50, 52],
            DatasetKind::Ovarian => vec![77, 133],
        }
    }

    /// Full paper-scale generator config.
    pub fn full_config(self, seed: u64) -> SynthConfig {
        match self {
            DatasetKind::AllAml => presets::all_aml(seed),
            DatasetKind::Lung => presets::lung(seed),
            DatasetKind::Prostate => presets::prostate(seed),
            DatasetKind::Ovarian => presets::ovarian(seed),
        }
    }

    /// Quick-mode config: samples cut to a third (calibrated so the
    /// exponential miners' DNF crossover lands *inside* the 40–80 % grid,
    /// as it does at paper scale with 2-hour cutoffs), genes and markers
    /// cut ~10×.
    pub fn quick_config(self, seed: u64) -> SynthConfig {
        let full = self.full_config(seed);
        let d = self.quick_sample_divisor();
        SynthConfig {
            name: format!("{} (quick)", full.name),
            n_genes: (full.n_genes / 10).max(16),
            class_sizes: full.class_sizes.iter().map(|&s| (s / d).max(6)).collect(),
            markers_per_class: (full.markers_per_class / 10).max(4),
            ..full
        }
    }

    /// Per-dataset quick-mode sample divisor. OC (the largest dataset,
    /// where even Top-k DNFs in the paper) shrinks more than the others so
    /// each dataset's DNF crossover stays in the same grid cell it
    /// occupies at paper scale.
    fn quick_sample_divisor(self) -> usize {
        match self {
            DatasetKind::Ovarian => 3,
            _ => 2,
        }
    }

    /// Quick-mode clinical training counts (scaled with the samples).
    pub fn quick_clinical_train_counts(self) -> Vec<usize> {
        let d = self.quick_sample_divisor();
        self.clinical_train_counts().iter().map(|&c| (c / d).max(3)).collect()
    }

    /// All four datasets in Table 2 order.
    pub fn all() -> [DatasetKind; 4] {
        [DatasetKind::AllAml, DatasetKind::Lung, DatasetKind::Prostate, DatasetKind::Ovarian]
    }
}

/// Config for `kind` under the chosen mode.
pub fn scaled_config(kind: DatasetKind, full: bool, seed: u64) -> SynthConfig {
    if full {
        kind.full_config(seed)
    } else {
        kind.quick_config(seed)
    }
}

/// Clinical training counts for `kind` under the chosen mode.
pub fn scaled_clinical_counts(kind: DatasetKind, full: bool) -> Vec<usize> {
    if full {
        kind.clinical_train_counts()
    } else {
        kind.quick_clinical_train_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_configs_match_table2() {
        assert_eq!(DatasetKind::Ovarian.full_config(1).n_genes, 15154);
        assert_eq!(DatasetKind::Prostate.full_config(1).class_sizes, vec![59, 77]);
    }

    #[test]
    fn quick_configs_shrink_but_validate() {
        for kind in DatasetKind::all() {
            let q = kind.quick_config(3);
            q.validate().unwrap();
            let f = kind.full_config(3);
            assert!(q.n_genes < f.n_genes);
            assert!(q.n_samples() < f.n_samples());
        }
    }

    #[test]
    fn clinical_counts_fit_class_sizes() {
        for kind in DatasetKind::all() {
            for full in [false, true] {
                let cfg = scaled_config(kind, full, 1);
                let counts = scaled_clinical_counts(kind, full);
                for (c, (&want, &have)) in counts.iter().zip(&cfg.class_sizes).enumerate() {
                    assert!(
                        want < have,
                        "{:?} full={} class {}: train {} !< size {}",
                        kind,
                        full,
                        c,
                        want,
                        have
                    );
                }
            }
        }
    }

    #[test]
    fn short_names() {
        let names: Vec<&str> = DatasetKind::all().iter().map(|k| k.short()).collect();
        assert_eq!(names, vec!["ALL", "LC", "PC", "OC"]);
    }
}
