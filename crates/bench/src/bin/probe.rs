//! Diagnostics: sweep training fractions on one dataset and report each
//! phase's time/DNF — the quickest way to see where the paper's
//! polynomial-vs-exponential crossover lands for a given configuration.
//!
//! Usage: `probe [--full] [--cutoff SECS] [--seed N] [ALL|LC|PC|OC]`

use bench_suite::{scaled_config, DatasetKind, Opts};
use eval::{draw_split, SplitSpec};
use rulemine::TopkParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = args
        .iter()
        .find_map(|a| match a.as_str() {
            "ALL" => Some(DatasetKind::AllAml),
            "LC" => Some(DatasetKind::Lung),
            "PC" => Some(DatasetKind::Prostate),
            "OC" => Some(DatasetKind::Ovarian),
            _ => None,
        })
        .unwrap_or(DatasetKind::Ovarian);
    let opts = Opts::parse_from(
        args.into_iter().filter(|a| !matches!(a.as_str(), "ALL" | "LC" | "PC" | "OC")),
    );

    let cfg = scaled_config(kind, opts.full, opts.seed);
    eprintln!("# {} — cutoff {:?}", cfg.name, opts.cutoff);
    let data = cfg.generate();

    let mut t = eval::TextTable::new(vec![
        "Training",
        "train samples",
        "genes",
        "BSTC",
        "Top-k",
        "RCBT",
        "topk groups",
    ]);
    for frac in [0.2, 0.4, 0.6, 0.8] {
        let split =
            draw_split(data.labels(), data.n_classes(), &SplitSpec::Fraction(frac), opts.seed);
        let p = eval::prepare(&data, &split).expect("informative genes");
        let bstc = eval::run_bstc(&p);
        let topk = eval::run_topk(&p, TopkParams::default(), opts.cutoff);
        let rcbt = eval::run_rcbt(&p, rulemine::RcbtParams::default(), opts.cutoff, opts.cutoff);
        t.row(vec![
            format!("{:.0}%", frac * 100.0),
            split.train.len().to_string(),
            p.genes_after_discretization.to_string(),
            format!("{:.2}", bstc.secs),
            eval::fmt_runtime(topk.secs, topk.dnf),
            eval::fmt_runtime(rcbt.rcbt_secs, rcbt.rcbt_dnf || rcbt.topk_dnf),
            topk.n_groups.to_string(),
        ]);
        println!("{}", t.render());
    }
}
