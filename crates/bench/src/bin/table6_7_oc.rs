//! Tables 6 and 7 — Ovarian Cancer runtimes and mean accuracies (same
//! protocol as Tables 4/5; OC is the dataset where even Top-k mining
//! starts to DNF at 80 % training).

use bench_suite::{cv_study, render_accuracy_table, render_runtime_table, DatasetKind, Opts};

fn main() {
    let opts = Opts::parse();
    let study = cv_study(DatasetKind::Ovarian, &opts, true, "table6_7_oc");

    println!(
        "Table 6: Average Run Times for the OC Tests (in seconds). \
         Cutoff {:?}; \u{2020} = nl lowered to 2.",
        opts.cutoff
    );
    let dropped = study.nl_dropped.clone();
    println!(
        "{}",
        render_runtime_table(&study.summaries, &|cell| dropped.iter().any(|l| l == cell))
    );

    println!("Table 7: Mean Accuracies for the OC Tests that RCBT Finished.");
    println!("{}", render_accuracy_table(&study.summaries));
}
