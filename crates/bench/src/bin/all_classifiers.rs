//! Extended preliminary comparison: every classifier in the workspace on
//! the four datasets' clinical splits — the §6.1 table widened with the
//! classifiers the paper only *quotes* (CBA) or *sketches* (the §4.2
//! (MC)²BAR classifier), plus per-dataset confusion diagnostics for the
//! paper's "all errors in the same direction" observation on ALL/AML.

use bench_suite::{scaled_clinical_counts, scaled_config, DatasetKind, Opts};
use eval::{draw_split, ConfusionMatrix, SplitSpec};

fn main() {
    let opts = Opts::parse();
    let mut t = eval::TextTable::new(vec![
        "Dataset",
        "BSTC",
        "MC2BAR(k=3)",
        "RCBT",
        "CBA",
        "SVM",
        "forest",
    ]);

    for kind in DatasetKind::all() {
        let cfg = scaled_config(kind, opts.full, opts.seed);
        let counts = scaled_clinical_counts(kind, opts.full);
        eprintln!("# {} …", cfg.name);
        let data = cfg.generate();
        let split =
            draw_split(data.labels(), data.n_classes(), &SplitSpec::FixedCounts(counts), opts.seed);
        let p = eval::prepare(&data, &split).expect("informative genes");

        let bstc = eval::run_bstc(&p);
        let mc2 = eval::run_mc2(&p, 3);
        let rcbt = eval::run_rcbt(&p, rulemine::RcbtParams::default(), opts.cutoff, opts.cutoff);
        let cba = eval::run_cba(&p, rulemine::CbaParams::default(), opts.cutoff);
        let base = eval::run_baselines(
            &p,
            eval::BaselineParams { forest_trees: 100, seed: opts.seed, ..Default::default() },
        );

        t.row(vec![
            kind.short().to_string(),
            eval::fmt_accuracy(Some(bstc.accuracy)),
            eval::fmt_accuracy(Some(mc2.accuracy)),
            eval::fmt_accuracy(rcbt.accuracy),
            format!(
                "{}{}",
                eval::fmt_accuracy(Some(cba.accuracy)),
                if cba.dnf { " (partial)" } else { "" }
            ),
            eval::fmt_accuracy(Some(base.svm)),
            eval::fmt_accuracy(Some(base.forest)),
        ]);

        // §6.1's diagnostic: does BSTC err in one direction on ALL?
        if kind == DatasetKind::AllAml {
            let model = bstc::BstcModel::train(&p.bool_train);
            let preds = model.classify_all(p.bool_test.samples());
            let cm = ConfusionMatrix::from_predictions(
                &preds,
                p.bool_test.labels(),
                p.bool_test.n_classes(),
            );
            eprintln!("# ALL confusion matrix:\n{cm}");
            if cm.errors_all_in_direction(0, 1) {
                eprintln!(
                    "# all BSTC errors mistake class 0 (AML) for class 1 (ALL) — \
                     the paper's §6.1 observation"
                );
            }
        }
    }

    println!("Extended clinical-split comparison (quick={}):", !opts.full);
    println!("{}", t.render());
}
