//! Table 3 — "Results Using Given Training Data": one clinically-sized
//! split per dataset; genes after discretization and the accuracies of
//! BSTC, RCBT, SVM, and random forest (plus the C4.5-family extras the
//! preliminary §6.1 text quotes).

use bench_suite::{scaled_clinical_counts, scaled_config, DatasetKind, Opts};
use eval::{draw_split, SplitSpec};

fn main() {
    let opts = Opts::parse();
    let mut t = eval::TextTable::new(vec![
        "Dataset",
        "# C1 Train",
        "# C0 Train",
        "Genes After Disc.",
        "BSTC",
        "RCBT",
        "SVM",
        "randomForest",
        "C4.5 tree",
        "bagging",
        "boosting",
    ]);

    let mut bstc_accs = Vec::new();
    let mut rcbt_accs = Vec::new();
    let mut svm_accs = Vec::new();
    let mut rf_accs = Vec::new();
    let mut rows: Vec<serde_json::Value> = Vec::new();

    for kind in DatasetKind::all() {
        let cfg = scaled_config(kind, opts.full, opts.seed);
        let counts = scaled_clinical_counts(kind, opts.full);
        eprintln!("# {} …", cfg.name);
        let data = cfg.generate();
        let split = draw_split(
            data.labels(),
            data.n_classes(),
            &SplitSpec::FixedCounts(counts.clone()),
            opts.seed,
        );
        let p = eval::prepare(&data, &split).expect("paper-shaped data has informative genes");

        let bstc = eval::run_bstc(&p);
        let rcbt = eval::run_rcbt(&p, rulemine::RcbtParams::default(), opts.cutoff, opts.cutoff);
        // Random-forest trees: 500 default, 1000 for PC (the paper had to
        // raise PC to stabilize accuracy). Quick mode scales both down.
        let forest_trees = match (kind, opts.full) {
            (DatasetKind::Prostate, true) => 1000,
            (_, true) => 500,
            (DatasetKind::Prostate, false) => 100,
            (_, false) => 50,
        };
        let base = eval::run_baselines(
            &p,
            eval::BaselineParams { forest_trees, seed: opts.seed, ..Default::default() },
        );

        bstc_accs.push(bstc.accuracy);
        if let Some(a) = rcbt.accuracy {
            rcbt_accs.push(a);
        }
        svm_accs.push(base.svm);
        rf_accs.push(base.forest);

        t.row(vec![
            kind.short().to_string(),
            counts[1].to_string(),
            counts[0].to_string(),
            p.genes_after_discretization.to_string(),
            eval::fmt_accuracy(Some(bstc.accuracy)),
            eval::fmt_accuracy(rcbt.accuracy),
            eval::fmt_accuracy(Some(base.svm)),
            eval::fmt_accuracy(Some(base.forest)),
            eval::fmt_accuracy(Some(base.tree)),
            eval::fmt_accuracy(Some(base.bagging)),
            eval::fmt_accuracy(Some(base.boosting)),
        ]);
        rows.push(serde_json::json!({
            "dataset": kind.short(),
            "genes_after_discretization": p.genes_after_discretization,
            "bstc": bstc.accuracy,
            "bstc_secs": bstc.secs,
            "rcbt": rcbt.accuracy,
            "rcbt_dnf": rcbt.topk_dnf || rcbt.rcbt_dnf,
            "svm": base.svm,
            "forest": base.forest,
            "tree": base.tree,
            "bagging": base.bagging,
            "boosting": base.boosting,
        }));
    }

    let avg = |v: &[f64]| {
        if v.is_empty() {
            "-".to_string()
        } else {
            format!("{:.2}%", 100.0 * eval::mean(v))
        }
    };
    t.row(vec![
        "Average".to_string(),
        String::new(),
        String::new(),
        String::new(),
        avg(&bstc_accs),
        avg(&rcbt_accs),
        avg(&svm_accs),
        avg(&rf_accs),
        String::new(),
        String::new(),
        String::new(),
    ]);

    println!("Table 3: Results Using Given Training Data");
    println!("{}", t.render());
    let _ = eval::write_json(&opts.out_dir.join("table3.json"), &rows);
}
