//! §6.2.4 "CAR Mining Parameter Tuning and Scalability" — the support
//! cutoff pathology: on hard OC splits, Top-k with minsup 0.7 blows past
//! the cutoff; raising minsup to 0.9 lets Top-k finish quickly, but RCBT's
//! lower-bound mining *still* cannot finish. BSTC needs no tuning at all.

use bench_suite::{scaled_clinical_counts, scaled_config, DatasetKind, Opts};
use eval::{draw_split, SplitSpec};
use rulemine::TopkParams;

fn main() {
    let opts = Opts::parse();
    let cfg = scaled_config(DatasetKind::Ovarian, opts.full, opts.seed);
    let counts = scaled_clinical_counts(DatasetKind::Ovarian, opts.full);
    eprintln!("# {} — tuning study, cutoff {:?}", cfg.name, opts.cutoff);
    let data = cfg.generate();

    let mut t = eval::TextTable::new(vec![
        "Split",
        "minsup",
        "Top-k time",
        "Top-k DNF",
        "RCBT time",
        "RCBT DNF",
        "BSTC time",
    ]);

    // The paper's hard cases are the 80% and 1-133/0-77 training sizes.
    let specs = [("80%", SplitSpec::Fraction(0.8)), ("1-x/0-y", SplitSpec::FixedCounts(counts))];
    for (name, spec) in specs {
        let split = draw_split(data.labels(), data.n_classes(), &spec, opts.seed);
        let p = eval::prepare(&data, &split).expect("informative genes");
        let bstc = eval::run_bstc(&p);
        for minsup in [0.7, 0.9] {
            let topk = eval::run_topk(&p, TopkParams { k: 10, minsup }, opts.cutoff);
            let rcbt = eval::run_rcbt(
                &p,
                rulemine::RcbtParams { minsup, nl: 2, ..Default::default() },
                opts.cutoff,
                opts.cutoff,
            );
            t.row(vec![
                name.to_string(),
                format!("{minsup}"),
                eval::fmt_runtime(topk.secs, topk.dnf),
                if topk.dnf { "yes" } else { "no" }.to_string(),
                eval::fmt_runtime(rcbt.rcbt_secs, rcbt.rcbt_dnf),
                if rcbt.rcbt_dnf { "yes" } else { "no" }.to_string(),
                format!("{:.2}", bstc.secs),
            ]);
        }
    }

    println!("Section 6.2.4: support-cutoff tuning on the hardest OC splits");
    println!("{}", t.render());
    println!(
        "The paper observes that raising minsup 0.7 -> 0.9 let Top-k finish (minutes\n\
         instead of > 11 days) while RCBT's lower-bound mining still could not, and\n\
         that BSTC needs no tuning at all. Compare the minsup rows above under your\n\
         chosen --cutoff: whether 0.9 rescues Top-k here depends on how much headroom\n\
         the cutoff leaves; the BSTC column is flat either way."
    );
}
