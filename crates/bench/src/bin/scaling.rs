//! §3.1.1 / §5.3.1 scaling check: BSTC's build + per-query cost is
//! O(|S|²·|G|). Sweeps samples at fixed genes and genes at fixed samples
//! on pre-discretized boolean data and reports the log-log slopes —
//! roughly 2 for the sample sweep and 1 for the gene sweep.

use bench_suite::Opts;
use bstc::BstcModel;
use microarray::synth::BoolSynthConfig;
use std::time::Instant;

fn measure(n_samples: usize, n_items: usize, seed: u64) -> (f64, f64) {
    let cfg = BoolSynthConfig {
        name: "scaling".into(),
        n_items,
        class_sizes: vec![n_samples / 2, n_samples - n_samples / 2],
        class_names: vec!["c0".into(), "c1".into()],
        markers_per_class: n_items / 10,
        marker_on: 0.9,
        background_on: 0.3,
        seed,
    };
    let data = cfg.generate();
    let t0 = Instant::now();
    let model = BstcModel::train(&data);
    let build = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for s in 0..data.n_samples().min(20) {
        let _ = model.classify(data.sample(s));
    }
    let query = t1.elapsed().as_secs_f64() / data.n_samples().min(20) as f64;
    (build, query)
}

fn slope(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.max(1e-9).ln()).collect();
    let mx = eval::mean(&lx);
    let my = eval::mean(&ly);
    let num: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let den: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    num / den
}

fn main() {
    let opts = Opts::parse();
    let scale = if opts.full { 2 } else { 1 };

    println!("BSTC scaling sweeps (pre-discretized boolean data)");
    let mut t = eval::TextTable::new(vec!["sweep", "size", "build secs", "per-query secs"]);

    let sample_sizes: Vec<usize> = [40, 80, 160, 320].iter().map(|s| s * scale).collect();
    let mut builds = Vec::new();
    let mut queries = Vec::new();
    for &n in &sample_sizes {
        let (b, q) = measure(n, 1000 * scale, opts.seed);
        t.row(vec![
            "samples".to_string(),
            format!("|S|={n}, |G|={}", 1000 * scale),
            format!("{b:.4}"),
            format!("{q:.6}"),
        ]);
        builds.push(b);
        queries.push(q);
    }
    let xs: Vec<f64> = sample_sizes.iter().map(|&n| n as f64).collect();
    let sample_build_slope = slope(&xs, &builds);
    let sample_query_slope = slope(&xs, &queries);

    let gene_sizes: Vec<usize> = [500, 1000, 2000, 4000].iter().map(|s| s * scale).collect();
    let mut builds = Vec::new();
    for &g in &gene_sizes {
        let (b, q) = measure(120 * scale, g, opts.seed);
        t.row(vec![
            "genes".to_string(),
            format!("|S|={}, |G|={g}", 120 * scale),
            format!("{b:.4}"),
            format!("{q:.6}"),
        ]);
        builds.push(b);
    }
    let gx: Vec<f64> = gene_sizes.iter().map(|&g| g as f64).collect();
    let gene_build_slope = slope(&gx, &builds);

    println!("{}", t.render());
    println!("log-log slope, build vs |S| (theory <= 2): {sample_build_slope:.2}");
    println!("log-log slope, per-query vs |S| (theory <= 2): {sample_query_slope:.2}");
    println!("log-log slope, build vs |G| (theory ~ 1): {gene_build_slope:.2}");
    println!(
        "(measured slopes sit slightly above the asymptotic exponents because the\n\
         largest sizes spill the exclusion-list working set out of cache — the\n\
         point is that they are near-polynomial constants, not exponential blowup)"
    );
}
