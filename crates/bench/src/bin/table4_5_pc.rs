//! Tables 4 and 5 — Prostate Cancer runtimes and mean accuracies.
//!
//! Table 4: average per-test runtimes of BSTC vs Top-k mining vs RCBT
//! (with the 2-hour cutoff, "# RCBT DNF" accounting, and the † nl = 2
//! cells). Table 5: mean accuracies over the tests RCBT finished.

use bench_suite::{cv_study, render_accuracy_table, render_runtime_table, DatasetKind, Opts};

fn main() {
    let opts = Opts::parse();
    let study = cv_study(DatasetKind::Prostate, &opts, true, "table4_5_pc");

    println!(
        "Table 4: Average Run Times for the PC Tests (in seconds). \
         Cutoff {:?}; \u{2020} = nl lowered to 2.",
        opts.cutoff
    );
    let dropped = study.nl_dropped.clone();
    println!(
        "{}",
        render_runtime_table(&study.summaries, &|cell| dropped.iter().any(|l| l == cell))
    );

    println!("Table 5: Mean Accuracies for the PC Tests that RCBT Finished.");
    println!("{}", render_accuracy_table(&study.summaries));
}
