//! Table 2 — "Gene Expression Datasets": the four dataset shapes, as
//! instantiated by the synthetic presets (see DESIGN.md §2 for the
//! substitution rationale).

use bench_suite::{scaled_config, DatasetKind, Opts};

fn main() {
    let opts = Opts::parse();
    let mut t = eval::TextTable::new(vec![
        "Dataset",
        "# Genes",
        "Class 1 label",
        "Class 0 label",
        "# Class 1 samples",
        "# Class 0 samples",
    ]);
    for kind in DatasetKind::all() {
        let cfg = scaled_config(kind, opts.full, opts.seed);
        t.row(vec![
            cfg.name.clone(),
            cfg.n_genes.to_string(),
            cfg.class_names[1].clone(),
            cfg.class_names[0].clone(),
            cfg.class_sizes[1].to_string(),
            cfg.class_sizes[0].to_string(),
        ]);
    }
    println!("Table 2: Gene Expression Datasets{}", if opts.full { "" } else { " (quick scale)" });
    println!("{}", t.render());
}
