//! Figure 4 — ALL/AML cross-validation boxplots: BSTC vs RCBT accuracy
//! over 25 tests at each training-set size (40/60/80 % and 1-27/0-11).

use bench_suite::{cv_study, render_boxplots, DatasetKind, Opts};

fn main() {
    let opts = Opts::parse();
    let study = cv_study(DatasetKind::AllAml, &opts, true, "fig4_all");
    println!("Figure 4: ALL Cross-Validation Results (accuracy boxplots)");
    println!("{}", render_boxplots(&study.summaries));
    let means: Vec<f64> = study.records.iter().map(|r| r.bstc_acc).collect();
    println!(
        "BSTC mean accuracy over all {} tests: {:.2}%",
        means.len(),
        100.0 * eval::mean(&means)
    );
    let rcbt: Vec<f64> =
        study.records.iter().filter_map(|r| r.rcbt.and_then(|x| x.accuracy)).collect();
    if !rcbt.is_empty() {
        println!(
            "RCBT mean accuracy over {} finished tests: {:.2}%",
            rcbt.len(),
            100.0 * eval::mean(&rcbt)
        );
    }
}
