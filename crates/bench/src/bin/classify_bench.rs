//! Benchmarks the word-parallel compiled BSTCE kernels against the
//! reference scalar path on an ovarian-scale synthetic dataset and writes
//! the numbers to a JSON report.
//!
//! ```text
//! classify_bench [--scale K] [--seed S] [--queries N] [--quick]
//!                [--out PATH]
//! ```
//!
//! `--scale 1` (the default) is the true ovarian shape: 15154 genes,
//! 91 + 162 samples. `--quick` is the CI smoke mode (heavily scaled down,
//! few queries). The run trains once, lowers the model with
//! [`BstcModel::compile`], measures batch throughput for both paths and
//! the compiled per-query latency distribution, **verifies the two paths
//! predict identically** (exits nonzero otherwise), and writes
//! `BENCH_classify.json` (or `--out`).

use bstc::{Arithmetization, BstcModel, Scratch};
use discretize::Discretizer;
use microarray::synth::presets;
use microarray::BitSet;
use serde::Serialize;
use std::time::Instant;

/// The JSON report, one file per run.
#[derive(Serialize)]
struct Report {
    dataset: String,
    n_genes_raw: usize,
    n_items: usize,
    n_train: usize,
    n_queries: usize,
    train_secs: f64,
    compile_secs: f64,
    reference_batch_secs: f64,
    compiled_batch_secs: f64,
    reference_queries_per_sec: f64,
    compiled_queries_per_sec: f64,
    batch_speedup: f64,
    compiled_p50_us: f64,
    compiled_p99_us: f64,
    reference_p50_us: f64,
    reference_p99_us: f64,
    /// Per-stage pipeline breakdown from the `obs` global registry
    /// (`mdl_cuts`, `binarize`, `bst_build` ×classes, `compile`).
    stages: Vec<StageEntry>,
}

/// One pipeline stage in the report.
#[derive(Serialize)]
struct StageEntry {
    stage: String,
    count: u64,
    total_secs: f64,
}

/// Snapshot of the global stage registry as report entries.
fn stage_entries() -> Vec<StageEntry> {
    obs::global()
        .totals()
        .into_iter()
        .map(|t| StageEntry { stage: t.name, count: t.count, total_secs: t.sum_us as f64 / 1e6 })
        .collect()
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    match flag(args, name) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value '{raw}' for {name}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale: usize = parse_flag(&args, "--scale", if quick { 40 } else { 1 }).max(1);
    let seed: u64 = parse_flag(&args, "--seed", 7);
    let n_queries: usize = parse_flag(&args, "--queries", if quick { 256 } else { 1024 }).max(1);
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_classify.json".into());

    let config = presets::ovarian(seed).scaled_down(scale);
    eprintln!(
        "classify_bench: {} — {} genes, {:?} samples, {n_queries} queries",
        config.name, config.n_genes, config.class_sizes
    );
    let cont = config.generate();
    let disc = Discretizer::fit(&cont);
    let data = disc.transform(&cont).unwrap_or_else(|e| {
        eprintln!("error: discretization produced no usable genes: {e}");
        std::process::exit(1);
    });
    eprintln!("discretized to {} items over {} samples", data.n_items(), data.n_samples());

    // Query stream: the training distribution, cycled to the requested
    // volume. Throughput is shape-bound (masks × queries), not
    // novelty-bound, so recycling rows is representative.
    let queries: Vec<BitSet> =
        (0..n_queries).map(|i| data.samples()[i % data.n_samples()].clone()).collect();

    let t0 = Instant::now();
    let model = BstcModel::train_with(&data, Arithmetization::Min);
    let train_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let compiled = model.compile();
    let compile_secs = t0.elapsed().as_secs_f64();
    eprintln!("train {train_secs:.3}s, compile {compile_secs:.4}s");

    // Batch throughput, both paths parallel over the query set.
    let t0 = Instant::now();
    let reference_preds = model.classify_all(&queries);
    let reference_batch_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let compiled_preds = compiled.classify_all(&queries);
    let compiled_batch_secs = t0.elapsed().as_secs_f64();

    if reference_preds != compiled_preds {
        let diverging = reference_preds
            .iter()
            .zip(&compiled_preds)
            .position(|(a, b)| a != b)
            .expect("lengths match");
        eprintln!("error: compiled path diverges from reference at query {diverging}");
        std::process::exit(1);
    }

    // Per-query latency, sequential (the serving-path shape: one scratch,
    // one query at a time). Sampled, so the slow reference path doesn't
    // dominate the run at full scale.
    let latency_samples = n_queries.min(256);
    let per_query = |classify: &mut dyn FnMut(&BitSet) -> usize| -> Vec<u64> {
        let mut ns: Vec<u64> = queries[..latency_samples]
            .iter()
            .map(|q| {
                let t0 = Instant::now();
                std::hint::black_box(classify(q));
                t0.elapsed().as_nanos() as u64
            })
            .collect();
        ns.sort_unstable();
        ns
    };
    let mut scratch = Scratch::for_model(&compiled);
    let compiled_ns = per_query(&mut |q| compiled.classify(q, &mut scratch));
    let reference_ns = per_query(&mut |q| model.classify(q));
    // Shared nearest-rank helper: the old truncating index under-reported
    // p99 on the 256-sample latency runs (read index 252, not 253).
    let pct = |sorted: &[u64], p: f64| obs::percentile_of_sorted(sorted, p) as f64 / 1e3;

    let report = Report {
        dataset: config.name.clone(),
        n_genes_raw: config.n_genes,
        n_items: data.n_items(),
        n_train: data.n_samples(),
        n_queries,
        train_secs,
        compile_secs,
        reference_batch_secs,
        compiled_batch_secs,
        reference_queries_per_sec: n_queries as f64 / reference_batch_secs,
        compiled_queries_per_sec: n_queries as f64 / compiled_batch_secs,
        batch_speedup: reference_batch_secs / compiled_batch_secs,
        compiled_p50_us: pct(&compiled_ns, 0.50),
        compiled_p99_us: pct(&compiled_ns, 0.99),
        reference_p50_us: pct(&reference_ns, 0.50),
        reference_p99_us: pct(&reference_ns, 0.99),
        stages: stage_entries(),
    };

    for s in &report.stages {
        println!("stage {}: {} span(s), {:.4}s total", s.stage, s.count, s.total_secs);
    }

    println!(
        "batch: reference {:.1} q/s, compiled {:.1} q/s — {:.1}x",
        report.reference_queries_per_sec, report.compiled_queries_per_sec, report.batch_speedup
    );
    println!(
        "per-query: compiled p50 {:.1} us p99 {:.1} us, reference p50 {:.1} us p99 {:.1} us",
        report.compiled_p50_us,
        report.compiled_p99_us,
        report.reference_p50_us,
        report.reference_p99_us
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");
}
