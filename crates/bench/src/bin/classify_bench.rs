//! Benchmarks the word-parallel compiled BSTCE kernels against the
//! reference scalar path on an ovarian-scale synthetic dataset and writes
//! the numbers to a JSON report.
//!
//! ```text
//! classify_bench [--preset quick|ovarian|l2-spill|llc-spill]
//!                [--scale K] [--samples N] [--seed S] [--queries N]
//!                [--kernel-block-bytes B] [--quick] [--out PATH]
//!                [--assert-speedup X] [--assert-kernel-speedup X]
//! ```
//!
//! `--preset ovarian` (the default) is the true ovarian shape: 15154
//! genes, 91 + 162 samples. `--preset quick` (alias `--quick`) is the CI
//! smoke mode (heavily scaled down, few queries). The spill presets keep
//! the ovarian sample split but grow the *gene* dimension so the
//! compiled mask table overflows a cache level: `l2-spill` pushes
//! `mask_working_set_bytes` past a 2 MiB L2, `llc-spill` well past it
//! (tens of MiB), which is where the cache-blocked sweep earns its keep.
//! Genes — not samples — are the right axis to spill on: the mask
//! stride and hence the popcount work per (column, query) pair scale
//! with genes, while extra samples mostly grow the per-column sort that
//! the SIMD kernels never touch. `--scale`, `--samples`, and
//! `--queries` override whatever the preset chose.
//!
//! The run trains once, lowers the model with [`BstcModel::compile`],
//! measures batch throughput for both paths plus the compiled per-query
//! latency distribution, and additionally re-times the batch sweep in its
//! pre-SIMD, pre-blocking form (portable dispatch forced, the frozen
//! legacy per-column kernels, one-column blocks — the exact passes and
//! loop order of the previous kernel) to report `kernel_speedup`, the
//! speedup attributable to this PR's kernel work alone. It **verifies all paths predict identically** (exits nonzero
//! otherwise) and writes `BENCH_classify.json` (or `--out`).
//! `--assert-speedup X` / `--assert-kernel-speedup X` exit nonzero when
//! the corresponding ratio lands under `X` (CI regression guards).

use bstc::{pool, Arithmetization, BatchScratch, BstcModel, ParBatchScratch, Scratch};
use discretize::Discretizer;
use microarray::simd;
use microarray::synth::presets;
use microarray::BitSet;
use serde::Serialize;
use std::time::Instant;

/// The JSON report, one file per run.
#[derive(Serialize)]
struct Report {
    dataset: String,
    preset: String,
    n_genes_raw: usize,
    n_items: usize,
    n_train: usize,
    n_queries: usize,
    /// Bytes of compiled mask data one full batch sweep streams through
    /// cache (all classes: satisfaction masks + class-expression rows).
    mask_working_set_bytes: usize,
    /// Which satisfaction-kernel dispatch the run used
    /// (`avx512` / `avx2` / `neon` / `portable`).
    simd_path: String,
    /// Column-block byte budget of the blocked sweep (the resolved
    /// value, never 0).
    kernel_block_bytes: usize,
    /// Lanes of the process-wide worker pool (1 = single-core host).
    pool_lanes: usize,
    train_secs: f64,
    compile_secs: f64,
    reference_batch_secs: f64,
    compiled_batch_secs: f64,
    reference_queries_per_sec: f64,
    compiled_queries_per_sec: f64,
    batch_speedup: f64,
    /// The same batch on the previous PR's kernel, frozen verbatim
    /// (`class_values_batch_into_legacy`): portable scalar dispatch,
    /// separate assign/count/difference passes, float-keyed sort,
    /// one-column blocks, single lane.
    kernel_baseline_secs: f64,
    /// The same batch on this PR's kernel: SIMD dispatch, fused
    /// single-pass set ops, cache-blocked columns, pooled lanes.
    kernel_secs: f64,
    /// `kernel_baseline_secs / kernel_secs` — speedup from the kernel
    /// work alone, independent of the compiled-vs-reference gap.
    kernel_speedup: f64,
    compiled_p50_us: f64,
    compiled_p99_us: f64,
    reference_p50_us: f64,
    reference_p99_us: f64,
    /// Per-stage pipeline breakdown from the `obs` global registry
    /// (`mdl_cuts`, `binarize`, `bst_build` ×classes, `compile`).
    stages: Vec<StageEntry>,
}

/// One pipeline stage in the report.
#[derive(Serialize)]
struct StageEntry {
    stage: String,
    count: u64,
    total_secs: f64,
}

/// Snapshot of the global stage registry as report entries.
fn stage_entries() -> Vec<StageEntry> {
    obs::global()
        .totals()
        .into_iter()
        .map(|t| StageEntry { stage: t.name, count: t.count, total_secs: t.sum_us as f64 / 1e6 })
        .collect()
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    parse_opt_flag(args, name).unwrap_or(default)
}

fn parse_opt_flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    flag(args, name).map(|raw| {
        raw.parse().unwrap_or_else(|_| {
            eprintln!("error: bad value '{raw}' for {name}");
            std::process::exit(2);
        })
    })
}

/// What a `--preset` pre-selects; individual flags still override.
struct Preset {
    name: &'static str,
    /// Divisor for the ovarian gene count (`--scale`).
    scale: usize,
    /// Total training samples (`--samples`); `None` keeps the ovarian
    /// 91 + 162.
    samples: Option<usize>,
    /// Query-stream length (`--queries`).
    queries: usize,
}

/// The gene dimension is what makes a run popcount-bound (mask stride
/// scales with items ≈ genes), so the spill presets keep the ovarian
/// sample split and back off the gene divisor until the mask table
/// overflows the target cache level.
const PRESETS: &[Preset] = &[
    Preset { name: "quick", scale: 40, samples: None, queries: 256 },
    Preset { name: "ovarian", scale: 1, samples: None, queries: 1024 },
    Preset { name: "l2-spill", scale: 2, samples: None, queries: 512 },
    Preset { name: "llc-spill", scale: 1, samples: None, queries: 512 },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let preset_name = flag(&args, "--preset")
        .unwrap_or_else(|| (if quick { "quick" } else { "ovarian" }).to_string());
    let preset = PRESETS.iter().find(|p| p.name == preset_name).unwrap_or_else(|| {
        eprintln!("error: unknown preset '{preset_name}' (quick|ovarian|l2-spill|llc-spill)");
        std::process::exit(2);
    });
    let scale: usize = parse_flag(&args, "--scale", preset.scale).max(1);
    let samples: Option<usize> = parse_opt_flag(&args, "--samples").or(preset.samples);
    let seed: u64 = parse_flag(&args, "--seed", 7);
    let n_queries: usize = parse_flag(&args, "--queries", preset.queries).max(1);
    let block_bytes: usize = parse_flag(&args, "--kernel-block-bytes", 0);
    let assert_speedup: Option<f64> = parse_opt_flag(&args, "--assert-speedup");
    let assert_kernel_speedup: Option<f64> = parse_opt_flag(&args, "--assert-kernel-speedup");
    let out = flag(&args, "--out").unwrap_or_else(|| "BENCH_classify.json".into());

    let mut config = presets::ovarian(seed).scaled_down(scale);
    if let Some(samples) = samples {
        // Same 2:1 split the ovarian preset uses, at the requested size.
        config.class_sizes = vec![(samples * 2).div_ceil(3), samples / 3];
    }
    eprintln!(
        "classify_bench[{}]: {} — {} genes, {:?} samples, {n_queries} queries",
        preset.name, config.name, config.n_genes, config.class_sizes
    );
    let cont = config.generate();
    let disc = Discretizer::fit(&cont);
    let data = disc.transform(&cont).unwrap_or_else(|e| {
        eprintln!("error: discretization produced no usable genes: {e}");
        std::process::exit(1);
    });
    eprintln!("discretized to {} items over {} samples", data.n_items(), data.n_samples());

    // Query stream: the training distribution, cycled to the requested
    // volume. Throughput is shape-bound (masks × queries), not
    // novelty-bound, so recycling rows is representative.
    let queries: Vec<BitSet> =
        (0..n_queries).map(|i| data.samples()[i % data.n_samples()].clone()).collect();

    let t0 = Instant::now();
    let model = BstcModel::train_with(&data, Arithmetization::Min);
    let train_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let compiled = model.compile();
    let compile_secs = t0.elapsed().as_secs_f64();
    let mask_bytes = compiled.mask_bytes();
    eprintln!(
        "train {train_secs:.3}s, compile {compile_secs:.4}s, mask working set {:.2} MiB",
        mask_bytes as f64 / (1024.0 * 1024.0)
    );

    // Batch throughput, both paths parallel over the query set.
    let t0 = Instant::now();
    let reference_preds = model.classify_all(&queries);
    let reference_batch_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let compiled_preds = compiled.classify_all(&queries);
    let compiled_batch_secs = t0.elapsed().as_secs_f64();

    if reference_preds != compiled_preds {
        let diverging = reference_preds
            .iter()
            .zip(&compiled_preds)
            .position(|(a, b)| a != b)
            .expect("lengths match");
        eprintln!("error: compiled path diverges from reference at query {diverging}");
        std::process::exit(1);
    }

    // Kernel-vs-kernel: the same batch sweep in its pre-SIMD shape —
    // portable dispatch, the frozen legacy per-column kernels (separate
    // assign/count/difference passes, float-keyed sort), one-column
    // blocks (the previous kernel's exact c-outer/q-inner traversal),
    // one lane — against this PR's SIMD + fused + cache-blocked + pooled
    // form. Both warmed so neither pays its first-call buffer growth
    // inside the timed region.
    simd::force_portable(true);
    let mut baseline_scratch = BatchScratch::new();
    baseline_scratch.set_block_bytes(1);
    compiled.class_values_batch_into_legacy(&queries, &mut baseline_scratch);
    let t0 = Instant::now();
    compiled.class_values_batch_into_legacy(&queries, &mut baseline_scratch);
    let kernel_baseline_secs = t0.elapsed().as_secs_f64();
    simd::force_portable(false);

    let mut par_scratch = ParBatchScratch::new();
    par_scratch.set_block_bytes(block_bytes);
    compiled.class_values_batch_par_into(&queries, pool::global(), &mut par_scratch);
    let t0 = Instant::now();
    compiled.class_values_batch_par_into(&queries, pool::global(), &mut par_scratch);
    let kernel_secs = t0.elapsed().as_secs_f64();

    // Bit-identity across kernels is a hard invariant, not a tolerance.
    for q in 0..n_queries {
        if baseline_scratch.values_of(q) != par_scratch.values_of(q) {
            eprintln!("error: blocked/SIMD kernel diverges from scalar baseline at query {q}");
            std::process::exit(1);
        }
    }

    // Per-query latency, sequential (the serving-path shape: one scratch,
    // one query at a time). Sampled, so the slow reference path doesn't
    // dominate the run at full scale.
    let latency_samples = n_queries.min(256);
    let per_query = |classify: &mut dyn FnMut(&BitSet) -> usize| -> Vec<u64> {
        let mut ns: Vec<u64> = queries[..latency_samples]
            .iter()
            .map(|q| {
                let t0 = Instant::now();
                std::hint::black_box(classify(q));
                t0.elapsed().as_nanos() as u64
            })
            .collect();
        ns.sort_unstable();
        ns
    };
    let mut scratch = Scratch::for_model(&compiled);
    let compiled_ns = per_query(&mut |q| compiled.classify(q, &mut scratch));
    let reference_ns = per_query(&mut |q| model.classify(q));
    // Shared nearest-rank helper: the old truncating index under-reported
    // p99 on the 256-sample latency runs (read index 252, not 253).
    let pct = |sorted: &[u64], p: f64| obs::percentile_of_sorted(sorted, p) as f64 / 1e3;

    let report = Report {
        dataset: config.name.clone(),
        preset: preset.name.to_string(),
        n_genes_raw: config.n_genes,
        n_items: data.n_items(),
        n_train: data.n_samples(),
        n_queries,
        mask_working_set_bytes: mask_bytes,
        simd_path: simd::active_path().to_string(),
        kernel_block_bytes: if block_bytes == 0 {
            bstc::compiled::DEFAULT_KERNEL_BLOCK_BYTES
        } else {
            block_bytes
        },
        pool_lanes: pool::global().lanes(),
        train_secs,
        compile_secs,
        reference_batch_secs,
        compiled_batch_secs,
        reference_queries_per_sec: n_queries as f64 / reference_batch_secs,
        compiled_queries_per_sec: n_queries as f64 / compiled_batch_secs,
        batch_speedup: reference_batch_secs / compiled_batch_secs,
        kernel_baseline_secs,
        kernel_secs,
        kernel_speedup: kernel_baseline_secs / kernel_secs,
        compiled_p50_us: pct(&compiled_ns, 0.50),
        compiled_p99_us: pct(&compiled_ns, 0.99),
        reference_p50_us: pct(&reference_ns, 0.50),
        reference_p99_us: pct(&reference_ns, 0.99),
        stages: stage_entries(),
    };

    for s in &report.stages {
        println!("stage {}: {} span(s), {:.4}s total", s.stage, s.count, s.total_secs);
    }

    println!(
        "batch: reference {:.1} q/s, compiled {:.1} q/s — {:.1}x",
        report.reference_queries_per_sec, report.compiled_queries_per_sec, report.batch_speedup
    );
    println!(
        "kernel: scalar/unblocked {:.4}s, {}-blocked {:.4}s — {:.2}x \
         (masks {:.2} MiB, block {} KiB, {} lane(s))",
        report.kernel_baseline_secs,
        report.simd_path,
        report.kernel_secs,
        report.kernel_speedup,
        report.mask_working_set_bytes as f64 / (1024.0 * 1024.0),
        report.kernel_block_bytes / 1024,
        report.pool_lanes,
    );
    println!(
        "per-query: compiled p50 {:.1} us p99 {:.1} us, reference p50 {:.1} us p99 {:.1} us",
        report.compiled_p50_us,
        report.compiled_p99_us,
        report.reference_p50_us,
        report.reference_p99_us
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {out}");

    if let Some(min) = assert_speedup {
        if report.batch_speedup < min {
            eprintln!("error: batch_speedup {:.2} < required {min}", report.batch_speedup);
            std::process::exit(1);
        }
    }
    if let Some(min) = assert_kernel_speedup {
        if report.kernel_speedup < min {
            eprintln!("error: kernel_speedup {:.2} < required {min}", report.kernel_speedup);
            std::process::exit(1);
        }
    }
}
